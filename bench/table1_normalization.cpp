// Table 1 (paper §2.4.1): the worked example of time-confounder
// normalization. Day slot: 90 low-latency actions (30% of time) and 140
// high-latency actions (70% of time); night slot: 26 and 4 at 80%/20%.
// Naive pooling concludes users act MORE at high latency (1.6 vs 1.04);
// α-normalization restores the intuitive ordering (3.09 vs 1.97).
#include <iostream>

#include "core/confounder_time.h"
#include "report/compare.h"
#include "report/table.h"

int main() {
  using namespace autosens;
  const auto r = core::normalize_two_slot_example(90, 140, 30, 70, 26, 4, 80, 20);

  std::cout << "Table 1 — time-confounder normalization worked example\n\n";
  report::Table table(
      {"Time slot", "Latency", "# actions", "% time with this latency", "Normalized # actions"});
  table.add_row({"Day", "Low", "90", "30%", "90"});
  table.add_row({"Day", "High", "140", "70%", "140"});
  table.add_row({"Night", "Low", "26", "80%", report::Table::num(r.normalized_low, 0)});
  table.add_row({"Night", "High", "4", "20%", report::Table::num(r.normalized_high, 0)});
  table.print(std::cout);

  std::cout << "\nalpha(night, low)  = " << report::Table::num(r.alpha_low)
            << "   (paper: 0.108)\n";
  std::cout << "alpha(night, high) = " << report::Table::num(r.alpha_high)
            << "   (paper: 0.100)\n";
  std::cout << "alpha(night)       = " << report::Table::num(r.alpha)
            << "   (paper: 0.104)\n\n";
  std::cout << "naive activity:      low " << report::Table::num(r.naive_low, 2) << "  high "
            << report::Table::num(r.naive_high, 2) << "   (inverted!)\n";
  std::cout << "normalized activity: low " << report::Table::num(r.activity_low, 2)
            << "  high " << report::Table::num(r.activity_high, 2) << "\n\n";

  report::Comparison comparison("Table 1: normalization arithmetic");
  comparison.check_value("alpha(night,low)", 0.108, r.alpha_low, 0.001);
  comparison.check_value("alpha(night,high)", 0.100, r.alpha_high, 0.001);
  comparison.check_value("alpha(night)", 0.104, r.alpha, 0.001);
  comparison.check_value("normalized low count", 250.0, r.normalized_low, 1.0);
  comparison.check_value("normalized high count", 38.0, r.normalized_high, 1.0);
  comparison.check_value("activity(low)", 3.09, r.activity_low, 0.01);
  // Paper prints 1.97 after rounding the normalized count to 38.
  comparison.check_value("activity(high)", 1.97, r.activity_high, 0.02);
  comparison.check_value("naive activity(high) [inverted]", 1.60, r.naive_high, 0.01);
  comparison.print(std::cout);
  return 0;
}
