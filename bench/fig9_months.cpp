// Figure 9 (paper §3.7): consistency across months. The preference curves
// for SelectMail and SwitchFolder computed separately on "January" (days
// 0–29) and "February" (days 30–59) nearly coincide — latency sensitivity is
// stable over the time frame.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/slices.h"
#include "report/ascii_chart.h"
#include "report/compare.h"
#include "report/csvout.h"
#include "report/table.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();

  core::AutoSensOptions options;
  std::vector<core::NamedPreference> all;
  for (const auto action :
       {telemetry::ActionType::kSelectMail, telemetry::ActionType::kSwitchFolder}) {
    auto monthly = core::preference_by_month(workload.dataset, options, action);
    for (auto& curve : monthly) {
      curve.name = std::string(telemetry::to_string(action)) + "/" + curve.name;
      all.push_back(std::move(curve));
    }
  }

  std::cout << "Figure 9 — stability across months (ref 300 ms)\n\n";
  report::Table table({"latency (ms)", "SelectMail/Jan", "SelectMail/Feb",
                       "SwitchFolder/Jan", "SwitchFolder/Feb"});
  for (const double latency : {300.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0}) {
    std::vector<std::string> row = {report::Table::num(latency, 0)};
    for (const auto& curve : all) {
      row.push_back(curve.result.covers(latency) ? report::Table::num(curve.result.at(latency))
                                                 : "-");
    }
    while (row.size() < 5) row.push_back("-");
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';

  std::vector<report::Series> chart;
  for (const auto& curve : all) chart.push_back(report::to_series(curve));
  report::ChartOptions chart_options;
  chart_options.x_label = "latency (ms)";
  chart_options.y_label = "normalized latency preference";
  render_chart(std::cout, chart, chart_options);
  std::cout << '\n';

  report::Comparison comparison("Fig 9: month-over-month consistency");
  if (all.size() == 4) {
    for (std::size_t pair = 0; pair < 2; ++pair) {
      const auto& jan = all[pair * 2].result;
      const auto& feb = all[pair * 2 + 1].result;
      // Probe the well-supported region; past ~1500 ms the thinner action
      // types run low on per-bin samples and the gap is estimation noise.
      double max_gap = 0.0;
      std::size_t probes = 0;
      for (double latency = 350.0; latency <= 1500.0; latency += 50.0) {
        if (jan.covers(latency) && feb.covers(latency)) {
          max_gap = std::max(max_gap, std::abs(jan.at(latency) - feb.at(latency)));
          ++probes;
        }
      }
      comparison.check_value(all[pair * 2].name + " vs Feb: max |gap| over " +
                                 std::to_string(probes) + " probes",
                             0.0, max_gap, 0.06);
    }
  } else {
    comparison.check_value("expected 4 month curves", 4.0, static_cast<double>(all.size()),
                           0.0);
  }
  comparison.print(std::cout);

  report::write_preference_csv_file("fig9_months.csv", all);
  std::cout << "series written to fig9_months.csv\n";
  return 0;
}
