// Microbenchmarks (google-benchmark) of the library's hot kernels:
// histogram fill, Savitzky–Golay smoothing, Voronoi weights, nearest-sample
// draws, the telemetry codecs, the workload generator, and the end-to-end
// analysis pipeline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include <atomic>
#include <thread>

#include "core/confidence.h"
#include "core/pipeline.h"
#include "core/simd.h"
#include "core/slices.h"
#include "core/store_analyze.h"
#include "net/collector.h"
#include "net/collector_poll.h"
#include "net/emitter.h"
#include "net/udp.h"
#include "obs/metrics.h"
#include "obs/server.h"
#include "obs/trace.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "stats/bootstrap.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "stats/sampling.h"
#include "stats/savitzky_golay.h"
#include "telemetry/binlog.h"
#include "telemetry/clock.h"
#include "telemetry/csv.h"
#include "telemetry/jsonl.h"
#include "telemetry/filter.h"
#include "telemetry/store/store.h"
#include "telemetry/store/writer.h"
#include "telemetry/validate.h"

namespace {

using namespace autosens;

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = random.lognormal(5.8, 0.5);
  return values;
}

std::vector<std::int64_t> random_times(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  std::vector<std::int64_t> times(n);
  std::int64_t t = 0;
  for (auto& v : times) {
    t += static_cast<std::int64_t>(random.exponential(0.02)) + 1;
    v = t;
  }
  return times;
}

void BM_HistogramFill(benchmark::State& state) {
  const auto values = random_values(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    stats::Histogram h(0.0, 10.0, 300);
    h.add_all(values);
    benchmark::DoNotOptimize(h.total_weight());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramFill)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_SavitzkyGolay(benchmark::State& state) {
  const auto signal = random_values(static_cast<std::size_t>(state.range(0)), 2);
  const stats::SavitzkyGolay filter({.window = 101, .degree = 3});
  for (auto _ : state) {
    auto smoothed = filter.smooth(signal);
    benchmark::DoNotOptimize(smoothed.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SavitzkyGolay)->Arg(300)->Arg(3'000)->Arg(30'000);

void BM_VoronoiWeights(benchmark::State& state) {
  const auto times = random_times(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto weights = stats::voronoi_weights(times, 0, times.back() + 10);
    benchmark::DoNotOptimize(weights.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VoronoiWeights)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_NearestSampleDraws(benchmark::State& state) {
  const auto times = random_times(100'000, 4);
  stats::Random random(5);
  for (auto _ : state) {
    auto draws = stats::nearest_sample_draws(times, 0, times.back() + 10,
                                             static_cast<std::size_t>(state.range(0)), random);
    benchmark::DoNotOptimize(draws.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NearestSampleDraws)->Arg(10'000)->Arg(100'000);

void BM_BinlogEncode(benchmark::State& state) {
  auto config = simulate::paper_config(simulate::Scale::kTiny, 6);
  const auto dataset = simulate::WorkloadGenerator(config).generate().dataset;
  for (auto _ : state) {
    std::ostringstream out;
    telemetry::write_binlog(out, dataset);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_BinlogEncode);

void BM_BinlogDecode(benchmark::State& state) {
  auto config = simulate::paper_config(simulate::Scale::kTiny, 7);
  const auto dataset = simulate::WorkloadGenerator(config).generate().dataset;
  std::ostringstream out;
  telemetry::write_binlog(out, dataset);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto decoded = telemetry::read_binlog(in);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_BinlogDecode);

void BM_WorkloadGenerator(benchmark::State& state) {
  const auto config = simulate::paper_config(simulate::Scale::kTiny, 8);
  std::size_t records = 0;
  for (auto _ : state) {
    simulate::WorkloadGenerator generator(config);
    auto result = generator.generate();
    records = result.accepted;
    benchmark::DoNotOptimize(result.dataset.times().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records));
}
BENCHMARK(BM_WorkloadGenerator);

// ---------------------------------------------------------------------------
// --threads scaling of the parallel execution layer (BENCH_parallel.json).
// Each benchmark takes the worker-thread count as its argument; results are
// byte-identical across arguments, only the wall clock changes.

/// A shared 1M-record, 14-day dataset with diurnal structure (built once).
const telemetry::Dataset& million_record_dataset() {
  static const telemetry::Dataset dataset = [] {
    constexpr std::size_t kRecords = 1'000'000;
    constexpr int kDays = 14;
    stats::Random random(97);
    telemetry::Dataset built;
    built.reserve(kRecords);
    const std::int64_t begin = 400 * telemetry::kMillisPerDay;
    constexpr auto kSpan = static_cast<double>(kDays) * telemetry::kMillisPerDay;
    constexpr telemetry::ActionType kActions[] = {
        telemetry::ActionType::kSelectMail, telemetry::ActionType::kSwitchFolder,
        telemetry::ActionType::kSelectMail, telemetry::ActionType::kSearch,
        telemetry::ActionType::kComposeSend};
    for (std::size_t i = 0; i < kRecords; ++i) {
      telemetry::ActionRecord record;
      record.time_ms = begin + static_cast<std::int64_t>(
                                   kSpan * static_cast<double>(i) / kRecords);
      const double hour =
          static_cast<double>(record.time_ms % telemetry::kMillisPerDay) /
          static_cast<double>(telemetry::kMillisPerHour);
      const double diurnal = 120.0 * std::sin(hour / 24.0 * 2.0 * 3.141592653589793);
      record.latency_ms = std::min(
          2900.0, 180.0 + diurnal + 250.0 * -std::log(1.0 - random.uniform(0.0, 1.0)));
      record.user_id = i % 499;
      record.action = kActions[i % 5];
      record.user_class = (i % 3 == 0) ? telemetry::UserClass::kBusiness
                                       : telemetry::UserClass::kConsumer;
      built.add(record);
    }
    built.sort_by_time();
    return built;
  }();
  return dataset;
}

void BM_PipelineAnalyzeThreads(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  core::AutoSensOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = core::analyze(dataset, options);
    benchmark::DoNotOptimize(result.normalized.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_PipelineAnalyzeThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SlicesByActionThreads(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  core::AutoSensOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto curves = core::preference_by_action(dataset, options);
    benchmark::DoNotOptimize(curves.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_SlicesByActionThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MonteCarloUnbiasedThreads(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  core::AutoSensOptions options;
  options.unbiased_method = core::UnbiasedMethod::kMonteCarlo;
  options.unbiased_draws = 2'000'000;
  options.normalize_time_confounder = false;  // isolate the MC estimator
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = core::analyze(dataset, options);
    benchmark::DoNotOptimize(result.normalized.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(options.unbiased_draws));
}
BENCHMARK(BM_MonteCarloUnbiasedThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BootstrapThreads(benchmark::State& state) {
  const auto values = random_values(200'000, 11);
  const auto mean = [](std::span<const double> sample) {
    double sum = 0.0;
    for (const double v : sample) sum += v;
    return sum / static_cast<double>(sample.size());
  };
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    stats::Random random(12);
    auto interval = stats::bootstrap_interval(values, mean, 100, 0.95, random, threads);
    benchmark::DoNotOptimize(interval.lo);
  }
  state.SetItemsProcessed(state.iterations() * 100 * 200'000);
}
BENCHMARK(BM_BootstrapThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Observability overhead on the fig3-scale pipeline: Arg selects how much
/// instrumentation is live. Arg(0) is the shipping default (compiled in,
/// disabled — every hook is one relaxed atomic load); comparing it against
/// the other Threads pipeline numbers bounds the disabled overhead, and
/// Arg(1)/Arg(2) price fully-enabled metrics and metrics+tracing.
void BM_ObsAnalyzeOverhead(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  const core::AutoSensOptions options;
  const auto mode = state.range(0);
  obs::set_enabled(mode >= 1);
  obs::Tracer::global().set_enabled(mode >= 2);
  {
    // Untimed warm-up so the first variant doesn't eat the cold-cache cost
    // and skew the disabled-vs-enabled comparison.
    auto warmup = core::analyze(dataset, options);
    benchmark::DoNotOptimize(warmup.normalized.data());
  }
  for (auto _ : state) {
    auto result = core::analyze(dataset, options);
    benchmark::DoNotOptimize(result.normalized.data());
  }
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  obs::set_enabled(false);
  state.SetLabel(mode == 0 ? "obs_disabled" : mode == 1 ? "metrics_on" : "metrics_and_trace_on");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_ObsAnalyzeOverhead)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// A registry the size of a busy process: ~1k exported series (labelled
/// counters, gauges, and histograms whose buckets expand in the exposition).
/// Shared by both scrape benchmarks so they price the same snapshot.
obs::Registry& scrape_registry() {
  static obs::Registry* registry = [] {
    auto* r = new obs::Registry();
    const bool was_enabled = obs::enabled();
    obs::set_enabled(true);
    for (int i = 0; i < 300; ++i) {
      r->counter("autosens_bench_events_total{source=\"s" + std::to_string(i) + "\"}")
          .inc(static_cast<std::uint64_t>(i) * 7 + 1);
      r->gauge("autosens_bench_depth{queue=\"q" + std::to_string(i) + "\"}")
          .set(static_cast<double>(i) * 0.5);
    }
    for (int i = 0; i < 40; ++i) {
      auto& histogram =
          r->histogram("autosens_bench_latency_ms{stage=\"p" + std::to_string(i) + "\"}");
      for (int j = 0; j < 32; ++j) histogram.observe(static_cast<double>(j % 17) * 3.0);
    }
    obs::set_enabled(was_enabled);
    return r;
  }();
  return *registry;
}

/// /metrics encode cost alone: the handler path (snapshot + text exposition)
/// with no socket in the loop. This is the floor a scraper can ever see.
void BM_ObsScrapeEncode(benchmark::State& state) {
  obs::ObsServer server({.registry = &scrape_registry()});
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto response = server.handle("/metrics");
    bytes = response.body.size();
    benchmark::DoNotOptimize(response.body.data());
  }
  state.counters["scrape_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ObsScrapeEncode)->Unit(benchmark::kMicrosecond);

/// Full live scrape: loopback HTTP GET against the serving thread, the cost
/// a Prometheus scraper (or `autosens watch`) actually imposes per poll.
void BM_ObsScrapeHttp(benchmark::State& state) {
  obs::ObsServer server({.registry = &scrape_registry()});
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto response = obs::http_get(server.port(), "/metrics");
    if (response.status != 200) state.SkipWithError("scrape failed");
    bytes = response.body.size();
  }
  state.counters["scrape_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_ObsScrapeHttp)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Columnar data-plane kernels (BENCH_columnar.json): zero-copy column access,
// the index-view day-block bootstrap, and the bootstrap replicate loop that
// they feed.

/// Column access: the legacy copy-out (materialize both columns as fresh
/// vectors, what times()/latencies() used to do) vs the span accessors.
void BM_DatasetColumns(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  const bool zero_copy = state.range(0) != 0;
  for (auto _ : state) {
    if (zero_copy) {
      const auto columns = dataset.columns();
      benchmark::DoNotOptimize(columns.times.data());
      benchmark::DoNotOptimize(columns.latencies.data());
    } else {
      const auto times = dataset.times();
      const auto latencies = dataset.latencies();
      std::vector<std::int64_t> time_copy(times.begin(), times.end());
      std::vector<double> latency_copy(latencies.begin(), latencies.end());
      benchmark::DoNotOptimize(time_copy.data());
      benchmark::DoNotOptimize(latency_copy.data());
    }
  }
  state.SetLabel(zero_copy ? "span" : "copy");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_DatasetColumns)->Arg(0)->Arg(1)->UseRealTime();

/// One bootstrap resample: the materializing legacy path (copy every record,
/// re-sort) vs the index view (O(days) block table).
void BM_DayBlockResample(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  const bool by_view = state.range(0) != 0;
  stats::Random random(13);
  for (auto _ : state) {
    if (by_view) {
      auto view = core::day_block_resample(dataset, random);
      benchmark::DoNotOptimize(view.size());
    } else {
      auto copy = core::day_block_resample_copy(dataset, random);
      benchmark::DoNotOptimize(copy.size());
    }
  }
  state.SetLabel(by_view ? "view" : "copy");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_DayBlockResample)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// The confidence-interval replicate loop end to end: resample + analyze,
/// 8 replicates per iteration, view vs copy resampling (byte-identical
/// intervals, very different allocation profiles).
void BM_ConfidenceReplicates(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  core::AutoSensOptions options;
  core::ConfidenceOptions confidence;
  confidence.replicates = 8;
  confidence.resample_by_view = state.range(0) != 0;
  for (auto _ : state) {
    stats::Random random(17);
    auto result = core::analyze_with_confidence(dataset, options, {300.0, 500.0, 1000.0},
                                                confidence, random);
    benchmark::DoNotOptimize(result.intervals.data());
  }
  state.SetLabel(confidence.resample_by_view ? "view" : "copy");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(confidence.replicates));
}
BENCHMARK(BM_ConfidenceReplicates)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Ingest engine (BENCH_ingest.json), fig3-scale (1M records). Arg(0) is the
// seed path — getline row-by-row for the text formats, serial ASL1 varint
// decode for binlog; Arg(N) is the chunked mmap-style path with N parse
// threads (the input is in memory either way, so the comparison isolates
// parse cost from disk).
//
// The `seed` namespace below is a frozen reconstruction of the pre-ingest-
// engine readers (commit e537279), kept verbatim so the before/after ratio
// in BENCH_ingest.json stays measurable after the originals were replaced:
// per-line std::vector<std::string_view> field splits for CSV, the callback
// ObjectParser with std::string error returns for JSONL, and the istream
// frame walk with payload copies, byte-at-a-time CRC, and per-record add()
// for ASL1 binlog.

namespace seed {

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

template <typename T>
bool parse_number(std::string_view text, T& out) {
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

telemetry::CsvReadResult read_csv(std::istream& in) {
  telemetry::CsvReadResult result;
  std::string line;
  std::size_t line_number = 0;
  if (!std::getline(in, line)) {
    throw std::runtime_error("read_csv: empty input (missing header)");
  }
  ++line_number;
  if (trim(line) != telemetry::kCsvHeader) {
    throw std::runtime_error("read_csv: unexpected header: " + line);
  }
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto fields = split_fields(trimmed);
    if (fields.size() != 6) {
      result.errors.push_back(
          {line_number, "expected 6 fields, got " + std::to_string(fields.size())});
      continue;
    }
    telemetry::ActionRecord record;
    if (!parse_number(trim(fields[0]), record.time_ms)) {
      result.errors.push_back({line_number, "bad time_ms"});
      continue;
    }
    if (!parse_number(trim(fields[1]), record.user_id)) {
      result.errors.push_back({line_number, "bad user_id"});
      continue;
    }
    const auto action = telemetry::parse_action_type(trim(fields[2]));
    if (!action) {
      result.errors.push_back({line_number, "unknown action type"});
      continue;
    }
    record.action = *action;
    if (!parse_number(trim(fields[3]), record.latency_ms)) {
      result.errors.push_back({line_number, "bad latency_ms"});
      continue;
    }
    const auto user_class = telemetry::parse_user_class(trim(fields[4]));
    if (!user_class) {
      result.errors.push_back({line_number, "unknown user class"});
      continue;
    }
    record.user_class = *user_class;
    const auto status = telemetry::parse_action_status(trim(fields[5]));
    if (!status) {
      result.errors.push_back({line_number, "unknown status"});
      continue;
    }
    record.status = *status;
    result.dataset.add(record);
  }
  result.dataset.sort_by_time();
  return result;
}

class ObjectParser {
 public:
  explicit ObjectParser(std::string_view text) : text_(text) {}

  template <typename Callback>
  std::string parse(Callback&& on_field) {
    skip_space();
    if (!consume('{')) return "expected '{'";
    skip_space();
    if (consume('}')) return finish();
    for (;;) {
      std::string_view key;
      if (!parse_string(key)) return "expected string key";
      skip_space();
      if (!consume(':')) return "expected ':'";
      skip_space();
      std::string_view value;
      bool is_string = false;
      if (peek() == '"') {
        if (!parse_string(value)) return "bad string value";
        is_string = true;
      } else {
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
               !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        value = text_.substr(start, pos_ - start);
        if (value.empty()) return "expected value";
      }
      const std::string error = on_field(key, value, is_string);
      if (!error.empty()) return error;
      skip_space();
      if (consume(',')) {
        skip_space();
        continue;
      }
      if (consume('}')) return finish();
      return "expected ',' or '}'";
    }
  }

 private:
  std::string finish() {
    skip_space();
    return pos_ == text_.size() ? "" : "trailing characters after object";
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool parse_string(std::string_view& out) {
    if (!consume('"')) return false;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return false;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    out = text_.substr(start, pos_ - start);
    ++pos_;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

telemetry::JsonlReadResult read_jsonl(std::istream& in) {
  telemetry::JsonlReadResult result;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = line;
    while (!trimmed.empty() && std::isspace(static_cast<unsigned char>(trimmed.back()))) {
      trimmed.remove_suffix(1);
    }
    if (trimmed.empty()) continue;
    telemetry::ActionRecord record;
    bool saw_time = false;
    bool saw_user = false;
    bool saw_action = false;
    bool saw_latency = false;
    bool saw_class = false;
    bool saw_status = false;
    ObjectParser parser(trimmed);
    const std::string error = parser.parse(
        [&](std::string_view key, std::string_view value, bool is_string) -> std::string {
          if (key == "time_ms" && !is_string) {
            if (!parse_number(value, record.time_ms)) return "bad time_ms";
            saw_time = true;
          } else if (key == "user_id" && !is_string) {
            if (!parse_number(value, record.user_id)) return "bad user_id";
            saw_user = true;
          } else if (key == "latency_ms" && !is_string) {
            if (!parse_number(value, record.latency_ms)) return "bad latency_ms";
            saw_latency = true;
          } else if (key == "action" && is_string) {
            const auto parsed = telemetry::parse_action_type(value);
            if (!parsed) return "unknown action type";
            record.action = *parsed;
            saw_action = true;
          } else if (key == "user_class" && is_string) {
            const auto parsed = telemetry::parse_user_class(value);
            if (!parsed) return "unknown user class";
            record.user_class = *parsed;
            saw_class = true;
          } else if (key == "status" && is_string) {
            const auto parsed = telemetry::parse_action_status(value);
            if (!parsed) return "unknown status";
            record.status = *parsed;
            saw_status = true;
          } else {
            return "unknown key: " + std::string(key);
          }
          return "";
        });
    if (!error.empty()) {
      result.errors.push_back({line_number, error});
      continue;
    }
    if (!(saw_time && saw_user && saw_action && saw_latency && saw_class && saw_status)) {
      result.errors.push_back({line_number, "missing required field"});
      continue;
    }
    result.dataset.add(record);
  }
  result.dataset.sort_by_time();
  return result;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t byte : data) crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

bool get_u32(std::istream& in, std::uint32_t& value) {
  std::array<std::uint8_t, 4> bytes{};
  if (!in.read(reinterpret_cast<char*>(bytes.data()), 4)) return false;
  value = static_cast<std::uint32_t>(bytes[0]) |
          (static_cast<std::uint32_t>(bytes[1]) << 8) |
          (static_cast<std::uint32_t>(bytes[2]) << 16) |
          (static_cast<std::uint32_t>(bytes[3]) << 24);
  return true;
}

telemetry::Dataset read_binlog(std::istream& in) {
  std::array<char, 4> magic{};
  if (!in.read(magic.data(), magic.size()) ||
      !(magic[0] == 'A' && magic[1] == 'S' && magic[2] == 'L' && magic[3] == '1')) {
    throw std::runtime_error("read_binlog: bad magic");
  }
  telemetry::Dataset dataset;
  std::uint32_t payload_len = 0;
  while (get_u32(in, payload_len)) {
    std::vector<std::uint8_t> payload(payload_len);
    if (payload_len > 0 && !in.read(reinterpret_cast<char*>(payload.data()), payload_len)) {
      throw std::runtime_error("read_binlog: truncated payload");
    }
    std::uint32_t stored_crc = 0;
    if (!get_u32(in, stored_crc)) throw std::runtime_error("read_binlog: truncated crc");
    if (stored_crc != crc32(payload)) {
      throw std::runtime_error("read_binlog: crc mismatch");
    }
    for (const auto& r : telemetry::codec::decode_batch(payload)) dataset.add(r);
  }
  if (!in.eof() && in.fail()) throw std::runtime_error("read_binlog: stream read failed");
  dataset.sort_by_time();
  return dataset;
}

}  // namespace seed

const std::string& million_record_csv() {
  static const std::string text = [] {
    std::ostringstream out;
    telemetry::write_csv(out, million_record_dataset());
    return out.str();
  }();
  return text;
}

const std::string& million_record_jsonl() {
  static const std::string text = [] {
    std::ostringstream out;
    telemetry::write_jsonl(out, million_record_dataset());
    return out.str();
  }();
  return text;
}

void BM_IngestCsv(benchmark::State& state) {
  const std::string& text = million_record_csv();
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::istringstream in(text);
  for (auto _ : state) {
    if (threads == 0) {
      in.clear();
      in.seekg(0);
      auto result = seed::read_csv(in);
      benchmark::DoNotOptimize(result.dataset.times().data());
    } else {
      auto result = telemetry::read_csv_buffer(text, {.threads = threads});
      benchmark::DoNotOptimize(result.dataset.times().data());
    }
  }
  state.SetLabel(threads == 0 ? "seed_getline" : "chunked");
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(million_record_dataset().size()));
}
BENCHMARK(BM_IngestCsv)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_IngestJsonl(benchmark::State& state) {
  const std::string& text = million_record_jsonl();
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::istringstream in(text);
  for (auto _ : state) {
    if (threads == 0) {
      in.clear();
      in.seekg(0);
      auto result = seed::read_jsonl(in);
      benchmark::DoNotOptimize(result.dataset.times().data());
    } else {
      auto result = telemetry::read_jsonl_buffer(text, {.threads = threads});
      benchmark::DoNotOptimize(result.dataset.times().data());
    }
  }
  state.SetLabel(threads == 0 ? "seed_getline" : "chunked");
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(million_record_dataset().size()));
}
BENCHMARK(BM_IngestJsonl)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_IngestBinlog(benchmark::State& state) {
  // Arg(0): the seed format and path — ASL1 rows, serial varint decode.
  // Arg(N): ASL2 columnar frames, CRC + memcpy with N threads.
  static const std::string v1_bytes = [] {
    std::ostringstream out;
    telemetry::write_binlog_v1(out, million_record_dataset());
    return out.str();
  }();
  static const std::string v2_bytes = [] {
    std::ostringstream out;
    telemetry::write_binlog(out, million_record_dataset());
    return out.str();
  }();
  const auto threads = static_cast<std::size_t>(state.range(0));
  const std::string& bytes = threads == 0 ? v1_bytes : v2_bytes;
  const std::span<const std::uint8_t> view(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  std::istringstream in(bytes);
  for (auto _ : state) {
    if (threads == 0) {
      in.clear();
      in.seekg(0);
      auto dataset = seed::read_binlog(in);
      benchmark::DoNotOptimize(dataset.times().data());
    } else {
      auto dataset = telemetry::read_binlog_buffer(view, {.threads = threads});
      benchmark::DoNotOptimize(dataset.times().data());
    }
  }
  state.SetLabel(threads == 0 ? "seed_v1_serial" : "v2_columnar");
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes.size()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(million_record_dataset().size()));
}
BENCHMARK(BM_IngestBinlog)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// SIMD analysis kernels (BENCH_kernels.json), fig3-scale inputs. Arg(0) pins
// the scalar path, Arg(1) runs the detected dispatch level, so the
// scalar-vs-SIMD speedup is computable from one JSON. Run with
// --benchmark_repetitions=N so every row carries per-repetition samples for
// the robust regression gate (tools/check_bench_regression.py).

/// Pin the SIMD dispatch level for one benchmark run.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(bool dispatch) {
    core::simd::set_level_override(dispatch ? core::simd::detected_level()
                                            : core::simd::Level::kScalar);
  }
  ~ScopedSimdLevel() { core::simd::set_level_override(std::nullopt); }
};

const char* simd_label(benchmark::State& state) {
  return state.range(0) != 0 ? "dispatch" : "scalar";
}

/// Biased histogram fill: 1M unit-weight adds into the fig3 latency geometry.
void BM_KernelBiasedFill(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  const auto latencies = dataset.latencies();
  ScopedSimdLevel level(state.range(0) != 0);
  for (auto _ : state) {
    stats::Histogram histogram(0.0, 10.0, 300);
    histogram.add_all(latencies);
    benchmark::DoNotOptimize(histogram.total_weight());
  }
  state.SetLabel(simd_label(state));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(latencies.size()));
}
BENCHMARK(BM_KernelBiasedFill)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Unbiased histogram fill: 1M Voronoi-weighted adds (weights precomputed so
/// the benchmark isolates the weighted fill, not the weight pass).
void BM_KernelUnbiasedFill(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  const auto latencies = dataset.latencies();
  static const std::vector<double> weights = [&] {
    const auto times = dataset.times();
    return stats::voronoi_weights(times, dataset.begin_time(), dataset.end_time());
  }();
  ScopedSimdLevel level(state.range(0) != 0);
  for (auto _ : state) {
    stats::Histogram histogram(0.0, 10.0, 300);
    histogram.add_all(latencies, weights);
    benchmark::DoNotOptimize(histogram.total_weight());
  }
  state.SetLabel(simd_label(state));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(latencies.size()));
}
BENCHMARK(BM_KernelUnbiasedFill)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// The fused classify+fill pass of the α estimator: per-block latency bin
/// indices through the dispatch layer, element-order adds into one of the
/// per-hour class histograms.
void BM_KernelClassifyFill(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  const auto times = dataset.times();
  const auto latencies = dataset.latencies();
  const core::AutoSensOptions options;
  const auto classes =
      static_cast<std::size_t>(telemetry::kMillisPerDay / options.alpha_slot_ms);
  ScopedSimdLevel level(state.range(0) != 0);
  for (auto _ : state) {
    std::vector<stats::Histogram> counts;
    counts.reserve(classes);
    for (std::size_t k = 0; k < classes; ++k) {
      counts.push_back(stats::Histogram::covering(0.0, options.max_latency_ms,
                                                  options.alpha_bin_width_ms));
    }
    const double lo = counts.front().lo();
    const double width = counts.front().bin_width();
    const std::size_t bins = counts.front().size();
    constexpr std::size_t kBlock = 1024;
    std::array<std::uint32_t, kBlock> bin;
    for (std::size_t offset = 0; offset < times.size(); offset += kBlock) {
      const std::size_t m = std::min(kBlock, times.size() - offset);
      core::simd::bin_indices(latencies.subspan(offset, m), lo, width, bins,
                              std::span<std::uint32_t>(bin.data(), m));
      for (std::size_t i = 0; i < m; ++i) {
        const auto slot = static_cast<std::size_t>(
            ((times[offset + i] % telemetry::kMillisPerDay) + telemetry::kMillisPerDay) %
            telemetry::kMillisPerDay / options.alpha_slot_ms);
        counts[slot].add_at(bin[i]);
      }
    }
    benchmark::DoNotOptimize(counts.front().total_weight());
  }
  state.SetLabel(simd_label(state));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(times.size()));
}
BENCHMARK(BM_KernelClassifyFill)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Savitzky–Golay smoothing as a FIR convolution (window 101, degree 3).
void BM_KernelSavitzkyGolay(benchmark::State& state) {
  const auto signal = random_values(30'000, 2);
  const stats::SavitzkyGolay filter({.window = 101, .degree = 3});
  ScopedSimdLevel level(state.range(0) != 0);
  for (auto _ : state) {
    auto smoothed = filter.smooth(signal);
    benchmark::DoNotOptimize(smoothed.data());
  }
  state.SetLabel(simd_label(state));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(signal.size()));
}
BENCHMARK(BM_KernelSavitzkyGolay)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Net fan-in saturation sweep (BENCH_net.json): records/s vs simulated
// session count for the three ingestion paths — the preserved poll()
// baseline (net/collector_poll.h), the sharded epoll collector at 1/2/4
// shards, and the batched UDP transport. Every row ships (roughly) the same
// total record budget; the sweep axis is how many sessions it is split
// across, so high-session rows measure connection churn and fan-in, not
// payload volume. Concurrency is capped at kNetBenchThreads emitter threads
// that work through the session list, mimicking a bounded client pool in
// front of a much larger session population. On multi-core hardware the
// sharded rows are the ≥3× records/s story vs the poll baseline at ≥1k
// sessions; on a single-core runner the sweep still records the whole curve
// (and the correctness suites prove byte-identity), the speedup is just not
// observable.

constexpr std::size_t kNetRecordBudget = 65'536;  ///< Records per iteration.
constexpr std::size_t kNetBenchThreads = 64;      ///< Concurrent emitter cap.
/// UDP has no backpressure: 64 unthrottled senders on one core overflow the
/// receive buffer faster than the collector can drain it, losing goodbyes
/// (all copies) and turning the row into an idle-timeout measurement. A
/// smaller pool keeps the burst inside the tuned rcvbuf.
constexpr std::size_t kNetUdpBenchThreads = 16;

const std::vector<telemetry::ActionRecord>& net_bench_batch(std::size_t per_session) {
  static std::vector<telemetry::ActionRecord> records;
  if (records.size() != per_session) {
    records.clear();
    records.reserve(per_session);
    for (std::size_t i = 0; i < per_session; ++i) {
      records.push_back({.time_ms = static_cast<std::int64_t>(i + 1),
                         .user_id = 1 + i % 7,
                         .latency_ms = 1.0 + 0.01 * static_cast<double>(i % 1000),
                         .action = telemetry::ActionType::kSearch,
                         .user_class = telemetry::UserClass::kConsumer,
                         .status = telemetry::ActionStatus::kSuccess});
    }
  }
  return records;
}

/// Drive `sessions` TCP sessions against the collector on `port`, at most
/// kNetBenchThreads concurrently; each session connects, ships one batch of
/// records, and closes with a goodbye.
void run_net_tcp_sessions(std::uint16_t port, std::size_t sessions,
                          const std::vector<telemetry::ActionRecord>& records) {
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  const std::size_t pool = std::min(sessions, kNetBenchThreads);
  threads.reserve(pool);
  for (std::size_t t = 0; t < pool; ++t) {
    threads.emplace_back([&] {
      for (std::size_t s = next.fetch_add(1); s < sessions; s = next.fetch_add(1)) {
        net::EmitterOptions options;
        options.batch_size = 256;
        options.session_id = s + 1;
        net::Emitter emitter(port, options);
        for (const auto& r : records) emitter.record(r);
        emitter.close();
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

/// UDP twin of run_net_tcp_sessions (datagram batching, goodbye copies and
/// the close-time retransmit pass at their defaults).
void run_net_udp_sessions(std::uint16_t port, std::size_t sessions,
                          const std::vector<telemetry::ActionRecord>& records) {
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  const std::size_t pool = std::min(sessions, kNetUdpBenchThreads);
  threads.reserve(pool);
  for (std::size_t t = 0; t < pool; ++t) {
    threads.emplace_back([&] {
      for (std::size_t s = next.fetch_add(1); s < sessions; s = next.fetch_add(1)) {
        net::UdpEmitterOptions options;
        options.batch_size = 256;
        options.sndbuf_bytes = 1 << 20;
        options.session_id = s + 1;
        net::UdpEmitter emitter(port, options);
        for (const auto& r : records) emitter.record(r);
        emitter.close();
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

std::size_t net_bench_per_session(std::size_t sessions) {
  return std::max<std::size_t>(1, kNetRecordBudget / sessions);
}

/// Baseline: the seed-era single-threaded poll() collector.
void BM_NetTcpPoll(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  const auto& records = net_bench_batch(net_bench_per_session(sessions));
  std::int64_t delivered = 0;
  for (auto _ : state) {
    net::PollCollectorThread collector(sessions, net::CollectorOptions{},
                                       /*timeout_ms=*/20'000);
    run_net_tcp_sessions(collector.port(), sessions, records);
    delivered += static_cast<std::int64_t>(collector.join().size());
  }
  state.SetLabel("poll_baseline");
  state.SetItemsProcessed(delivered);
}
BENCHMARK(BM_NetTcpPoll)->Arg(1)->Arg(64)->Arg(1024)->Arg(10'000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Sharded epoll collector; Args are {sessions, shards}.
void BM_NetTcpSharded(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const auto& records = net_bench_batch(net_bench_per_session(sessions));
  net::CollectorOptions options;
  options.shards = shards;
  std::int64_t delivered = 0;
  for (auto _ : state) {
    net::CollectorThread collector(sessions, options, /*timeout_ms=*/20'000);
    run_net_tcp_sessions(collector.port(), sessions, records);
    delivered += static_cast<std::int64_t>(collector.join().size());
  }
  state.SetLabel("sharded_epoll");
  state.SetItemsProcessed(delivered);
}
BENCHMARK(BM_NetTcpSharded)->ArgsProduct({{1, 64, 1024, 10'000}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// UDP transport through the sharded collector; Args are {sessions, shards}.
void BM_NetUdp(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const auto& records = net_bench_batch(net_bench_per_session(sessions));
  net::CollectorOptions options;
  options.transport = net::Transport::kUdp;
  options.shards = shards;
  options.rcvbuf_bytes = 1 << 22;  // Loopback bursts overflow default buffers.
  std::int64_t delivered = 0;
  for (auto _ : state) {
    // Short idle timeout: a rare lost-goodbye session (datagrams are allowed
    // to die) must not turn the row into a timeout measurement.
    net::CollectorThread collector(sessions, options, /*timeout_ms=*/5'000);
    run_net_udp_sessions(collector.port(), sessions, records);
    delivered += static_cast<std::int64_t>(collector.join().size());
  }
  state.SetLabel("udp_recvmmsg");
  state.SetItemsProcessed(delivered);
}
BENCHMARK(BM_NetUdp)->ArgsProduct({{1, 64, 1024, 10'000}, {1, 4}})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Out-of-core store (BENCH_store.json): full-store streaming scan throughput
// (bytes/s over the raw row payload) and the windowed analyze wall-clock,
// store-streamed vs the same windows filtered out of the in-memory dataset.
// Run with --benchmark_repetitions=5 for the regression gate's spike filter.

/// The shared 1M-record dataset spilled to an ASL3 store once per process.
const std::string& bench_store_dir() {
  static const std::string dir = [] {
    const auto path = std::filesystem::temp_directory_path() / "autosens_bench_store";
    std::filesystem::remove_all(path);
    telemetry::store::build_store(million_record_dataset(), path.string());
    return path.string();
  }();
  return dir;
}

/// Sequential scan of every partition into the biased latency histogram —
/// the store's streaming read throughput with decode + CRC on the hot path.
void BM_StoreScan(benchmark::State& state) {
  const auto store = telemetry::store::StoredDataset::open(bench_store_dir());
  const core::AutoSensOptions options;
  for (auto _ : state) {
    auto histogram = core::scan_biased_histogram(store, options);
    benchmark::DoNotOptimize(histogram.total_weight());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(store.raw_bytes()));
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(store.rows()));
}
BENCHMARK(BM_StoreScan)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Windowed analysis over the whole time range (7-day windows over 14 days).
/// Arg(0): in-memory baseline — windows filtered out of the resident dataset.
/// Arg(1): the out-of-core path — windows loaded from pruned partitions.
void BM_StoreAnalyze(benchmark::State& state) {
  const bool streamed = state.range(0) == 1;
  const auto store = telemetry::store::StoredDataset::open(bench_store_dir());
  const auto& dataset = million_record_dataset();
  const core::AutoSensOptions options;
  core::StoreStreamOptions stream;
  stream.window_ms = 7 * telemetry::kMillisPerDay;
  stream.scrub = false;  // Both sides analyze the raw windows.
  for (auto _ : state) {
    std::size_t records = 0;
    if (streamed) {
      core::analyze_store_windows(store, options, stream,
                                  [&](const core::StoreWindowResult& w) { records += w.records; });
    } else {
      for (std::int64_t begin = store.min_time_ms(); begin <= store.max_time_ms();
           begin += stream.window_ms) {
        const std::int64_t end = begin + stream.window_ms;
        const auto window = dataset.filtered([&](const telemetry::ActionRecord& r) {
          return r.time_ms >= begin && r.time_ms < end;
        });
        auto result = core::analyze(window, options);
        benchmark::DoNotOptimize(result.normalized.data());
        records += window.size();
      }
    }
    if (records != dataset.size()) state.SkipWithError("window tiling lost records");
  }
  state.SetLabel(streamed ? "store_windows" : "in_memory_windows");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_StoreAnalyze)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EndToEndAnalysis(benchmark::State& state) {
  auto config = simulate::paper_config(simulate::Scale::kTiny, 9);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(telemetry::by_action(
                             telemetry::ActionType::kSelectMail));
  const core::AutoSensOptions options;
  for (auto _ : state) {
    auto result = core::analyze(slice, options);
    benchmark::DoNotOptimize(result.normalized.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(slice.size()));
}
BENCHMARK(BM_EndToEndAnalysis);

}  // namespace
