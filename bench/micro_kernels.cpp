// Microbenchmarks (google-benchmark) of the library's hot kernels:
// histogram fill, Savitzky–Golay smoothing, Voronoi weights, nearest-sample
// draws, the telemetry codecs, the workload generator, and the end-to-end
// analysis pipeline.
#include <benchmark/benchmark.h>

#include <sstream>
#include <vector>

#include "core/pipeline.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "stats/sampling.h"
#include "stats/savitzky_golay.h"
#include "telemetry/binlog.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace {

using namespace autosens;

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = random.lognormal(5.8, 0.5);
  return values;
}

std::vector<std::int64_t> random_times(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  std::vector<std::int64_t> times(n);
  std::int64_t t = 0;
  for (auto& v : times) {
    t += static_cast<std::int64_t>(random.exponential(0.02)) + 1;
    v = t;
  }
  return times;
}

void BM_HistogramFill(benchmark::State& state) {
  const auto values = random_values(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    stats::Histogram h(0.0, 10.0, 300);
    h.add_all(values);
    benchmark::DoNotOptimize(h.total_weight());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramFill)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_SavitzkyGolay(benchmark::State& state) {
  const auto signal = random_values(static_cast<std::size_t>(state.range(0)), 2);
  const stats::SavitzkyGolay filter({.window = 101, .degree = 3});
  for (auto _ : state) {
    auto smoothed = filter.smooth(signal);
    benchmark::DoNotOptimize(smoothed.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SavitzkyGolay)->Arg(300)->Arg(3'000)->Arg(30'000);

void BM_VoronoiWeights(benchmark::State& state) {
  const auto times = random_times(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto weights = stats::voronoi_weights(times, 0, times.back() + 10);
    benchmark::DoNotOptimize(weights.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VoronoiWeights)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_NearestSampleDraws(benchmark::State& state) {
  const auto times = random_times(100'000, 4);
  stats::Random random(5);
  for (auto _ : state) {
    auto draws = stats::nearest_sample_draws(times, 0, times.back() + 10,
                                             static_cast<std::size_t>(state.range(0)), random);
    benchmark::DoNotOptimize(draws.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NearestSampleDraws)->Arg(10'000)->Arg(100'000);

void BM_BinlogEncode(benchmark::State& state) {
  auto config = simulate::paper_config(simulate::Scale::kTiny, 6);
  const auto dataset = simulate::WorkloadGenerator(config).generate().dataset;
  for (auto _ : state) {
    std::ostringstream out;
    telemetry::write_binlog(out, dataset);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_BinlogEncode);

void BM_BinlogDecode(benchmark::State& state) {
  auto config = simulate::paper_config(simulate::Scale::kTiny, 7);
  const auto dataset = simulate::WorkloadGenerator(config).generate().dataset;
  std::ostringstream out;
  telemetry::write_binlog(out, dataset);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto decoded = telemetry::read_binlog(in);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_BinlogDecode);

void BM_WorkloadGenerator(benchmark::State& state) {
  const auto config = simulate::paper_config(simulate::Scale::kTiny, 8);
  std::size_t records = 0;
  for (auto _ : state) {
    simulate::WorkloadGenerator generator(config);
    auto result = generator.generate();
    records = result.accepted;
    benchmark::DoNotOptimize(result.dataset.records().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records));
}
BENCHMARK(BM_WorkloadGenerator);

void BM_EndToEndAnalysis(benchmark::State& state) {
  auto config = simulate::paper_config(simulate::Scale::kTiny, 9);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(telemetry::by_action(
                             telemetry::ActionType::kSelectMail));
  const core::AutoSensOptions options;
  for (auto _ : state) {
    auto result = core::analyze(slice, options);
    benchmark::DoNotOptimize(result.normalized.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(slice.size()));
}
BENCHMARK(BM_EndToEndAnalysis);

}  // namespace
