// Microbenchmarks (google-benchmark) of the library's hot kernels:
// histogram fill, Savitzky–Golay smoothing, Voronoi weights, nearest-sample
// draws, the telemetry codecs, the workload generator, and the end-to-end
// analysis pipeline.
#include <benchmark/benchmark.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/confidence.h"
#include "core/pipeline.h"
#include "core/slices.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "stats/bootstrap.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "stats/sampling.h"
#include "stats/savitzky_golay.h"
#include "telemetry/binlog.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace {

using namespace autosens;

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = random.lognormal(5.8, 0.5);
  return values;
}

std::vector<std::int64_t> random_times(std::size_t n, std::uint64_t seed) {
  stats::Random random(seed);
  std::vector<std::int64_t> times(n);
  std::int64_t t = 0;
  for (auto& v : times) {
    t += static_cast<std::int64_t>(random.exponential(0.02)) + 1;
    v = t;
  }
  return times;
}

void BM_HistogramFill(benchmark::State& state) {
  const auto values = random_values(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    stats::Histogram h(0.0, 10.0, 300);
    h.add_all(values);
    benchmark::DoNotOptimize(h.total_weight());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HistogramFill)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_SavitzkyGolay(benchmark::State& state) {
  const auto signal = random_values(static_cast<std::size_t>(state.range(0)), 2);
  const stats::SavitzkyGolay filter({.window = 101, .degree = 3});
  for (auto _ : state) {
    auto smoothed = filter.smooth(signal);
    benchmark::DoNotOptimize(smoothed.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SavitzkyGolay)->Arg(300)->Arg(3'000)->Arg(30'000);

void BM_VoronoiWeights(benchmark::State& state) {
  const auto times = random_times(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto weights = stats::voronoi_weights(times, 0, times.back() + 10);
    benchmark::DoNotOptimize(weights.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VoronoiWeights)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_NearestSampleDraws(benchmark::State& state) {
  const auto times = random_times(100'000, 4);
  stats::Random random(5);
  for (auto _ : state) {
    auto draws = stats::nearest_sample_draws(times, 0, times.back() + 10,
                                             static_cast<std::size_t>(state.range(0)), random);
    benchmark::DoNotOptimize(draws.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NearestSampleDraws)->Arg(10'000)->Arg(100'000);

void BM_BinlogEncode(benchmark::State& state) {
  auto config = simulate::paper_config(simulate::Scale::kTiny, 6);
  const auto dataset = simulate::WorkloadGenerator(config).generate().dataset;
  for (auto _ : state) {
    std::ostringstream out;
    telemetry::write_binlog(out, dataset);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_BinlogEncode);

void BM_BinlogDecode(benchmark::State& state) {
  auto config = simulate::paper_config(simulate::Scale::kTiny, 7);
  const auto dataset = simulate::WorkloadGenerator(config).generate().dataset;
  std::ostringstream out;
  telemetry::write_binlog(out, dataset);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    auto decoded = telemetry::read_binlog(in);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_BinlogDecode);

void BM_WorkloadGenerator(benchmark::State& state) {
  const auto config = simulate::paper_config(simulate::Scale::kTiny, 8);
  std::size_t records = 0;
  for (auto _ : state) {
    simulate::WorkloadGenerator generator(config);
    auto result = generator.generate();
    records = result.accepted;
    benchmark::DoNotOptimize(result.dataset.records().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records));
}
BENCHMARK(BM_WorkloadGenerator);

// ---------------------------------------------------------------------------
// --threads scaling of the parallel execution layer (BENCH_parallel.json).
// Each benchmark takes the worker-thread count as its argument; results are
// byte-identical across arguments, only the wall clock changes.

/// A shared 1M-record, 14-day dataset with diurnal structure (built once).
const telemetry::Dataset& million_record_dataset() {
  static const telemetry::Dataset dataset = [] {
    constexpr std::size_t kRecords = 1'000'000;
    constexpr int kDays = 14;
    stats::Random random(97);
    telemetry::Dataset built;
    built.reserve(kRecords);
    const std::int64_t begin = 400 * telemetry::kMillisPerDay;
    constexpr auto kSpan = static_cast<double>(kDays) * telemetry::kMillisPerDay;
    constexpr telemetry::ActionType kActions[] = {
        telemetry::ActionType::kSelectMail, telemetry::ActionType::kSwitchFolder,
        telemetry::ActionType::kSelectMail, telemetry::ActionType::kSearch,
        telemetry::ActionType::kComposeSend};
    for (std::size_t i = 0; i < kRecords; ++i) {
      telemetry::ActionRecord record;
      record.time_ms = begin + static_cast<std::int64_t>(
                                   kSpan * static_cast<double>(i) / kRecords);
      const double hour =
          static_cast<double>(record.time_ms % telemetry::kMillisPerDay) /
          static_cast<double>(telemetry::kMillisPerHour);
      const double diurnal = 120.0 * std::sin(hour / 24.0 * 2.0 * 3.141592653589793);
      record.latency_ms = std::min(
          2900.0, 180.0 + diurnal + 250.0 * -std::log(1.0 - random.uniform(0.0, 1.0)));
      record.user_id = i % 499;
      record.action = kActions[i % 5];
      record.user_class = (i % 3 == 0) ? telemetry::UserClass::kBusiness
                                       : telemetry::UserClass::kConsumer;
      built.add(record);
    }
    built.sort_by_time();
    return built;
  }();
  return dataset;
}

void BM_PipelineAnalyzeThreads(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  core::AutoSensOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = core::analyze(dataset, options);
    benchmark::DoNotOptimize(result.normalized.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_PipelineAnalyzeThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SlicesByActionThreads(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  core::AutoSensOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto curves = core::preference_by_action(dataset, options);
    benchmark::DoNotOptimize(curves.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_SlicesByActionThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MonteCarloUnbiasedThreads(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  core::AutoSensOptions options;
  options.unbiased_method = core::UnbiasedMethod::kMonteCarlo;
  options.unbiased_draws = 2'000'000;
  options.normalize_time_confounder = false;  // isolate the MC estimator
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto result = core::analyze(dataset, options);
    benchmark::DoNotOptimize(result.normalized.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(options.unbiased_draws));
}
BENCHMARK(BM_MonteCarloUnbiasedThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_BootstrapThreads(benchmark::State& state) {
  const auto values = random_values(200'000, 11);
  const auto mean = [](std::span<const double> sample) {
    double sum = 0.0;
    for (const double v : sample) sum += v;
    return sum / static_cast<double>(sample.size());
  };
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    stats::Random random(12);
    auto interval = stats::bootstrap_interval(values, mean, 100, 0.95, random, threads);
    benchmark::DoNotOptimize(interval.lo);
  }
  state.SetItemsProcessed(state.iterations() * 100 * 200'000);
}
BENCHMARK(BM_BootstrapThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// Observability overhead on the fig3-scale pipeline: Arg selects how much
/// instrumentation is live. Arg(0) is the shipping default (compiled in,
/// disabled — every hook is one relaxed atomic load); comparing it against
/// the other Threads pipeline numbers bounds the disabled overhead, and
/// Arg(1)/Arg(2) price fully-enabled metrics and metrics+tracing.
void BM_ObsAnalyzeOverhead(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  const core::AutoSensOptions options;
  const auto mode = state.range(0);
  obs::set_enabled(mode >= 1);
  obs::Tracer::global().set_enabled(mode >= 2);
  {
    // Untimed warm-up so the first variant doesn't eat the cold-cache cost
    // and skew the disabled-vs-enabled comparison.
    auto warmup = core::analyze(dataset, options);
    benchmark::DoNotOptimize(warmup.normalized.data());
  }
  for (auto _ : state) {
    auto result = core::analyze(dataset, options);
    benchmark::DoNotOptimize(result.normalized.data());
  }
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();
  obs::set_enabled(false);
  state.SetLabel(mode == 0 ? "obs_disabled" : mode == 1 ? "metrics_on" : "metrics_and_trace_on");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_ObsAnalyzeOverhead)
    ->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Columnar data-plane kernels (BENCH_columnar.json): zero-copy column access,
// the index-view day-block bootstrap, and the bootstrap replicate loop that
// they feed.

/// Column access: the legacy copy-out (materialize both columns as fresh
/// vectors, what times()/latencies() used to do) vs the span accessors.
void BM_DatasetColumns(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  const bool zero_copy = state.range(0) != 0;
  for (auto _ : state) {
    if (zero_copy) {
      const auto columns = dataset.columns();
      benchmark::DoNotOptimize(columns.times.data());
      benchmark::DoNotOptimize(columns.latencies.data());
    } else {
      const auto times = dataset.times();
      const auto latencies = dataset.latencies();
      std::vector<std::int64_t> time_copy(times.begin(), times.end());
      std::vector<double> latency_copy(latencies.begin(), latencies.end());
      benchmark::DoNotOptimize(time_copy.data());
      benchmark::DoNotOptimize(latency_copy.data());
    }
  }
  state.SetLabel(zero_copy ? "span" : "copy");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_DatasetColumns)->Arg(0)->Arg(1)->UseRealTime();

/// One bootstrap resample: the materializing legacy path (copy every record,
/// re-sort) vs the index view (O(days) block table).
void BM_DayBlockResample(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  const bool by_view = state.range(0) != 0;
  stats::Random random(13);
  for (auto _ : state) {
    if (by_view) {
      auto view = core::day_block_resample(dataset, random);
      benchmark::DoNotOptimize(view.size());
    } else {
      auto copy = core::day_block_resample_copy(dataset, random);
      benchmark::DoNotOptimize(copy.size());
    }
  }
  state.SetLabel(by_view ? "view" : "copy");
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_DayBlockResample)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// The confidence-interval replicate loop end to end: resample + analyze,
/// 8 replicates per iteration, view vs copy resampling (byte-identical
/// intervals, very different allocation profiles).
void BM_ConfidenceReplicates(benchmark::State& state) {
  const auto& dataset = million_record_dataset();
  core::AutoSensOptions options;
  core::ConfidenceOptions confidence;
  confidence.replicates = 8;
  confidence.resample_by_view = state.range(0) != 0;
  for (auto _ : state) {
    stats::Random random(17);
    auto result = core::analyze_with_confidence(dataset, options, {300.0, 500.0, 1000.0},
                                                confidence, random);
    benchmark::DoNotOptimize(result.intervals.data());
  }
  state.SetLabel(confidence.resample_by_view ? "view" : "copy");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(confidence.replicates));
}
BENCHMARK(BM_ConfidenceReplicates)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_EndToEndAnalysis(benchmark::State& state) {
  auto config = simulate::paper_config(simulate::Scale::kTiny, 9);
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(telemetry::by_action(
                             telemetry::ActionType::kSelectMail));
  const core::AutoSensOptions options;
  for (auto _ : state) {
    auto result = core::analyze(slice, options);
    benchmark::DoNotOptimize(result.normalized.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(slice.size()));
}
BENCHMARK(BM_EndToEndAnalysis);

}  // namespace
