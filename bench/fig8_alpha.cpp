// Figure 8 (paper §3.6): the time-based activity factor α per 6-hour period
// for SelectMail / business users, with 8am–2pm as the reference. The
// paper's findings: α is much lower in the night periods (less activity
// regardless of latency), and α stays flat across the latency range —
// justifying the per-period averaging of §2.4.1.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/confounder_time.h"
#include "report/ascii_chart.h"
#include "report/compare.h"
#include "report/table.h"
#include "simulate/presets.h"
#include "stats/descriptive.h"
#include "telemetry/filter.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();
  const auto slice = workload.dataset.filtered(telemetry::all_of(
      {telemetry::by_action(telemetry::ActionType::kSelectMail),
       telemetry::by_user_class(telemetry::UserClass::kBusiness)}));

  core::AutoSensOptions options;
  const auto alpha = core::alpha_by_period(slice, options);
  const auto planted = simulate::expected_alpha_by_period(workload.config);

  std::cout << "Figure 8 — time-based activity factor alpha by period "
               "(ref 8am-2pm)\n\n";
  report::Table table({"period", "records", "mean alpha", "planted alpha"});
  for (const auto& pa : alpha) {
    table.add_row({std::string(telemetry::to_string(pa.period)), std::to_string(pa.records),
                   report::Table::num(pa.mean_alpha),
                   report::Table::num(planted[static_cast<std::size_t>(pa.period)])});
  }
  table.print(std::cout);
  std::cout << '\n';

  // alpha as a function of latency, per period (the flatness claim).
  std::vector<report::Series> chart;
  for (const auto& pa : alpha) {
    report::Series series;
    series.name = std::string(telemetry::to_string(pa.period));
    for (std::size_t i = 0; i < pa.alpha.size(); ++i) {
      if (pa.valid[i]) {
        series.x.push_back(pa.latency_ms[i]);
        series.y.push_back(pa.alpha[i]);
      }
    }
    chart.push_back(std::move(series));
  }
  report::ChartOptions chart_options;
  chart_options.x_label = "latency (ms)";
  chart_options.y_label = "alpha";
  render_chart(std::cout, chart, chart_options);
  std::cout << '\n';

  report::Comparison comparison("Fig 8: alpha per period vs planted diurnal activity");
  for (const auto& pa : alpha) {
    comparison.check_value(std::string(telemetry::to_string(pa.period)),
                           planted[static_cast<std::size_t>(pa.period)], pa.mean_alpha, 0.12);
  }
  // Flatness: coefficient of variation across latency bins stays small.
  for (const auto& pa : alpha) {
    stats::RunningStats s;
    for (std::size_t i = 0; i < pa.alpha.size(); ++i) {
      if (pa.valid[i]) s.add(pa.alpha[i]);
    }
    if (s.count() >= 3) {
      comparison.check_value(std::string(telemetry::to_string(pa.period)) + " CV (flat)",
                             0.0, s.stddev() / s.mean(), 0.25);
    }
  }
  comparison.print(std::cout);
  return 0;
}
