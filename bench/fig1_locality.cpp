// Figure 1 (paper §2.1): the MSD/MAD ratio of the latency time series of
// user actions, compared against the same series randomly shuffled and fully
// sorted. The paper's finding: the actual ratio is far below the shuffled
// baseline (strong temporal locality), while sorting drives it to ~0.
//
// Reproduction contract: actual ≪ shuffled ≈ 1; sorted ≈ 0.
#include <iostream>

#include "bench/common.h"
#include "core/locality.h"
#include "report/compare.h"
#include "report/table.h"
#include "telemetry/filter.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();
  // The paper's Fig 1 uses the action latency stream; slice to SelectMail to
  // avoid mixing per-type base latencies into the successive differences.
  const auto slice = workload.dataset.filtered(
      telemetry::by_action(telemetry::ActionType::kSelectMail));

  stats::Random random(7);
  core::LocalityOptions options;
  const auto report = core::analyze_locality(slice, options, random);

  std::cout << "Figure 1 — temporal locality of latency (MSD/MAD ratio)\n";
  std::cout << "samples: " << report.samples << "\n\n";
  report::Table table({"series", "MSD/MAD ratio"});
  table.add_row({"actual", report::Table::num(report.msd_mad_actual)});
  table.add_row({"shuffled", report::Table::num(report.msd_mad_shuffled)});
  table.add_row({"sorted", report::Table::num(report.msd_mad_sorted)});
  table.print(std::cout);
  std::cout << '\n';

  report::Comparison comparison("Fig 1: MSD/MAD locality structure");
  // Shuffled i.i.d.-like baseline sits at 1 by construction of the test.
  comparison.check_value("shuffled ratio ~ 1", 1.0, report.msd_mad_shuffled, 0.05);
  // The actual series must show strong locality: well under the baseline.
  comparison.check_value("actual / shuffled << 1", 0.45,
                         report.msd_mad_actual / report.msd_mad_shuffled, 0.30);
  comparison.check_value("sorted ratio ~ 0", 0.0, report.msd_mad_sorted, 0.01);
  comparison.print(std::cout);
  return 0;
}
