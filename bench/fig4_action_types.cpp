// Figure 4 (paper §3.2): normalized latency preference across action types
// for business users, reference latency 300 ms. Paper numbers for
// SelectMail: 0.88 / 0.68 / 0.61 at 500 / 1000 / 1500 ms; SwitchFolder
// slightly shallower; Search much shallower; ComposeSend nearly flat.
//
// Also covers §3.5 (preference vs bottleneck): the drop factor from 500 ms
// to 1000 ms is ~1.3 and from 1000 ms to 2000 ms ~1.1 — far from the 2x per
// doubling a pure latency bottleneck would produce.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/slices.h"
#include "report/ascii_chart.h"
#include "report/compare.h"
#include "report/csvout.h"
#include "report/table.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();

  core::AutoSensOptions options;
  const auto curves = core::preference_by_action(workload.dataset, options,
                                                 telemetry::UserClass::kBusiness);

  std::cout << "Figure 4 — normalized latency preference by action type "
               "(business users, ref 300 ms)\n\n";
  report::Table table({"latency (ms)", "SelectMail", "SwitchFolder", "Search", "ComposeSend"});
  for (const double latency : {300.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0, 2000.0}) {
    std::vector<std::string> row = {report::Table::num(latency, 0)};
    for (const auto& curve : curves) {
      row.push_back(curve.result.covers(latency) ? report::Table::num(curve.result.at(latency))
                                                 : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';

  std::vector<report::Series> chart;
  for (const auto& curve : curves) chart.push_back(report::to_series(curve));
  report::ChartOptions chart_options;
  chart_options.x_label = "latency (ms)";
  chart_options.y_label = "normalized latency preference";
  render_chart(std::cout, chart, chart_options);
  std::cout << '\n';

  // Paper anchors. Heterogeneity attenuates the measured drop by a few
  // hundredths relative to the planted curves (DESIGN.md), hence the
  // tolerances.
  const auto& select = curves[0].result;
  const auto& folder = curves[1].result;
  const auto& search = curves[2].result;
  const auto& compose = curves[3].result;
  report::Comparison comparison("Fig 4: action-type preference anchors (paper values)");
  comparison.check(select, 500.0, 0.88, 0.06);
  comparison.check(select, 1000.0, 0.68, 0.09);
  comparison.check(select, 1500.0, 0.61, 0.10);
  comparison.check(folder, 1000.0, 0.73, 0.09);
  comparison.check(search, 1000.0, 0.895, 0.07);
  comparison.check(compose, 1000.0, 1.0, 0.05);
  comparison.print(std::cout);

  report::Comparison ordering("Fig 4: curve ordering at 1000 ms");
  ordering.check_value("SelectMail < SwitchFolder", 1.0,
                       folder.at(1000.0) > select.at(1000.0) ? 1.0 : 0.0, 0.0);
  ordering.check_value("SwitchFolder < Search", 1.0,
                       search.at(1000.0) > folder.at(1000.0) ? 1.0 : 0.0, 0.0);
  ordering.check_value("Search < ComposeSend", 1.0,
                       compose.at(1000.0) > search.at(1000.0) ? 1.0 : 0.0, 0.0);
  ordering.print(std::cout);

  // §3.5: preference, not bottleneck.
  const double factor_1 = select.at(500.0) / select.at(1000.0);
  const double factor_2 = select.at(1000.0) / select.at(2000.0);
  std::cout << "§3.5 — bottleneck check: drop factor 500→1000 ms = "
            << report::Table::num(factor_1, 2) << " (paper ~1.3), 1000→2000 ms = "
            << report::Table::num(factor_2, 2)
            << " (paper ~1.1); a pure bottleneck would give 2.0 per doubling\n\n";
  report::Comparison bottleneck("§3.5: drop factors far below 2x per doubling");
  bottleneck.check_value("factor 500→1000", 1.3, factor_1, 0.2);
  bottleneck.check_value("factor 1000→2000", 1.1, factor_2, 0.2);
  bottleneck.print(std::cout);

  report::write_preference_csv_file("fig4_action_types.csv", curves);
  std::cout << "series written to fig4_action_types.csv\n";
  return 0;
}
