// Figure 5 (paper §3.3): normalized latency preference for the SelectMail
// action, business vs consumer users. The paper's finding: the drop-off is
// sharper for business (paying) users; consumers are more latency-tolerant.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/slices.h"
#include "report/ascii_chart.h"
#include "report/compare.h"
#include "report/csvout.h"
#include "report/table.h"
#include "simulate/presets.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();

  core::AutoSensOptions options;
  const auto curves = core::preference_by_user_class(workload.dataset, options,
                                                     telemetry::ActionType::kSelectMail);
  if (curves.size() != 2) {
    std::cout << "fig5: missing slice (business/consumer)\n";
    return 0;
  }
  const auto& business = curves[0].result;
  const auto& consumer = curves[1].result;

  std::cout << "Figure 5 — SelectMail preference: business vs consumer (ref 300 ms)\n\n";
  report::Table table({"latency (ms)", "business", "consumer"});
  for (const double latency : {300.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0}) {
    table.add_row({report::Table::num(latency, 0),
                   business.covers(latency) ? report::Table::num(business.at(latency)) : "-",
                   consumer.covers(latency) ? report::Table::num(consumer.at(latency)) : "-"});
  }
  table.print(std::cout);
  std::cout << '\n';

  std::vector<report::Series> chart;
  for (const auto& curve : curves) chart.push_back(report::to_series(curve));
  report::ChartOptions chart_options;
  chart_options.x_label = "latency (ms)";
  chart_options.y_label = "normalized latency preference";
  render_chart(std::cout, chart, chart_options);
  std::cout << '\n';

  // Planted ground truth: consumer drop is 0.65x the business drop.
  const auto planted_business = simulate::expected_pooled_curve(
      workload.config, telemetry::ActionType::kSelectMail,
      telemetry::UserClass::kBusiness, options.reference_latency_ms);
  const auto planted_consumer = simulate::expected_pooled_curve(
      workload.config, telemetry::ActionType::kSelectMail,
      telemetry::UserClass::kConsumer, options.reference_latency_ms);

  report::Comparison comparison("Fig 5: business steeper than consumer");
  comparison.check(business, 1000.0, planted_business(1000.0), 0.09);
  comparison.check(consumer, 1000.0, planted_consumer(1000.0), 0.09);
  comparison.check_value("consumer - business at 1000 ms (planted gap)",
                         planted_consumer(1000.0) - planted_business(1000.0),
                         consumer.at(1000.0) - business.at(1000.0), 0.08);
  comparison.check_value("ordering holds (consumer > business)", 1.0,
                         consumer.at(1000.0) > business.at(1000.0) ? 1.0 : 0.0, 0.0);
  comparison.print(std::cout);

  report::write_preference_csv_file("fig5_business_consumer.csv", curves);
  std::cout << "series written to fig5_business_consumer.csv\n";
  return 0;
}
