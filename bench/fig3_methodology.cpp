// Figure 3 (paper §2.2–2.3): the AutoSens methodology end to end on one
// slice — (a) the nearest-sample construction of the unbiased distribution,
// (b) the biased (B) and unbiased (U) PDFs, and (c) the B/U latency
// preference, raw and Savitzky–Golay smoothed.
//
// Reproduction contract: B visibly leans toward lower latency than U, the
// raw ratio is noisy, and the smoothed ratio is a clean decreasing curve.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/biased.h"
#include "core/pipeline.h"
#include "stats/sampling.h"
#include "report/ascii_chart.h"
#include "report/compare.h"
#include "report/table.h"
#include "telemetry/filter.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();
  const auto slice = workload.dataset.filtered(telemetry::all_of(
      {telemetry::by_action(telemetry::ActionType::kSelectMail),
       telemetry::by_user_class(telemetry::UserClass::kBusiness)}));

  core::AutoSensOptions options;
  const auto analysis = core::analyze_detailed(slice, options);
  const auto& pref = analysis.preference;

  // (a) Illustrate the nearest-sample draw on a small window.
  std::cout << "Figure 3(a) — nearest-sample construction of U\n";
  {
    const auto times = slice.times();
    const auto latencies = slice.latencies();
    stats::Random random(3);
    const std::int64_t t0 = slice.begin_time();
    const auto draws = stats::nearest_sample_draws(
        times, t0, t0 + telemetry::kMillisPerMinute * 30, 5, random);
    report::Table table({"random-draw #", "selected sample time (s)", "latency (ms)"});
    for (std::size_t i = 0; i < draws.size(); ++i) {
      table.add_row({std::to_string(i + 1),
                     report::Table::num(static_cast<double>(times[draws[i]] - t0) / 1000.0, 1),
                     report::Table::num(latencies[draws[i]], 1)});
    }
    table.print(std::cout);
  }

  // (b) The B and U PDFs.
  const auto b_pdf = analysis.biased.pdf();
  const auto u_pdf = analysis.unbiased.pdf();
  std::vector<report::Series> pdf_chart(2);
  pdf_chart[0].name = "B (biased)";
  pdf_chart[1].name = "U (unbiased)";
  for (std::size_t i = pref.support_begin; i < pref.support_end; i += 2) {
    pdf_chart[0].x.push_back(pref.latency_ms[i]);
    pdf_chart[0].y.push_back(b_pdf[i]);
    pdf_chart[1].x.push_back(pref.latency_ms[i]);
    pdf_chart[1].y.push_back(u_pdf[i]);
  }
  std::cout << "\nFigure 3(b) — biased vs unbiased latency PDFs\n";
  report::ChartOptions pdf_options;
  pdf_options.x_label = "latency (ms)";
  pdf_options.y_label = "density";
  render_chart(std::cout, pdf_chart, pdf_options);

  // (c) Raw vs smoothed preference.
  std::vector<report::Series> ratio_chart(2);
  ratio_chart[0].name = "raw B/U";
  ratio_chart[1].name = "smoothed";
  for (std::size_t i = pref.support_begin; i < pref.support_end; i += 2) {
    if (pref.valid[i]) {
      ratio_chart[0].x.push_back(pref.latency_ms[i]);
      ratio_chart[0].y.push_back(pref.raw_ratio[i]);
    }
    ratio_chart[1].x.push_back(pref.latency_ms[i]);
    ratio_chart[1].y.push_back(pref.smoothed[i]);
  }
  std::cout << "\nFigure 3(c) — latency preference B/U, raw and SG-smoothed\n";
  report::ChartOptions ratio_options;
  ratio_options.x_label = "latency (ms)";
  ratio_options.y_label = "preference";
  render_chart(std::cout, ratio_chart, ratio_options);
  std::cout << '\n';

  // Quantitative shape checks.
  report::Comparison comparison("Fig 3: methodology structure");
  // B leans low: its mean latency is below U's.
  comparison.check_value("mean(B) / mean(U) < 1", 0.93,
                         analysis.biased.mean() / analysis.unbiased.mean(), 0.06);
  // Smoothing matters: residual raw-vs-smoothed scatter is nonzero.
  double scatter = 0.0;
  std::size_t bins = 0;
  for (std::size_t i = pref.support_begin; i < pref.support_end; ++i) {
    if (!pref.valid[i]) continue;
    const double d = pref.raw_ratio[i] - pref.smoothed[i];
    scatter += d * d;
    ++bins;
  }
  scatter = bins > 0 ? scatter / static_cast<double>(bins) : 0.0;
  comparison.check_value("raw ratio is noisy (bin-level MSE > 0.001)", 1.0,
                         scatter > 0.001 ? 1.0 : 0.0, 0.0);
  // The smoothed, normalized curve decreases from the reference onward.
  comparison.check_value("preference at 1000ms < 1", 0.75, pref.at(1000.0), 0.13);
  comparison.print(std::cout);
  return 0;
}
