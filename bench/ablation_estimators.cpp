// Ablations of AutoSens design choices (DESIGN.md §5):
//
//   A. Unbiased-distribution estimator: the paper's Monte-Carlo
//      nearest-sample procedure vs the exact Voronoi expectation — MC
//      converges to Voronoi as the draw count grows, at linear cost.
//   B. Time-confounder normalization: preference recovery error with and
//      without α-normalization on a confounded workload.
//   C. Number of α reference slots: stability of the recovered curve as the
//      "multiple references averaged" count varies.
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench/common.h"
#include "core/pipeline.h"
#include "report/compare.h"
#include "report/table.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"

namespace {

double l1_pdf_distance(const autosens::stats::Histogram& a,
                       const autosens::stats::Histogram& b) {
  const auto pa = a.pdf();
  const auto pb = b.pdf();
  double l1 = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    l1 += std::abs(pa[i] - pb[i]) * a.bin_width();
  }
  return l1;
}

}  // namespace

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();
  const auto slice = workload.dataset.filtered(telemetry::all_of(
      {telemetry::by_action(telemetry::ActionType::kSelectMail),
       telemetry::by_user_class(telemetry::UserClass::kBusiness)}));

  // --- Ablation A: Monte Carlo vs exact Voronoi -------------------------
  std::cout << "Ablation A — Monte-Carlo vs exact (Voronoi) unbiased estimator\n\n";
  core::AutoSensOptions options;
  const auto times = slice.times();
  const auto latencies = slice.latencies();
  const core::TimeWindow window{.begin_ms = slice.begin_time(), .end_ms = slice.end_time()};

  const auto t0 = std::chrono::steady_clock::now();
  const auto exact = core::unbiased_histogram_voronoi(times, latencies, window, options);
  const auto t1 = std::chrono::steady_clock::now();
  const double exact_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  report::Table table({"draws", "L1 distance to exact", "time (ms)"});
  double last_l1 = 1.0;
  for (const std::size_t draws : {1'000ul, 10'000ul, 100'000ul, 1'000'000ul}) {
    auto mc_options = options;
    mc_options.unbiased_draws = draws;
    stats::Random random(11);
    const auto begin = std::chrono::steady_clock::now();
    const auto mc = core::unbiased_histogram_mc(times, latencies, window, mc_options, random);
    const auto end = std::chrono::steady_clock::now();
    last_l1 = l1_pdf_distance(mc, exact);
    table.add_row({std::to_string(draws), report::Table::num(last_l1, 4),
                   report::Table::num(
                       std::chrono::duration<double, std::milli>(end - begin).count(), 1)});
  }
  table.add_row({"exact (Voronoi)", "0.0000", report::Table::num(exact_ms, 1)});
  table.print(std::cout);
  std::cout << '\n';

  report::Comparison ablation_a("Ablation A: MC converges to the exact estimator");
  ablation_a.check_value("L1(mc 1M draws, exact) ~ 0", 0.0, last_l1, 0.02);
  ablation_a.print(std::cout);

  // --- Ablation B: with vs without alpha-normalization ------------------
  std::cout << "Ablation B — naive pooling vs alpha-normalization\n\n";
  const auto planted = simulate::expected_pooled_curve(
      workload.config, telemetry::ActionType::kSelectMail, telemetry::UserClass::kBusiness,
      options.reference_latency_ms);
  auto naive_options = options;
  naive_options.normalize_time_confounder = false;
  const auto normalized = core::analyze(slice, options);
  const auto naive = core::analyze(slice, naive_options);

  report::Table recovery({"latency (ms)", "planted", "normalized", "naive"});
  double err_normalized = 0.0;
  double err_naive = 0.0;
  std::size_t probes = 0;
  for (const double latency : {500.0, 750.0, 1000.0, 1250.0, 1500.0}) {
    if (!normalized.covers(latency) || !naive.covers(latency)) continue;
    recovery.add_row({report::Table::num(latency, 0), report::Table::num(planted(latency)),
                      report::Table::num(normalized.at(latency)),
                      report::Table::num(naive.at(latency))});
    err_normalized += std::abs(normalized.at(latency) - planted(latency));
    err_naive += std::abs(naive.at(latency) - planted(latency));
    ++probes;
  }
  recovery.print(std::cout);
  err_normalized /= static_cast<double>(probes);
  err_naive /= static_cast<double>(probes);
  std::cout << "\nmean |error| vs planted: normalized "
            << report::Table::num(err_normalized) << ", naive "
            << report::Table::num(err_naive) << "\n\n";

  report::Comparison ablation_b("Ablation B: normalization reduces recovery error");
  ablation_b.check_value("normalized error < naive error", 1.0,
                         err_normalized < err_naive ? 1.0 : 0.0, 0.0);
  ablation_b.print(std::cout);

  // --- Ablation C: number of alpha reference slots ----------------------
  std::cout << "Ablation C — sensitivity to the number of alpha reference slots\n\n";
  report::Table refs_table({"reference slots", "pref @ 1000 ms", "|delta| vs 8 refs"});
  auto eight = options;
  eight.alpha_reference_slots = 8;
  const double baseline = core::analyze(slice, eight).at(1000.0);
  double max_delta = 0.0;
  for (const std::size_t refs : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    auto ref_options = options;
    ref_options.alpha_reference_slots = refs;
    const double value = core::analyze(slice, ref_options).at(1000.0);
    const double delta = std::abs(value - baseline);
    max_delta = std::max(max_delta, delta);
    refs_table.add_row({std::to_string(refs), report::Table::num(value),
                        report::Table::num(delta, 4)});
  }
  refs_table.print(std::cout);
  std::cout << '\n';

  report::Comparison ablation_c("Ablation C: result stable across reference choices");
  ablation_c.check_value("max delta over reference counts", 0.0, max_delta, 0.03);
  ablation_c.print(std::cout);
  return 0;
}
