// Figure 6 (paper §3.4): conditioning to speed. Consumer users are grouped
// into quartiles by their per-user median latency (Q1 = fastest); the paper
// finds sensitivity decreases progressively from Q1 to Q4 — users accustomed
// to low latency react more strongly to it.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/slices.h"
#include "report/ascii_chart.h"
#include "report/compare.h"
#include "report/csvout.h"
#include "report/table.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();

  // Paper: consumer users; quartiles computed over that population's
  // per-user medians.
  const auto consumers = workload.dataset.filtered(
      telemetry::by_user_class(telemetry::UserClass::kConsumer));
  core::AutoSensOptions options;
  const auto curves = core::preference_by_quartile(consumers, consumers, options,
                                                   telemetry::ActionType::kSelectMail);

  std::cout << "Figure 6 — SelectMail preference by per-user median-latency quartile "
               "(consumers, ref 300 ms)\n\n";
  report::Table table({"latency (ms)", "Q1 (fastest)", "Q2", "Q3", "Q4 (slowest)"});
  for (const double latency : {300.0, 500.0, 750.0, 1000.0, 1500.0}) {
    std::vector<std::string> row = {report::Table::num(latency, 0)};
    for (const auto& curve : curves) {
      row.push_back(curve.result.covers(latency) ? report::Table::num(curve.result.at(latency))
                                                 : "-");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';

  std::vector<report::Series> chart;
  for (const auto& curve : curves) chart.push_back(report::to_series(curve));
  report::ChartOptions chart_options;
  chart_options.x_label = "latency (ms)";
  chart_options.y_label = "normalized latency preference";
  render_chart(std::cout, chart, chart_options);
  std::cout << '\n';

  report::Comparison comparison("Fig 6: sensitivity decreases Q1 -> Q4");
  const double latency = 900.0;
  for (int q = 0; q < 4; ++q) {
    const auto planted = simulate::expected_quartile_curve(
        workload.config, telemetry::ActionType::kSelectMail,
        telemetry::UserClass::kConsumer, q, options.reference_latency_ms);
    comparison.check(curves[static_cast<std::size_t>(q)].result, latency, planted(latency),
                     0.09);
  }
  // Monotone ordering at the probe latency.
  for (int q = 0; q + 1 < 4; ++q) {
    const auto& lo = curves[static_cast<std::size_t>(q)].result;
    const auto& hi = curves[static_cast<std::size_t>(q + 1)].result;
    // Built by append (not operator+) to dodge a GCC 12 -Wrestrict false
    // positive at -O3 that breaks Release -Werror builds.
    std::string label("Q");
    label += std::to_string(q + 1);
    label += " < Q";
    label += std::to_string(q + 2);
    comparison.check_value(label, 1.0,
                           lo.covers(latency) && hi.covers(latency) &&
                                   lo.at(latency) < hi.at(latency)
                               ? 1.0
                               : 0.0,
                           0.0);
  }
  comparison.print(std::cout);

  report::write_preference_csv_file("fig6_conditioning.csv", curves);
  std::cout << "series written to fig6_conditioning.csv\n";
  return 0;
}
