// Shared scaffolding for the figure benches: build the paper-scale synthetic
// OWA workload once per binary and expose the pieces every figure needs.
//
// Scale control: set AUTOSENS_BENCH_SCALE=tiny|small|medium|full in the
// environment (default: medium — 60 days, 800 users, ~3.5M actions).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/validate.h"

namespace autosens::bench {

inline simulate::Scale bench_scale() {
  const char* env = std::getenv("AUTOSENS_BENCH_SCALE");
  const std::string_view value = env ? env : "medium";
  if (value == "tiny") return simulate::Scale::kTiny;
  if (value == "small") return simulate::Scale::kSmall;
  if (value == "full") return simulate::Scale::kFull;
  return simulate::Scale::kMedium;
}

struct BenchWorkload {
  simulate::WorkloadConfig config;
  telemetry::Dataset dataset;  ///< Validated (scrubbed) telemetry.
  std::size_t raw_records = 0;
};

inline BenchWorkload make_paper_workload(std::uint64_t seed = 42) {
  BenchWorkload workload;
  workload.config = simulate::paper_config(bench_scale(), seed);
  simulate::WorkloadGenerator generator(workload.config);
  std::cerr << "[bench] generating synthetic OWA workload ("
            << workload.config.population.user_count << " users, "
            << (workload.config.end_ms - workload.config.begin_ms) /
                   telemetry::kMillisPerDay
            << " days)..." << std::flush;
  auto generated = generator.generate();
  workload.raw_records = generated.accepted;
  auto validated = telemetry::validate(generated.dataset);
  std::cerr << " " << validated.dataset.size() << " actions after scrub\n";
  workload.dataset = std::move(validated.dataset);
  return workload;
}

}  // namespace autosens::bench
