// Figure 7 (paper §3.6): SelectMail preference for business users across the
// four 6-hour local-time periods. The paper's findings: every period shows a
// decreasing curve; the daytime periods drop more sharply than the nighttime
// ones; and the pooled curve (Fig 4) lies inside the per-period envelope.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/slices.h"
#include "report/ascii_chart.h"
#include "report/compare.h"
#include "report/csvout.h"
#include "report/table.h"
#include "simulate/presets.h"
#include "telemetry/filter.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();

  core::AutoSensOptions options;
  const auto curves = core::preference_by_period(workload.dataset, options,
                                                 telemetry::ActionType::kSelectMail,
                                                 telemetry::UserClass::kBusiness);
  const auto pooled_slice = workload.dataset.filtered(telemetry::all_of(
      {telemetry::by_action(telemetry::ActionType::kSelectMail),
       telemetry::by_user_class(telemetry::UserClass::kBusiness)}));
  const auto pooled = core::analyze(pooled_slice, options);

  std::cout << "Figure 7 — SelectMail preference by time-of-day period "
               "(business users, ref 300 ms)\n\n";
  report::Table table({"latency (ms)", "8am-2pm", "2pm-8pm", "8pm-2am", "2am-8am", "pooled"});
  for (const double latency : {300.0, 500.0, 750.0, 1000.0, 1500.0}) {
    std::vector<std::string> row = {report::Table::num(latency, 0)};
    for (const auto& curve : curves) {
      row.push_back(curve.result.covers(latency) ? report::Table::num(curve.result.at(latency))
                                                 : "-");
    }
    row.push_back(pooled.covers(latency) ? report::Table::num(pooled.at(latency)) : "-");
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';

  std::vector<report::Series> chart;
  for (const auto& curve : curves) chart.push_back(report::to_series(curve));
  report::ChartOptions chart_options;
  chart_options.x_label = "latency (ms)";
  chart_options.y_label = "normalized latency preference";
  render_chart(std::cout, chart, chart_options);
  std::cout << '\n';

  report::Comparison comparison("Fig 7: per-period anchors (planted)");
  const double probe = 1000.0;
  for (const auto& curve : curves) {
    // Find this curve's period by name.
    for (int p = 0; p < telemetry::kDayPeriodCount; ++p) {
      const auto period = static_cast<telemetry::DayPeriod>(p);
      if (curve.name == telemetry::to_string(period)) {
        const auto planted = simulate::expected_period_curve(
            workload.config, telemetry::ActionType::kSelectMail,
            telemetry::UserClass::kBusiness, period, options.reference_latency_ms);
        if (curve.result.covers(probe)) {
          comparison.check(curve.result, probe, planted(probe), 0.10);
        }
      }
    }
  }
  comparison.print(std::cout);

  report::Comparison structure("Fig 7: structural findings");
  // Daytime steeper than deep night.
  const auto* morning = &curves.front();
  const auto* night = &curves.back();
  if (morning->result.covers(probe) && night->result.covers(probe)) {
    structure.check_value("8am-2pm drops below 2am-8am", 1.0,
                          morning->result.at(probe) < night->result.at(probe) ? 1.0 : 0.0,
                          0.0);
  }
  // Pooled curve sits within the per-period envelope.
  double lo = 1e9;
  double hi = -1e9;
  for (const auto& curve : curves) {
    if (!curve.result.covers(probe)) continue;
    lo = std::min(lo, curve.result.at(probe));
    hi = std::max(hi, curve.result.at(probe));
  }
  const double pooled_value = pooled.at(probe);
  structure.check_value("pooled inside period envelope", 1.0,
                        pooled_value >= lo - 0.02 && pooled_value <= hi + 0.02 ? 1.0 : 0.0,
                        0.0);
  structure.print(std::cout);

  report::write_preference_csv_file("fig7_time_of_day.csv", curves);
  std::cout << "series written to fig7_time_of_day.csv\n";
  return 0;
}
