// Extension experiment (paper §2.4.1 names day-of-week as a confounder but
// does not evaluate it): weekday vs weekend.
//
//   1. The weekday/weekend activity factor β recovers the planted weekend
//      damping, and is flat across latency (like α in Fig 8).
//   2. Weekday and weekend preference curves coincide when the planted
//      preference is day-independent — the natural-experiment estimate is
//      invariant to pure activity-level changes.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/confounder_dow.h"
#include "report/ascii_chart.h"
#include "report/compare.h"
#include "report/table.h"
#include "telemetry/filter.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();
  const auto slice = workload.dataset.filtered(
      telemetry::by_action(telemetry::ActionType::kSelectMail));

  core::AutoSensOptions options;
  const auto activity = core::day_class_activity(slice, options);

  std::cout << "Extension — weekday vs weekend (SelectMail)\n\n";
  report::Table table({"class", "records", "activity factor"});
  table.add_row({"weekday", std::to_string(activity.weekday_records), "1.000 (ref)"});
  table.add_row({"weekend", std::to_string(activity.weekend_records),
                 report::Table::num(activity.beta_weekend)});
  table.print(std::cout);
  std::cout << '\n';

  const auto curves = core::preference_by_day_class(slice, options);
  report::Table pref_table({"latency (ms)", "weekday NLP", "weekend NLP"});
  for (const double latency : {300.0, 500.0, 750.0, 1000.0, 1500.0}) {
    std::vector<std::string> row = {report::Table::num(latency, 0)};
    for (const auto& curve : curves) {
      row.push_back(curve.preference.covers(latency)
                        ? report::Table::num(curve.preference.at(latency))
                        : "-");
    }
    while (row.size() < 3) row.push_back("-");
    pref_table.add_row(std::move(row));
  }
  pref_table.print(std::cout);
  std::cout << '\n';

  report::Comparison comparison("Extension: day-of-week factor and invariance");
  // β pools whole days, so at a fixed latency bin the hour-of-day mix can
  // differ between the ~17 weekend and ~43 weekday realizations of the
  // latency process; with a 10x diurnal activity swing that leaves ~±0.1 of
  // irreducible variance in β at this scale.
  comparison.check_value("beta(weekend) matches planted weekend factor",
                         workload.config.weekend_factor, activity.beta_weekend, 0.12);
  if (curves.size() == 2) {
    for (const double latency : {500.0, 1000.0}) {
      if (curves[0].preference.covers(latency) && curves[1].preference.covers(latency)) {
        comparison.check_value(
            "weekday == weekend NLP @ " + report::Table::num(latency, 0),
            curves[0].preference.at(latency), curves[1].preference.at(latency), 0.07);
      }
    }
  }
  comparison.print(std::cout);
  return 0;
}
