// Figure 2 (paper §2.1): normalized latency and user-activity rate over a
// 2-day window. The paper's finding: periods of low latency have a much
// higher rate of user activity and vice versa — i.e. the latency samples of
// user actions cluster in fast periods.
//
// Reproduction contract: the chart shows anti-phase series at sub-hour
// scale, and the hour-of-day-detrended density/latency correlation is
// clearly negative (the raw correlation mixes in the diurnal confounder,
// which pushes it positive; see DESIGN.md).
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/locality.h"
#include "report/ascii_chart.h"
#include "report/compare.h"
#include "telemetry/filter.h"

int main() {
  using namespace autosens;
  const auto workload = bench::make_paper_workload();
  const auto slice = workload.dataset.filtered(
      telemetry::by_action(telemetry::ActionType::kSelectMail));

  // Two weekdays (days 4 and 5 — epoch day 0 is a Thursday, so 4 = Monday).
  const std::int64_t begin = 4 * telemetry::kMillisPerDay;
  const std::int64_t end = 6 * telemetry::kMillisPerDay;
  const auto two_days = slice.filtered(telemetry::by_time_range(begin, end));
  const auto series =
      core::activity_latency_series(two_days, 30 * telemetry::kMillisPerMinute);

  std::vector<report::Series> chart(2);
  chart[0].name = "latency (normalized)";
  chart[1].name = "activity rate (normalized)";
  for (std::size_t i = 0; i < series.window_begin_ms.size(); ++i) {
    const double hours = static_cast<double>(series.window_begin_ms[i] - begin) /
                         static_cast<double>(telemetry::kMillisPerHour);
    chart[0].x.push_back(hours);
    chart[0].y.push_back(series.latency[i]);
    chart[1].x.push_back(hours);
    chart[1].y.push_back(series.activity[i]);
  }
  std::cout << "Figure 2 — latency vs user activity over a 2-day period\n";
  report::ChartOptions options;
  options.title = "normalized series over 48 hours (30-minute windows)";
  options.x_label = "hours";
  options.y_label = "normalized value";
  render_chart(std::cout, chart, options);
  std::cout << '\n';

  stats::Random random(7);
  core::LocalityOptions locality_options;
  locality_options.window_ms = 10 * telemetry::kMillisPerMinute;
  locality_options.min_window_samples = 3;
  const auto report = core::analyze_locality(slice, locality_options, random);
  std::cout << "density-vs-latency correlation (raw):       "
            << report.density_latency_correlation << "\n";
  std::cout << "density-vs-latency correlation (detrended): "
            << report.detrended_density_latency_correlation << "\n\n";

  report::Comparison comparison("Fig 2: activity clusters in low-latency periods");
  comparison.check_value("detrended corr clearly negative", 1.0,
                         report.detrended_density_latency_correlation < -0.05 ? 1.0 : 0.0,
                         0.0);
  comparison.check_value("detrended corr below raw corr", 1.0,
                         report.detrended_density_latency_correlation <
                                 report.density_latency_correlation
                             ? 1.0
                             : 0.0,
                         0.0);
  comparison.print(std::cout);
  return 0;
}
