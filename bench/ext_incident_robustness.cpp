// Extension experiment — failure injection: how do outage episodes (whole-
// service latency spikes) affect the AutoSens estimate? Incidents generate
// legitimate high-latency/low-activity evidence, so the curve should stay
// close to the incident-free one; this bench quantifies the perturbation as
// incident dose increases, and shows the screening distance reacting.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/pipeline.h"
#include "core/sensitivity.h"
#include "report/compare.h"
#include "report/table.h"
#include "simulate/generator.h"
#include "simulate/presets.h"
#include "telemetry/clock.h"
#include "telemetry/filter.h"
#include "telemetry/validate.h"

namespace {

using namespace autosens;

core::PreferenceResult run(const simulate::WorkloadConfig& config) {
  auto generated = simulate::WorkloadGenerator(config).generate();
  const auto slice = telemetry::validate(generated.dataset)
                         .dataset.filtered(telemetry::all_of(
                             {telemetry::by_action(telemetry::ActionType::kSelectMail),
                              telemetry::by_user_class(telemetry::UserClass::kBusiness)}));
  return core::analyze(slice, core::AutoSensOptions{});
}

}  // namespace

int main() {
  using namespace autosens;
  constexpr std::int64_t kDay = telemetry::kMillisPerDay;
  constexpr std::int64_t kHour = telemetry::kMillisPerHour;

  auto base_config = simulate::paper_config(bench::bench_scale(), 42);
  const std::int64_t days = (base_config.end_ms - base_config.begin_ms) / kDay;
  std::cerr << "[bench] running incident sweep over " << days << "-day workloads...\n";

  const auto baseline = run(base_config);

  std::cout << "Extension — robustness to injected incidents (SelectMail/business)\n\n";
  report::Table table(
      {"incidents", "NLP@500", "NLP@1000", "NLP@1500", "max |delta| vs clean"});
  const auto row_for = [&](const std::string& label, const core::PreferenceResult& curve) {
    double max_delta = 0.0;
    for (double latency = 350.0; latency <= 1500.0; latency += 50.0) {
      if (curve.covers(latency) && baseline.covers(latency)) {
        max_delta = std::max(max_delta, std::abs(curve.at(latency) - baseline.at(latency)));
      }
    }
    table.add_row({label,
                   curve.covers(500.0) ? report::Table::num(curve.at(500.0)) : "-",
                   curve.covers(1000.0) ? report::Table::num(curve.at(1000.0)) : "-",
                   curve.covers(1500.0) ? report::Table::num(curve.at(1500.0)) : "-",
                   report::Table::num(max_delta)});
    return max_delta;
  };
  row_for("none (baseline)", baseline);

  double last_delta = 0.0;
  std::vector<std::size_t> doses = {2, 6, 12};
  for (const std::size_t dose : doses) {
    auto config = base_config;
    // `dose` 6-hour, ~2.7x-latency incidents spread over the trace, at
    // varying times of day.
    for (std::size_t i = 0; i < dose; ++i) {
      const std::int64_t day = static_cast<std::int64_t>((i + 1) * days / (dose + 1));
      const std::int64_t start_hour = 6 + static_cast<std::int64_t>(i % 3) * 5;
      config.latency.incidents.push_back(
          {.begin_ms = day * kDay + start_hour * kHour,
           .end_ms = day * kDay + (start_hour + 6) * kHour,
           .log_shift = 1.0});
    }
    last_delta = row_for(std::to_string(dose) + " x 6h", run(config));
  }
  table.print(std::cout);
  std::cout << '\n';

  report::Comparison comparison("Extension: incident robustness");
  comparison.check_value("max curve perturbation at highest dose", 0.0, last_delta, 0.08);
  comparison.print(std::cout);
  return 0;
}
