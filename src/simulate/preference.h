// Planted ground-truth latency preference. The simulator thins each user's
// action stream by these curves; AutoSens must then *recover* them. Anchor
// values are taken from the numbers the paper reports, so every figure bench
// has a quantitative target.
//
// The preference of a specific (action, user-class) pair is a base curve;
// per-user conditioning (paper §3.4) and time-of-day effects (§3.6) scale the
// curve's *drop from 1.0*:  pref = 1 - s_user * s_period * (1 - base(L)).
#pragma once

#include <array>

#include "stats/piecewise.h"
#include "telemetry/clock.h"
#include "telemetry/record.h"

namespace autosens::simulate {

/// Base preference curves per (action type, user class), each normalized to
/// 1.0 at the paper's 300 ms reference.
class PreferenceModel {
 public:
  struct Options {
    /// Multiplier on the drop for consumer users relative to business
    /// (paper Fig 5: consumers are more tolerant). 1.0 = same as business.
    double consumer_drop_scale = 0.65;
    /// Drop multipliers for the four 6-h day periods (paper Fig 7:
    /// daytime steeper). Indexed by telemetry::DayPeriod. The defaults are
    /// chosen so the *simple* (time-weighted) mean is 1.0: AutoSens's
    /// α-normalization weights time-of-day slots equally per unit time, so a
    /// pooled-over-hours analysis then recovers the base curves' anchor
    /// values directly.
    std::array<double, telemetry::kDayPeriodCount> period_drop_scale = {1.20, 1.08, 0.90,
                                                                        0.82};
    /// Per-user conditioning (paper Fig 6): the drop multiplier is an
    /// affine function of the user's speed percentile p in [0,1]
    /// (p = 0 fastest): s_user = user_drop_at_fastest
    ///                          + (user_drop_at_slowest - user_drop_at_fastest) * p.
    /// The default midpoint is 1.0, so a population-pooled analysis again
    /// sees the base curves unchanged.
    double user_drop_at_fastest = 1.30;
    double user_drop_at_slowest = 0.70;
  };

  PreferenceModel() : PreferenceModel(Options{}) {}
  explicit PreferenceModel(Options options);

  /// The base curve (business-class) for an action type.
  const stats::PiecewiseLinearCurve& base_curve(telemetry::ActionType type) const noexcept {
    return base_[static_cast<std::size_t>(type)];
  }

  /// Drop multiplier for a user class.
  double class_drop_scale(telemetry::UserClass user_class) const noexcept {
    return user_class == telemetry::UserClass::kBusiness ? 1.0
                                                         : options_.consumer_drop_scale;
  }
  double period_drop_scale(telemetry::DayPeriod period) const noexcept {
    return options_.period_drop_scale[static_cast<std::size_t>(period)];
  }
  double user_drop_scale(double speed_percentile) const noexcept;

  /// Full planted preference for one candidate action: base curve evaluated
  /// at the predictable latency, with all drop scalings applied. Clamped to
  /// a small positive floor so acceptance probabilities stay valid.
  double preference(telemetry::ActionType type, telemetry::UserClass user_class,
                    double speed_percentile, telemetry::DayPeriod period,
                    double predictable_latency_ms) const noexcept;

  /// Upper bound of `preference` over its arguments (for thinning).
  double max_preference() const noexcept { return max_preference_; }

  /// The *expected measured* curve for a slice, normalized at `ref_ms`:
  /// what AutoSens should recover for records filtered to (type, class) with
  /// an average user percentile `mean_percentile` and drop scale averaged
  /// over the mix of periods weighted by activity. `period_scale` lets
  /// callers pass the effective period multiplier (1.0 pooled ≈ activity-
  /// weighted mean; or a specific period's multiplier for Fig 7 slices).
  stats::PiecewiseLinearCurve expected_curve(telemetry::ActionType type,
                                             telemetry::UserClass user_class,
                                             double mean_percentile, double period_scale,
                                             double ref_ms) const;

  const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  std::array<stats::PiecewiseLinearCurve, telemetry::kActionTypeCount> base_;
  double max_preference_ = 1.0;
};

}  // namespace autosens::simulate
