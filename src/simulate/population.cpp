#include "simulate/population.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace autosens::simulate {

Population::Population(PopulationOptions options, stats::Random& random)
    : options_(options) {
  if (options_.user_count == 0) throw std::invalid_argument("Population: need users");
  if (options_.business_fraction < 0.0 || options_.business_fraction > 1.0) {
    throw std::invalid_argument("Population: business_fraction outside [0,1]");
  }
  users_.resize(options_.user_count);
  for (std::size_t i = 0; i < users_.size(); ++i) {
    auto& user = users_[i];
    // Ids are arbitrary but stable; offset by a constant so id 0 never
    // appears (it reads as "missing" in logs).
    user.id = 1000 + i;
    user.user_class = random.bernoulli(options_.business_fraction)
                          ? telemetry::UserClass::kBusiness
                          : telemetry::UserClass::kConsumer;
    user.latency_offset = random.normal(0.0, options_.offset_sigma);
    user.activity_scale = random.lognormal(0.0, options_.activity_lognormal_sigma);
  }
  // Speed percentile = rank of latency_offset (0 = fastest). Ranks are exact
  // so the planted conditioning effect maps cleanly onto quartiles.
  std::vector<std::size_t> order(users_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return users_[a].latency_offset < users_[b].latency_offset;
  });
  const double denom = users_.size() > 1 ? static_cast<double>(users_.size() - 1) : 1.0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    users_[order[rank]].speed_percentile = static_cast<double>(rank) / denom;
  }
}

double Population::mean_percentile(telemetry::UserClass user_class) const noexcept {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& user : users_) {
    if (user.user_class == user_class) {
      sum += user.speed_percentile;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.5;
}

}  // namespace autosens::simulate
