// All simulator knobs in one value struct. Defaults model an OWA-like
// service; presets.h derives the exact configurations used by the paper
// benches.
#pragma once

#include <array>
#include <cstdint>

#include "simulate/diurnal.h"
#include "simulate/latency_process.h"
#include "simulate/population.h"
#include "simulate/preference.h"
#include "telemetry/clock.h"

namespace autosens::simulate {

struct WorkloadConfig {
  /// Observation window, epoch ms. Day 0 starts at t = 0 (midnight local).
  std::int64_t begin_ms = 0;
  std::int64_t end_ms = 14 * telemetry::kMillisPerDay;

  PopulationOptions population{};
  LatencyProcessOptions latency{};
  PreferenceModel::Options preference{};

  DiurnalCurve activity_curve = default_activity_curve();
  double weekend_factor = 0.75;  ///< Activity multiplier on Sat/Sun.

  /// Per-user-per-day *candidate* action rate per type, before thinning by
  /// activity and preference (index by ActionType). The realized accepted
  /// rate is roughly 40–50 % of this with the default curves.
  std::array<double, telemetry::kActionTypeCount> actions_per_user_day = {40.0, 15.0, 8.0,
                                                                          10.0, 5.0};

  /// Fraction of accepted actions logged with an error status (these are
  /// scrubbed by telemetry::validate, as in the paper §3.1).
  double error_rate = 0.01;

  std::uint64_t seed = 42;
};

}  // namespace autosens::simulate
