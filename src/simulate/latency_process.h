// The latency environment: what latency the service *would* deliver at any
// instant, independent of whether anyone acts. This is exactly the quantity
// whose distribution AutoSens calls "unbiased" (U, §2.2).
//
// Model, in log space:
//   log L(t, user, type) = log base[type] + load(t) + x(t) + user_offset + ε
// where
//   - base[type] is the per-action-type median latency,
//   - load(t) is the diurnal load curve (the time confounder),
//   - x(t) is a slowly varying AR(1) process (autocorrelation time
//     `correlation_minutes`) — this is the *temporal locality* that makes
//     the latency preference actionable (paper §2.1, Fig 1),
//   - user_offset is the per-user network-quality shift, and
//   - ε ~ N(0, noise_sigma) is the per-action unpredictable part.
// Users can react only to the predictable component (everything but ε):
// `predictable_latency` is what feeds the planted preference function, and
// `sample_latency` adds ε to produce the logged measurement.
#pragma once

#include <cstdint>
#include <vector>

#include "simulate/diurnal.h"
#include "stats/rng.h"
#include "telemetry/record.h"

namespace autosens::simulate {

/// A service incident: a window during which the whole latency environment
/// shifts (in log units; 0.7 ≈ 2x latency). Used for failure injection:
/// AutoSens must stay robust when the trace contains outage episodes.
struct LatencyIncident {
  std::int64_t begin_ms = 0;
  std::int64_t end_ms = 0;
  double log_shift = 0.7;
};

struct LatencyProcessOptions {
  /// Median latency per action type, ms (index by ActionType).
  std::array<double, telemetry::kActionTypeCount> base_ms = {350.0, 300.0, 500.0, 250.0,
                                                             300.0};
  DiurnalCurve load_curve = default_load_curve();
  /// The environment must dominate per-user and per-action variation for the
  /// population-level B/U ratio to recover the planted preference sharply;
  /// see DESIGN.md ("heterogeneity attenuation").
  double ar_sigma = 0.60;            ///< Stationary stddev of x(t), log units.
  double correlation_minutes = 30.0; ///< AR(1) autocorrelation time constant.
  double grid_step_minutes = 1.0;    ///< Discretization of x(t).
  double noise_sigma = 0.12;         ///< Per-action unpredictable noise ε.
  /// Injected incidents (may be empty; must be sorted and non-overlapping).
  std::vector<LatencyIncident> incidents;
};

class LatencyEnvironment {
 public:
  /// Builds the x(t) grid over [begin_ms, end_ms). Throws on empty range or
  /// non-positive parameters.
  LatencyEnvironment(LatencyProcessOptions options, std::int64_t begin_ms,
                     std::int64_t end_ms, stats::Random& random);

  /// The slowly varying AR(1) component at time t (linear interpolation on
  /// the grid; clamped at the ends).
  double ar_component(std::int64_t time_ms) const noexcept;

  /// Log-latency shift contributed by an active incident at time t (0 when
  /// no incident covers t).
  double incident_shift(std::int64_t time_ms) const noexcept;

  /// Predictable (user-perceivable) latency in ms: everything except ε,
  /// with the lognormal mean correction so it matches E[L | environment].
  double predictable_latency(std::int64_t time_ms, telemetry::ActionType type,
                             double user_offset) const noexcept;

  /// One measured latency sample: predictable part × lognormal noise.
  double sample_latency(std::int64_t time_ms, telemetry::ActionType type,
                        double user_offset, stats::Random& random) const noexcept;

  const LatencyProcessOptions& options() const noexcept { return options_; }
  std::int64_t begin_ms() const noexcept { return begin_ms_; }
  std::int64_t end_ms() const noexcept { return end_ms_; }

 private:
  LatencyProcessOptions options_;
  std::int64_t begin_ms_;
  std::int64_t end_ms_;
  std::int64_t grid_step_ms_;
  std::vector<double> grid_;  ///< x(t) samples every grid_step_ms_.
};

}  // namespace autosens::simulate
