#include "simulate/presets.h"

#include <stdexcept>
#include <utility>

#include "simulate/preference.h"

namespace autosens::simulate {

WorkloadConfig paper_config(Scale scale, std::uint64_t seed) {
  WorkloadConfig config;
  config.begin_ms = 0;
  config.seed = seed;
  config.population.business_fraction = 0.5;
  switch (scale) {
    case Scale::kTiny:
      config.end_ms = 3 * telemetry::kMillisPerDay;
      config.population.user_count = 120;
      break;
    case Scale::kSmall:
      config.end_ms = 14 * telemetry::kMillisPerDay;
      config.population.user_count = 400;
      break;
    case Scale::kMedium:
      config.end_ms = 60 * telemetry::kMillisPerDay;
      config.population.user_count = 800;
      break;
    case Scale::kFull:
      config.end_ms = 60 * telemetry::kMillisPerDay;
      config.population.user_count = 2000;
      break;
  }
  return config;
}

double pooled_period_scale(const WorkloadConfig& config) {
  // AutoSens's α-normalization rescales every time-of-day slot to the same
  // temporal action rate, so a pooled analysis sees each period with equal
  // *time* weight — the effective drop scale is the simple mean over the
  // four equal-length periods (not the activity-weighted mean, which is
  // what a naive, un-normalized pooling would apply).
  const PreferenceModel model(config.preference);
  double sum = 0.0;
  for (int p = 0; p < telemetry::kDayPeriodCount; ++p) {
    sum += model.period_drop_scale(static_cast<telemetry::DayPeriod>(p));
  }
  return sum / telemetry::kDayPeriodCount;
}

stats::PiecewiseLinearCurve expected_pooled_curve(const WorkloadConfig& config,
                                                  telemetry::ActionType type,
                                                  telemetry::UserClass user_class,
                                                  double ref_ms) {
  const PreferenceModel model(config.preference);
  return model.expected_curve(type, user_class, /*mean_percentile=*/0.5,
                              pooled_period_scale(config), ref_ms);
}

stats::PiecewiseLinearCurve expected_period_curve(const WorkloadConfig& config,
                                                  telemetry::ActionType type,
                                                  telemetry::UserClass user_class,
                                                  telemetry::DayPeriod period, double ref_ms) {
  const PreferenceModel model(config.preference);
  return model.expected_curve(type, user_class, /*mean_percentile=*/0.5,
                              model.period_drop_scale(period), ref_ms);
}

stats::PiecewiseLinearCurve expected_quartile_curve(const WorkloadConfig& config,
                                                    telemetry::ActionType type,
                                                    telemetry::UserClass user_class,
                                                    int quartile, double ref_ms) {
  if (quartile < 0 || quartile >= 4) {
    throw std::invalid_argument("expected_quartile_curve: quartile outside [0,4)");
  }
  // Mean speed percentile within quartile q of a uniform percentile
  // distribution: 0.125 + 0.25 q.
  const double mean_percentile = 0.125 + 0.25 * static_cast<double>(quartile);
  const PreferenceModel model(config.preference);
  return model.expected_curve(type, user_class, mean_percentile,
                              pooled_period_scale(config), ref_ms);
}

std::array<double, telemetry::kDayPeriodCount> expected_alpha_by_period(
    const WorkloadConfig& config) {
  constexpr std::array<std::pair<int, int>, telemetry::kDayPeriodCount> kPeriodHours = {
      {{8, 14}, {14, 20}, {20, 2}, {2, 8}}};
  std::array<double, telemetry::kDayPeriodCount> alpha{};
  const double reference = config.activity_curve.mean_over_hours(8, 14);
  for (int p = 0; p < telemetry::kDayPeriodCount; ++p) {
    const auto [from, to] = kPeriodHours[static_cast<std::size_t>(p)];
    alpha[static_cast<std::size_t>(p)] =
        config.activity_curve.mean_over_hours(from, to) / reference;
  }
  return alpha;
}

}  // namespace autosens::simulate
