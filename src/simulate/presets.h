// Canonical workload configurations for the paper reproduction, plus the
// planted-ground-truth helpers the benches compare against.
//
// Scales trade fidelity for runtime; all cover the structure every analysis
// needs (two 30-day "months", diurnal confounder, heterogeneous users).
#pragma once

#include <array>
#include <cstdint>

#include "simulate/config.h"
#include "stats/piecewise.h"

namespace autosens::simulate {

enum class Scale {
  kTiny,    ///< 3 days, 120 users — unit tests.
  kSmall,   ///< 14 days, 400 users — fast integration tests.
  kMedium,  ///< 60 days, 800 users — benches.
  kFull,    ///< 60 days, 2000 users — full reproduction run.
};

/// The OWA-like scenario of the paper's evaluation: two 30-day months
/// ("January" = days 0–29, "February" = days 30–59 at kMedium/kFull),
/// business + consumer users, four action types with planted preference
/// anchors matching the numbers reported in the paper.
WorkloadConfig paper_config(Scale scale, std::uint64_t seed = 42);

/// Activity-weighted mean of the per-period drop multipliers — the effective
/// period scale of an analysis that pools all hours (≈ 1.0 by default).
double pooled_period_scale(const WorkloadConfig& config);

/// Planted normalized-latency-preference curves AutoSens should recover,
/// normalized at `ref_ms` (the paper uses 300 ms):
/// pooled over hours and users of one class —
stats::PiecewiseLinearCurve expected_pooled_curve(const WorkloadConfig& config,
                                                  telemetry::ActionType type,
                                                  telemetry::UserClass user_class,
                                                  double ref_ms);
/// one 6-hour period (Fig 7) —
stats::PiecewiseLinearCurve expected_period_curve(const WorkloadConfig& config,
                                                  telemetry::ActionType type,
                                                  telemetry::UserClass user_class,
                                                  telemetry::DayPeriod period, double ref_ms);
/// one conditioning quartile (Fig 6; quartile in [0,4), 0 = fastest users).
stats::PiecewiseLinearCurve expected_quartile_curve(const WorkloadConfig& config,
                                                    telemetry::ActionType type,
                                                    telemetry::UserClass user_class,
                                                    int quartile, double ref_ms);

/// Planted time-based activity factor per period relative to the 8am–2pm
/// reference (Fig 8 ground truth): ratio of mean diurnal activity.
std::array<double, telemetry::kDayPeriodCount> expected_alpha_by_period(
    const WorkloadConfig& config);

}  // namespace autosens::simulate
