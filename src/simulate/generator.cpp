#include "simulate/generator.h"

#include <cmath>
#include <stdexcept>

namespace autosens::simulate {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config)
    : config_(config), master_(config.seed), preference_(config.preference) {
  if (!(config_.end_ms > config_.begin_ms)) {
    throw std::invalid_argument("WorkloadGenerator: empty time range");
  }
  if (config_.error_rate < 0.0 || config_.error_rate >= 1.0) {
    throw std::invalid_argument("WorkloadGenerator: error_rate outside [0,1)");
  }
  auto env_random = master_.split();
  environment_ = std::make_unique<LatencyEnvironment>(config_.latency, config_.begin_ms,
                                                      config_.end_ms, env_random);
  auto pop_random = master_.split();
  population_ = std::make_unique<Population>(config_.population, pop_random);
}

GeneratorResult WorkloadGenerator::generate() {
  GeneratorResult result;
  const double activity_max = config_.activity_curve.max_value();
  const double pref_max = preference_.max_preference();
  if (!(activity_max > 0.0)) {
    throw std::invalid_argument("WorkloadGenerator: activity curve must be positive somewhere");
  }

  const double span_ms = static_cast<double>(config_.end_ms - config_.begin_ms);
  // Rough capacity estimate to avoid repeated reallocation.
  double daily_rate = 0.0;
  for (const double r : config_.actions_per_user_day) daily_rate += r;
  const double expected =
      daily_rate * static_cast<double>(population_->size()) * span_ms /
      static_cast<double>(telemetry::kMillisPerDay) * 0.6;
  result.dataset.reserve(static_cast<std::size_t>(expected));

  for (const auto& user : population_->users()) {
    auto user_random = master_.split();
    for (int type_idx = 0; type_idx < telemetry::kActionTypeCount; ++type_idx) {
      const auto type = static_cast<telemetry::ActionType>(type_idx);
      const double per_day = config_.actions_per_user_day[static_cast<std::size_t>(type_idx)];
      if (per_day <= 0.0) continue;
      // Candidate (super-process) rate per ms, high enough to dominate the
      // modulated rate everywhere; thinning keeps exactly the right fraction.
      const double candidate_rate = per_day * user.activity_scale * activity_max * pref_max /
                                    static_cast<double>(telemetry::kMillisPerDay);
      double t = static_cast<double>(config_.begin_ms);
      for (;;) {
        t += user_random.exponential(candidate_rate);
        if (t >= static_cast<double>(config_.end_ms)) break;
        const auto time_ms = static_cast<std::int64_t>(t);
        ++result.candidates;

        const double activity = config_.activity_curve.at_time(time_ms) *
                                weekend_multiplier(time_ms, config_.weekend_factor);
        const double predictable =
            environment_->predictable_latency(time_ms, type, user.latency_offset);
        const double pref =
            preference_.preference(type, user.user_class, user.speed_percentile,
                                   telemetry::day_period(time_ms), predictable);
        const double accept_prob = (activity / activity_max) * (pref / pref_max);
        if (!user_random.bernoulli(accept_prob)) continue;

        telemetry::ActionRecord record;
        record.time_ms = time_ms;
        record.user_id = user.id;
        record.action = type;
        record.user_class = user.user_class;
        record.latency_ms =
            environment_->sample_latency(time_ms, type, user.latency_offset, user_random);
        record.status = user_random.bernoulli(config_.error_rate)
                            ? telemetry::ActionStatus::kError
                            : telemetry::ActionStatus::kSuccess;
        result.dataset.add(record);
      }
    }
  }
  result.dataset.sort_by_time();
  result.accepted = result.dataset.size();
  return result;
}

}  // namespace autosens::simulate
