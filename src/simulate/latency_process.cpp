#include "simulate/latency_process.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "telemetry/clock.h"

namespace autosens::simulate {

LatencyEnvironment::LatencyEnvironment(LatencyProcessOptions options, std::int64_t begin_ms,
                                       std::int64_t end_ms, stats::Random& random)
    : options_(options), begin_ms_(begin_ms), end_ms_(end_ms) {
  if (!(end_ms > begin_ms)) throw std::invalid_argument("LatencyEnvironment: empty range");
  if (!(options_.ar_sigma >= 0.0) || !(options_.correlation_minutes > 0.0) ||
      !(options_.grid_step_minutes > 0.0) || !(options_.noise_sigma >= 0.0)) {
    throw std::invalid_argument("LatencyEnvironment: invalid process parameters");
  }
  for (const double base : options_.base_ms) {
    if (!(base > 0.0)) throw std::invalid_argument("LatencyEnvironment: base_ms must be positive");
  }
  for (std::size_t i = 0; i < options_.incidents.size(); ++i) {
    const auto& incident = options_.incidents[i];
    if (!(incident.end_ms > incident.begin_ms)) {
      throw std::invalid_argument("LatencyEnvironment: empty incident window");
    }
    if (i > 0 && incident.begin_ms < options_.incidents[i - 1].end_ms) {
      throw std::invalid_argument(
          "LatencyEnvironment: incidents must be sorted and non-overlapping");
    }
  }
  grid_step_ms_ =
      static_cast<std::int64_t>(options_.grid_step_minutes * telemetry::kMillisPerMinute);
  const auto points =
      static_cast<std::size_t>((end_ms - begin_ms) / grid_step_ms_) + 2;
  grid_.reserve(points);
  // Stationary AR(1): x_{k+1} = rho x_k + sqrt(1 - rho^2) sigma eta_k.
  const double rho = std::exp(-options_.grid_step_minutes / options_.correlation_minutes);
  const double innovation = options_.ar_sigma * std::sqrt(1.0 - rho * rho);
  double x = random.normal(0.0, options_.ar_sigma);
  for (std::size_t i = 0; i < points; ++i) {
    grid_.push_back(x);
    x = rho * x + innovation * random.normal();
  }
}

double LatencyEnvironment::ar_component(std::int64_t time_ms) const noexcept {
  if (time_ms <= begin_ms_) return grid_.front();
  const std::int64_t offset = time_ms - begin_ms_;
  const auto idx = static_cast<std::size_t>(offset / grid_step_ms_);
  if (idx + 1 >= grid_.size()) return grid_.back();
  const double frac = static_cast<double>(offset % grid_step_ms_) /
                      static_cast<double>(grid_step_ms_);
  return grid_[idx] * (1.0 - frac) + grid_[idx + 1] * frac;
}

double LatencyEnvironment::incident_shift(std::int64_t time_ms) const noexcept {
  // Incidents are sorted and non-overlapping; find the last starting <= t.
  const auto it = std::upper_bound(
      options_.incidents.begin(), options_.incidents.end(), time_ms,
      [](std::int64_t t, const LatencyIncident& inc) { return t < inc.begin_ms; });
  if (it == options_.incidents.begin()) return 0.0;
  const auto& incident = *(it - 1);
  return time_ms < incident.end_ms ? incident.log_shift : 0.0;
}

double LatencyEnvironment::predictable_latency(std::int64_t time_ms,
                                               telemetry::ActionType type,
                                               double user_offset) const noexcept {
  const double log_latency = std::log(options_.base_ms[static_cast<std::size_t>(type)]) +
                             options_.load_curve.at_time(time_ms) + ar_component(time_ms) +
                             incident_shift(time_ms) + user_offset;
  // E[exp(eps)] correction so this is the conditional mean of the sample.
  return std::exp(log_latency + 0.5 * options_.noise_sigma * options_.noise_sigma);
}

double LatencyEnvironment::sample_latency(std::int64_t time_ms, telemetry::ActionType type,
                                          double user_offset,
                                          stats::Random& random) const noexcept {
  const double log_latency = std::log(options_.base_ms[static_cast<std::size_t>(type)]) +
                             options_.load_curve.at_time(time_ms) + ar_component(time_ms) +
                             incident_shift(time_ms) + user_offset;
  return std::exp(log_latency + options_.noise_sigma * random.normal());
}

}  // namespace autosens::simulate
