// The workload generator: turns a WorkloadConfig into a telemetry Dataset by
// simulating every user's action stream as an inhomogeneous Poisson process,
// thinned by (a) the diurnal activity curve — the time confounder — and
// (b) the planted latency-preference evaluated at the *predictable* latency
// of the current environment. Accepted actions are logged with the measured
// latency (predictable part × unpredictable lognormal noise), reproducing
// the natural-experiment structure AutoSens exploits.
#pragma once

#include <memory>

#include "simulate/config.h"
#include "telemetry/dataset.h"

namespace autosens::simulate {

struct GeneratorResult {
  telemetry::Dataset dataset;      ///< Time-sorted accepted actions.
  std::size_t candidates = 0;      ///< Thinning candidates evaluated.
  std::size_t accepted = 0;        ///< Records produced (== dataset.size()).
};

class WorkloadGenerator {
 public:
  /// Builds the latency environment and population from config.seed.
  explicit WorkloadGenerator(WorkloadConfig config);

  /// Run the simulation. Deterministic for a fixed config (including seed).
  GeneratorResult generate();

  const WorkloadConfig& config() const noexcept { return config_; }
  const Population& population() const noexcept { return *population_; }
  const LatencyEnvironment& environment() const noexcept { return *environment_; }
  const PreferenceModel& preference() const noexcept { return preference_; }

 private:
  WorkloadConfig config_;
  stats::Random master_;
  std::unique_ptr<LatencyEnvironment> environment_;
  std::unique_ptr<Population> population_;
  PreferenceModel preference_;
};

}  // namespace autosens::simulate
