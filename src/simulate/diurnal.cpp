#include "simulate/diurnal.h"

#include <algorithm>
#include <cmath>

#include "telemetry/clock.h"

namespace autosens::simulate {

double DiurnalCurve::at_hour(double hour) const noexcept {
  // Interpolate between hour centers h + 0.5, wrapping at midnight.
  double shifted = hour - 0.5;
  if (shifted < 0.0) shifted += 24.0;
  const int lo = static_cast<int>(shifted) % 24;
  const int hi = (lo + 1) % 24;
  const double frac = shifted - std::floor(shifted);
  return values_[static_cast<std::size_t>(lo)] * (1.0 - frac) +
         values_[static_cast<std::size_t>(hi)] * frac;
}

double DiurnalCurve::at_time(std::int64_t time_ms) const noexcept {
  const std::int64_t ms_of_day =
      ((time_ms % telemetry::kMillisPerDay) + telemetry::kMillisPerDay) %
      telemetry::kMillisPerDay;
  return at_hour(static_cast<double>(ms_of_day) / static_cast<double>(telemetry::kMillisPerHour));
}

double DiurnalCurve::max_value() const noexcept {
  return *std::max_element(values_.begin(), values_.end());
}

double DiurnalCurve::min_value() const noexcept {
  return *std::min_element(values_.begin(), values_.end());
}

double DiurnalCurve::mean_over_hours(int from_hour, int to_hour) const noexcept {
  double sum = 0.0;
  int count = 0;
  int h = from_hour;
  do {
    sum += values_[static_cast<std::size_t>(h % 24)];
    ++count;
    h = (h + 1) % 24;
  } while (h != to_hour % 24);
  return count > 0 ? sum / count : 0.0;
}

DiurnalCurve default_activity_curve() noexcept {
  return DiurnalCurve({0.35, 0.25, 0.18, 0.12, 0.10, 0.12, 0.25, 0.45,
                       0.75, 0.92, 1.00, 0.98, 0.85, 0.90, 0.95, 0.92,
                       0.85, 0.75, 0.62, 0.55, 0.50, 0.48, 0.45, 0.40});
}

DiurnalCurve default_load_curve() noexcept {
  return DiurnalCurve({-0.05, -0.07, -0.09, -0.10, -0.10, -0.08, -0.04, 0.00,
                       0.06, 0.10, 0.14, 0.15, 0.12, 0.12, 0.13, 0.12,
                       0.10, 0.08, 0.05, 0.02, 0.00, -0.01, -0.03, -0.04});
}

double weekend_multiplier(std::int64_t time_ms, double weekend_factor) noexcept {
  const int dow = telemetry::day_of_week(time_ms);
  // day_of_week 0 = Thursday, so 2 = Saturday and 3 = Sunday.
  return (dow == 2 || dow == 3) ? weekend_factor : 1.0;
}

}  // namespace autosens::simulate
