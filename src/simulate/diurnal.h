// Diurnal (time-of-day) curves: the simulator's model of how user activity
// and service load vary over the day. These two curves are the *time
// confounder* of paper §2.4.1 — activity and latency both peak during
// business hours, so a naive pooled analysis conflates "users act less at
// night" with "users act less at high latency".
#pragma once

#include <array>
#include <cstdint>

namespace autosens::simulate {

/// A 24-point curve over hour-of-day, linearly interpolated between hour
/// centers (h + 0.5) with wraparound at midnight.
class DiurnalCurve {
 public:
  explicit DiurnalCurve(std::array<double, 24> hourly_values) noexcept
      : values_(hourly_values) {}

  /// Value at a fractional hour in [0, 24).
  double at_hour(double hour) const noexcept;
  /// Value at an epoch-ms timestamp.
  double at_time(std::int64_t time_ms) const noexcept;

  double max_value() const noexcept;
  double min_value() const noexcept;
  /// Mean of the curve over an hour-of-day interval [from_hour, to_hour)
  /// (wrapping), sampled per hour center. Used for planted-α ground truth.
  double mean_over_hours(int from_hour, int to_hour) const noexcept;

  const std::array<double, 24>& hourly() const noexcept { return values_; }

 private:
  std::array<double, 24> values_;
};

/// Default activity curve: business-hours peak, deep night trough.
DiurnalCurve default_activity_curve() noexcept;

/// Default load curve, in *log-latency units* added to the environment:
/// positive during busy hours (higher latency), negative at night.
DiurnalCurve default_load_curve() noexcept;

/// Weekend activity damping: multiplier applied on Saturdays and Sundays.
/// Epoch day 0 (1970-01-01) is a Thursday, so Saturday = day_of_week 2.
double weekend_multiplier(std::int64_t time_ms, double weekend_factor) noexcept;

}  // namespace autosens::simulate
