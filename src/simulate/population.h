// The simulated user population: each user has an anonymized id, a
// subscription class (business / consumer, §3.3), a per-user log-latency
// offset (their network quality — the basis of the conditioning-to-speed
// analysis, §3.4), and a relative activity level.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.h"
#include "telemetry/record.h"

namespace autosens::simulate {

struct SimUser {
  std::uint64_t id = 0;
  telemetry::UserClass user_class = telemetry::UserClass::kConsumer;
  double latency_offset = 0.0;    ///< Log-latency shift (network quality).
  double speed_percentile = 0.5;  ///< Rank of the offset in [0,1]; 0 = fastest.
  double activity_scale = 1.0;    ///< Per-user base rate multiplier.
};

struct PopulationOptions {
  std::size_t user_count = 2000;
  double business_fraction = 0.5;
  double offset_sigma = 0.10;       ///< Stddev of per-user log-latency offset.
  double activity_lognormal_sigma = 0.50;  ///< Heterogeneous user activity.
};

class Population {
 public:
  /// Throws std::invalid_argument on zero users or out-of-range fractions.
  Population(PopulationOptions options, stats::Random& random);

  const std::vector<SimUser>& users() const noexcept { return users_; }
  std::size_t size() const noexcept { return users_.size(); }
  const PopulationOptions& options() const noexcept { return options_; }

  /// Mean speed percentile of users in a class (≈ 0.5 by construction, but
  /// computed exactly for expected-curve calculations).
  double mean_percentile(telemetry::UserClass user_class) const noexcept;

 private:
  PopulationOptions options_;
  std::vector<SimUser> users_;
};

}  // namespace autosens::simulate
