#include "simulate/preference.h"

#include <algorithm>
#include <cmath>

namespace autosens::simulate {
namespace {

using stats::CurvePoint;
using stats::PiecewiseLinearCurve;
using telemetry::ActionType;

/// Anchors follow the values the paper reports for business users in Fig 4
/// (SelectMail: 0.88 / 0.68 / 0.61 at 500 / 1000 / 1500 ms, flattening toward
/// ~0.57 past 2000 ms, consistent with §3.5's 0.59 at 2000 ms).
PiecewiseLinearCurve select_mail_curve() {
  return PiecewiseLinearCurve({{0.0, 1.06},
                               {100.0, 1.05},
                               {200.0, 1.03},
                               {300.0, 1.00},
                               {500.0, 0.88},
                               {750.0, 0.77},
                               {1000.0, 0.68},
                               {1250.0, 0.64},
                               {1500.0, 0.61},
                               {2000.0, 0.59},
                               {3000.0, 0.57},
                               {5000.0, 0.55}});
}

PiecewiseLinearCurve switch_folder_curve() {
  return PiecewiseLinearCurve({{0.0, 1.05},
                               {200.0, 1.02},
                               {300.0, 1.00},
                               {500.0, 0.90},
                               {750.0, 0.80},
                               {1000.0, 0.73},
                               {1500.0, 0.66},
                               {2000.0, 0.63},
                               {3000.0, 0.61},
                               {5000.0, 0.59}});
}

PiecewiseLinearCurve search_curve() {
  return PiecewiseLinearCurve({{0.0, 1.02},
                               {300.0, 1.00},
                               {500.0, 0.965},
                               {1000.0, 0.895},
                               {1500.0, 0.855},
                               {2000.0, 0.83},
                               {3000.0, 0.80},
                               {5000.0, 0.77}});
}

PiecewiseLinearCurve compose_send_curve() {
  // Asynchronous in the UI (paper §3.2): essentially flat.
  return PiecewiseLinearCurve({{0.0, 1.005}, {300.0, 1.00}, {2000.0, 0.99}, {5000.0, 0.98}});
}

PiecewiseLinearCurve other_curve() {
  return PiecewiseLinearCurve({{0.0, 1.03}, {300.0, 1.00}, {1000.0, 0.85}, {5000.0, 0.75}});
}

}  // namespace

PreferenceModel::PreferenceModel(Options options)
    : options_(options),
      base_{select_mail_curve(), switch_folder_curve(), search_curve(), compose_send_curve(),
            other_curve()} {
  // preference() is 1 - s*(1 - base); its maximum over all arguments is
  // reached at the largest base value with the largest drop scale when
  // base > 1 (scaling amplifies excursions above 1 too).
  double max_base = 0.0;
  for (const auto& curve : base_) {
    for (const auto& anchor : curve.anchors()) max_base = std::max(max_base, anchor.y);
  }
  const double max_scale =
      std::max(1.0, options_.consumer_drop_scale) *
      std::max(options_.user_drop_at_fastest, options_.user_drop_at_slowest) *
      std::max({options_.period_drop_scale[0], options_.period_drop_scale[1],
                options_.period_drop_scale[2], options_.period_drop_scale[3]});
  max_preference_ = 1.0 + max_scale * std::max(0.0, max_base - 1.0);
}

double PreferenceModel::user_drop_scale(double speed_percentile) const noexcept {
  const double p = std::clamp(speed_percentile, 0.0, 1.0);
  return options_.user_drop_at_fastest +
         (options_.user_drop_at_slowest - options_.user_drop_at_fastest) * p;
}

double PreferenceModel::preference(telemetry::ActionType type, telemetry::UserClass user_class,
                                   double speed_percentile, telemetry::DayPeriod period,
                                   double predictable_latency_ms) const noexcept {
  const double base = base_curve(type)(predictable_latency_ms);
  const double scale = class_drop_scale(user_class) * user_drop_scale(speed_percentile) *
                       period_drop_scale(period);
  const double pref = 1.0 - scale * (1.0 - base);
  return std::clamp(pref, 0.02, max_preference_);
}

stats::PiecewiseLinearCurve PreferenceModel::expected_curve(telemetry::ActionType type,
                                                            telemetry::UserClass user_class,
                                                            double mean_percentile,
                                                            double period_scale,
                                                            double ref_ms) const {
  const double scale =
      class_drop_scale(user_class) * user_drop_scale(mean_percentile) * period_scale;
  return base_curve(type).with_drop_scaled(scale).normalized_at(ref_ms);
}

}  // namespace autosens::simulate
