#include "telemetry/validate.h"

#include <cmath>
#include <sstream>

namespace autosens::telemetry {

std::string ValidationReport::summary() const {
  std::ostringstream out;
  out << "validated " << total << " records: kept " << kept << ", dropped " << dropped()
      << " (error-status " << dropped_error_status << ", nonpositive-latency "
      << dropped_nonpositive_latency << ", excessive-latency " << dropped_excessive_latency
      << ", nonfinite-latency " << dropped_nonfinite_latency << ")";
  return out.str();
}

ValidatedDataset validate(const Dataset& input, const ValidationOptions& options) {
  ValidatedDataset result;
  result.report.total = input.size();
  for (const auto& r : input.records()) {
    if (!std::isfinite(r.latency_ms)) {
      ++result.report.dropped_nonfinite_latency;
      continue;
    }
    if (options.successful_only && r.status == ActionStatus::kError) {
      ++result.report.dropped_error_status;
      continue;
    }
    if (r.latency_ms <= options.min_latency_ms) {
      ++result.report.dropped_nonpositive_latency;
      continue;
    }
    if (r.latency_ms > options.max_latency_ms) {
      ++result.report.dropped_excessive_latency;
      continue;
    }
    result.dataset.add(r);
  }
  result.report.kept = result.dataset.size();
  result.dataset.sort_by_time();
  return result;
}

}  // namespace autosens::telemetry
