#include "telemetry/validate.h"

#include <cmath>
#include <sstream>

#include "obs/metrics.h"

namespace autosens::telemetry {
namespace {

/// Pre-registered per-reason drop counters (one per rejection cause, labeled
/// Prometheus-style) plus totals for the validation stage.
struct ValidateMetrics {
  obs::Counter& total = obs::registry().counter(
      "autosens_validate_records_total", "Records entering validation");
  obs::Counter& kept = obs::registry().counter(
      "autosens_validate_records_kept_total", "Records surviving validation");
  obs::Counter& error_status = obs::registry().counter(
      "autosens_validate_dropped_total{reason=\"error_status\"}",
      "Records dropped by validation, by reason");
  obs::Counter& nonpositive = obs::registry().counter(
      "autosens_validate_dropped_total{reason=\"nonpositive_latency\"}",
      "Records dropped by validation, by reason");
  obs::Counter& excessive = obs::registry().counter(
      "autosens_validate_dropped_total{reason=\"excessive_latency\"}",
      "Records dropped by validation, by reason");
  obs::Counter& nonfinite = obs::registry().counter(
      "autosens_validate_dropped_total{reason=\"nonfinite_latency\"}",
      "Records dropped by validation, by reason");
  obs::Counter& bad_timestamp = obs::registry().counter(
      "autosens_validate_dropped_total{reason=\"bad_timestamp\"}",
      "Records dropped by validation, by reason");
  obs::Counter& out_of_window = obs::registry().counter(
      "autosens_validate_dropped_total{reason=\"out_of_window\"}",
      "Records dropped by validation, by reason");
};

ValidateMetrics& metrics() {
  static ValidateMetrics handles;
  return handles;
}

void append_reason(std::ostream& out, bool& first, const char* name, std::size_t count) {
  if (count == 0) return;
  out << (first ? "" : ", ") << name << " " << count;
  first = false;
}

}  // namespace

std::string ValidationReport::summary() const {
  std::ostringstream out;
  out << "validated " << total << " records: kept " << kept << ", dropped " << dropped()
      << " (error-status " << dropped_error_status << ", nonpositive-latency "
      << dropped_nonpositive_latency << ", excessive-latency " << dropped_excessive_latency
      << ", nonfinite-latency " << dropped_nonfinite_latency << ", bad-timestamp "
      << dropped_bad_timestamp << ", out-of-window " << dropped_out_of_window << ")";
  return out.str();
}

std::string ValidationReport::one_line() const {
  std::ostringstream out;
  out << "kept " << kept << "/" << total;
  if (dropped() == 0) return out.str();
  out << " (dropped: ";
  bool first = true;
  append_reason(out, first, "error-status", dropped_error_status);
  append_reason(out, first, "nonpositive-latency", dropped_nonpositive_latency);
  append_reason(out, first, "excessive-latency", dropped_excessive_latency);
  append_reason(out, first, "nonfinite-latency", dropped_nonfinite_latency);
  append_reason(out, first, "bad-timestamp", dropped_bad_timestamp);
  append_reason(out, first, "out-of-window", dropped_out_of_window);
  out << ")";
  return out.str();
}

ValidatedDataset validate(const Dataset& input, const ValidationOptions& options) {
  ValidatedDataset result;
  result.report.total = input.size();
  // Every check reads only time, latency, and status, so scan those columns
  // directly and copy survivors column-to-column — no ActionRecord
  // materialization on the hot path.
  const auto times = input.times();
  const auto latencies = input.latencies();
  const auto statuses = input.statuses();
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] < options.min_time_ms) {
      ++result.report.dropped_bad_timestamp;
      continue;
    }
    if (times[i] < options.window_begin_ms || times[i] >= options.window_end_ms) {
      ++result.report.dropped_out_of_window;
      continue;
    }
    if (!std::isfinite(latencies[i])) {
      ++result.report.dropped_nonfinite_latency;
      continue;
    }
    if (options.successful_only && statuses[i] == ActionStatus::kError) {
      ++result.report.dropped_error_status;
      continue;
    }
    if (latencies[i] <= options.min_latency_ms) {
      ++result.report.dropped_nonpositive_latency;
      continue;
    }
    if (latencies[i] > options.max_latency_ms) {
      ++result.report.dropped_excessive_latency;
      continue;
    }
    result.dataset.append_from(input, i);
  }
  result.report.kept = result.dataset.size();
  result.dataset.sort_by_time();

  auto& m = metrics();
  m.total.inc(result.report.total);
  m.kept.inc(result.report.kept);
  m.error_status.inc(result.report.dropped_error_status);
  m.nonpositive.inc(result.report.dropped_nonpositive_latency);
  m.excessive.inc(result.report.dropped_excessive_latency);
  m.nonfinite.inc(result.report.dropped_nonfinite_latency);
  m.bad_timestamp.inc(result.report.dropped_bad_timestamp);
  m.out_of_window.inc(result.report.dropped_out_of_window);
  return result;
}

}  // namespace autosens::telemetry
