#include "telemetry/binlog.h"

#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace autosens::telemetry {
namespace codec {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool get_varint(std::span<const std::uint8_t> in, std::size_t& offset, std::uint64_t& value) {
  value = 0;
  int shift = 0;
  while (offset < in.size() && shift < 64) {
    const std::uint8_t byte = in[offset++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

std::uint64_t zigzag_encode(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>(value >> 1) ^ -static_cast<std::int64_t>(value & 1);
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  static const auto table = make_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::vector<std::uint8_t> encode_batch(std::span<const ActionRecord> records) {
  std::vector<std::uint8_t> out;
  out.reserve(records.size() * 8 + 16);
  put_varint(out, records.size());
  std::int64_t prev_time = 0;
  std::uint64_t prev_user = 0;
  for (const auto& r : records) {
    put_varint(out, zigzag_encode(r.time_ms - prev_time));
    put_varint(out, zigzag_encode(static_cast<std::int64_t>(r.user_id) -
                                  static_cast<std::int64_t>(prev_user)));
    const double scaled = std::round(r.latency_ms * 100.0);
    put_varint(out, zigzag_encode(static_cast<std::int64_t>(scaled)));
    out.push_back(static_cast<std::uint8_t>(r.action));
    out.push_back(static_cast<std::uint8_t>(r.user_class));
    out.push_back(static_cast<std::uint8_t>(r.status));
    prev_time = r.time_ms;
    prev_user = r.user_id;
  }
  return out;
}

std::vector<ActionRecord> decode_batch(std::span<const std::uint8_t> payload) {
  std::size_t offset = 0;
  std::uint64_t count = 0;
  if (!get_varint(payload, offset, count)) {
    throw std::runtime_error("decode_batch: truncated count");
  }
  std::vector<ActionRecord> records;
  records.reserve(count);
  std::int64_t prev_time = 0;
  std::uint64_t prev_user = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t time_delta = 0;
    std::uint64_t user_delta = 0;
    std::uint64_t latency_scaled = 0;
    if (!get_varint(payload, offset, time_delta) ||
        !get_varint(payload, offset, user_delta) ||
        !get_varint(payload, offset, latency_scaled) || offset + 3 > payload.size()) {
      throw std::runtime_error("decode_batch: truncated record");
    }
    ActionRecord r;
    r.time_ms = prev_time + zigzag_decode(time_delta);
    r.user_id = static_cast<std::uint64_t>(static_cast<std::int64_t>(prev_user) +
                                           zigzag_decode(user_delta));
    r.latency_ms = static_cast<double>(zigzag_decode(latency_scaled)) / 100.0;
    const std::uint8_t action = payload[offset++];
    const std::uint8_t user_class = payload[offset++];
    const std::uint8_t status = payload[offset++];
    if (action >= kActionTypeCount || user_class >= kUserClassCount || status > 1) {
      throw std::runtime_error("decode_batch: invalid enum value");
    }
    r.action = static_cast<ActionType>(action);
    r.user_class = static_cast<UserClass>(user_class);
    r.status = static_cast<ActionStatus>(status);
    records.push_back(r);
    prev_time = r.time_ms;
    prev_user = r.user_id;
  }
  if (offset != payload.size()) {
    throw std::runtime_error("decode_batch: trailing bytes in payload");
  }
  return records;
}

}  // namespace codec

namespace {

constexpr std::array<char, 4> kMagic = {'A', 'S', 'L', '1'};

void put_u32(std::ostream& out, std::uint32_t value) {
  std::array<std::uint8_t, 4> bytes = {
      static_cast<std::uint8_t>(value), static_cast<std::uint8_t>(value >> 8),
      static_cast<std::uint8_t>(value >> 16), static_cast<std::uint8_t>(value >> 24)};
  out.write(reinterpret_cast<const char*>(bytes.data()), 4);
}

bool get_u32(std::istream& in, std::uint32_t& value) {
  std::array<std::uint8_t, 4> bytes{};
  if (!in.read(reinterpret_cast<char*>(bytes.data()), 4)) return false;
  value = static_cast<std::uint32_t>(bytes[0]) | (static_cast<std::uint32_t>(bytes[1]) << 8) |
          (static_cast<std::uint32_t>(bytes[2]) << 16) |
          (static_cast<std::uint32_t>(bytes[3]) << 24);
  return true;
}

}  // namespace

void write_binlog(std::ostream& out, const Dataset& dataset, std::size_t batch_size) {
  if (batch_size == 0) throw std::invalid_argument("write_binlog: batch_size must be nonzero");
  out.write(kMagic.data(), kMagic.size());
  // Gather one batch at a time from the columns instead of materializing the
  // whole dataset as records up front.
  std::vector<ActionRecord> batch;
  batch.reserve(std::min(batch_size, dataset.size()));
  for (std::size_t start = 0; start < dataset.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, dataset.size() - start);
    batch.clear();
    for (std::size_t k = start; k < start + count; ++k) batch.push_back(dataset[k]);
    const auto payload = codec::encode_batch(batch);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    put_u32(out, codec::crc32(payload));
  }
  if (!out) throw std::runtime_error("write_binlog: stream write failed");
}

void write_binlog_file(const std::string& path, const Dataset& dataset, std::size_t batch_size) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_binlog_file: cannot open " + path);
  write_binlog(out, dataset, batch_size);
}

Dataset read_binlog(std::istream& in) {
  std::array<char, 4> magic{};
  if (!in.read(magic.data(), magic.size()) || magic != kMagic) {
    throw std::runtime_error("read_binlog: bad magic");
  }
  Dataset dataset;
  std::uint32_t payload_len = 0;
  while (get_u32(in, payload_len)) {
    std::vector<std::uint8_t> payload(payload_len);
    if (payload_len > 0 &&
        !in.read(reinterpret_cast<char*>(payload.data()), payload_len)) {
      throw std::runtime_error("read_binlog: truncated payload");
    }
    std::uint32_t stored_crc = 0;
    if (!get_u32(in, stored_crc)) throw std::runtime_error("read_binlog: truncated crc");
    if (stored_crc != codec::crc32(payload)) {
      throw std::runtime_error("read_binlog: crc mismatch");
    }
    for (const auto& r : codec::decode_batch(payload)) dataset.add(r);
  }
  if (!in.eof() && in.fail()) throw std::runtime_error("read_binlog: stream read failed");
  dataset.sort_by_time();
  return dataset;
}

Dataset read_binlog_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_binlog_file: cannot open " + path);
  return read_binlog(in);
}

}  // namespace autosens::telemetry
