#include "telemetry/binlog.h"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "core/parallel.h"
#include "obs/trace.h"

namespace autosens::telemetry {
namespace codec {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool get_varint(std::span<const std::uint8_t> in, std::size_t& offset, std::uint64_t& value) {
  value = 0;
  int shift = 0;
  while (offset < in.size() && shift < 64) {
    const std::uint8_t byte = in[offset++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

std::uint64_t zigzag_encode(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>(value >> 1) ^ -static_cast<std::int64_t>(value & 1);
}

namespace {

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
/// table[k] advances a byte through k further zero bytes, letting the hot
/// loop fold 8 input bytes per iteration (~8x the byte-loop throughput,
/// which matters now that every ASL2 column block is CRC-checked on load).
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xffu];
    }
  }
  return tables;
}

#if defined(__x86_64__) && defined(__GNUC__)
/// Carry-less-multiplication CRC32 (Intel's folding method, the same
/// constants zlib uses for the reflected 0xedb88320 polynomial). Takes and
/// returns the working register state (initialised to ~0 by the caller);
/// `len` must be >= 64 and a multiple of 16.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t crc32_clmul(
    const std::uint8_t* buf, std::size_t len, std::uint32_t crc) {
  const __m128i k1k2 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
  const __m128i k3k4 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);
  const __m128i k5 = _mm_set_epi64x(0, 0x0163cd6124);
  const __m128i poly = _mm_set_epi64x(0x01f7011641, 0x01db710641);

  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20));
  __m128i x4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30));
  x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(static_cast<int>(crc)));
  buf += 64;
  len -= 64;

  // Fold four 128-bit lanes in parallel, 64 input bytes per iteration.
  while (len >= 64) {
    __m128i x5 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    __m128i x6 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    __m128i x7 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    __m128i x8 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x00)));
    x2 = _mm_xor_si128(_mm_xor_si128(x2, x6),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x10)));
    x3 = _mm_xor_si128(_mm_xor_si128(x3, x7),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x20)));
    x4 = _mm_xor_si128(_mm_xor_si128(x4, x8),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf + 0x30)));
    buf += 64;
    len -= 64;
  }

  // Fold the four lanes into one.
  __m128i x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
  x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

  // Remaining 16-byte blocks.
  while (len >= 16) {
    x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, x5),
                       _mm_loadu_si128(reinterpret_cast<const __m128i*>(buf)));
    buf += 16;
    len -= 16;
  }

  // Fold 128 -> 64 bits, then Barrett-reduce to 32.
  const __m128i mask32 = _mm_setr_epi32(~0, 0, ~0, 0);
  __m128i x0 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
  x1 = _mm_srli_si128(x1, 8);
  x1 = _mm_xor_si128(x1, x0);
  x0 = _mm_srli_si128(x1, 4);
  x1 = _mm_and_si128(x1, mask32);
  x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
  x1 = _mm_xor_si128(x1, x0);
  x0 = _mm_and_si128(x1, mask32);
  x0 = _mm_clmulepi64_si128(x0, poly, 0x10);
  x0 = _mm_and_si128(x0, mask32);
  x0 = _mm_clmulepi64_si128(x0, poly, 0x00);
  x1 = _mm_xor_si128(x1, x0);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x1, 1));
}

bool cpu_has_clmul() noexcept {
  static const bool supported =
      __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
  return supported;
}
#endif  // __x86_64__ && __GNUC__

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  static const auto tables = make_crc_tables();
  std::uint32_t crc = 0xffffffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
#if defined(__x86_64__) && defined(__GNUC__)
  if (n >= 64 && cpu_has_clmul()) {
    const std::size_t folded = n & ~std::size_t{15};
    crc = crc32_clmul(p, folded, crc);
    p += folded;
    n -= folded;
  }
#endif
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tables[7][lo & 0xffu] ^ tables[6][(lo >> 8) & 0xffu] ^
          tables[5][(lo >> 16) & 0xffu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xffu] ^ tables[2][(hi >> 8) & 0xffu] ^
          tables[1][(hi >> 16) & 0xffu] ^ tables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = tables[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

std::vector<std::uint8_t> encode_batch(std::span<const ActionRecord> records) {
  std::vector<std::uint8_t> out;
  out.reserve(records.size() * 8 + 16);
  put_varint(out, records.size());
  std::int64_t prev_time = 0;
  std::uint64_t prev_user = 0;
  for (const auto& r : records) {
    put_varint(out, zigzag_encode(r.time_ms - prev_time));
    put_varint(out, zigzag_encode(static_cast<std::int64_t>(r.user_id) -
                                  static_cast<std::int64_t>(prev_user)));
    const double scaled = std::round(r.latency_ms * 100.0);
    put_varint(out, zigzag_encode(static_cast<std::int64_t>(scaled)));
    out.push_back(static_cast<std::uint8_t>(r.action));
    out.push_back(static_cast<std::uint8_t>(r.user_class));
    out.push_back(static_cast<std::uint8_t>(r.status));
    prev_time = r.time_ms;
    prev_user = r.user_id;
  }
  return out;
}

std::vector<ActionRecord> decode_batch(std::span<const std::uint8_t> payload) {
  std::vector<ActionRecord> records;
  decode_batch_into(payload, records);
  return records;
}

void decode_batch_into(std::span<const std::uint8_t> payload, std::vector<ActionRecord>& records) {
  records.clear();
  std::size_t offset = 0;
  std::uint64_t count = 0;
  if (!get_varint(payload, offset, count)) {
    throw std::runtime_error("decode_batch: truncated count");
  }
  // `count` is attacker-controlled; every record needs >= 6 payload bytes
  // (three varints + three enum bytes), so clamp the reserve to that bound
  // rather than letting a bogus huge count throw bad_alloc instead of the
  // documented runtime_error from the per-record truncation check below.
  records.reserve(std::min<std::uint64_t>(count, payload.size() / 6));
  std::int64_t prev_time = 0;
  std::uint64_t prev_user = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t time_delta = 0;
    std::uint64_t user_delta = 0;
    std::uint64_t latency_scaled = 0;
    if (!get_varint(payload, offset, time_delta) ||
        !get_varint(payload, offset, user_delta) ||
        !get_varint(payload, offset, latency_scaled) || offset + 3 > payload.size()) {
      throw std::runtime_error("decode_batch: truncated record");
    }
    ActionRecord r;
    r.time_ms = prev_time + zigzag_decode(time_delta);
    r.user_id = static_cast<std::uint64_t>(static_cast<std::int64_t>(prev_user) +
                                           zigzag_decode(user_delta));
    r.latency_ms = static_cast<double>(zigzag_decode(latency_scaled)) / 100.0;
    const std::uint8_t action = payload[offset++];
    const std::uint8_t user_class = payload[offset++];
    const std::uint8_t status = payload[offset++];
    if (action >= kActionTypeCount || user_class >= kUserClassCount || status > 1) {
      throw std::runtime_error("decode_batch: invalid enum value");
    }
    r.action = static_cast<ActionType>(action);
    r.user_class = static_cast<UserClass>(user_class);
    r.status = static_cast<ActionStatus>(status);
    records.push_back(r);
    prev_time = r.time_ms;
    prev_user = r.user_id;
  }
  if (offset != payload.size()) {
    throw std::runtime_error("decode_batch: trailing bytes in payload");
  }
}

}  // namespace codec

namespace {

// The ASL2 block copies below reinterpret column memory as little-endian
// wire bytes directly; a big-endian port would need byte-swapping loops.
static_assert(std::endian::native == std::endian::little,
              "ASL2 column block I/O assumes a little-endian host");
static_assert(sizeof(ActionType) == 1 && sizeof(UserClass) == 1 && sizeof(ActionStatus) == 1,
              "ASL2 enum blocks are one byte per record");

constexpr std::array<char, 4> kMagicV1 = {'A', 'S', 'L', '1'};
constexpr std::array<char, 4> kMagicV2 = {'A', 'S', 'L', '2'};

/// Fixed bytes per record in an ASL2 payload after the varint count:
/// time (8) + latency (8) + user_id (8) + action/class/status (1 each).
constexpr std::size_t kV2RecordBytes = 8 + 8 + 8 + 3;

void put_u32(std::ostream& out, std::uint32_t value) {
  std::array<std::uint8_t, 4> bytes = {
      static_cast<std::uint8_t>(value), static_cast<std::uint8_t>(value >> 8),
      static_cast<std::uint8_t>(value >> 16), static_cast<std::uint8_t>(value >> 24)};
  out.write(reinterpret_cast<const char*>(bytes.data()), 4);
}

std::uint32_t load_u32(std::span<const std::uint8_t> data, std::size_t offset) noexcept {
  return static_cast<std::uint32_t>(data[offset]) |
         (static_cast<std::uint32_t>(data[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(data[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(data[offset + 3]) << 24);
}

void append_block(std::vector<std::uint8_t>& out, const void* src, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(src);
  out.insert(out.end(), p, p + bytes);
}

/// ASL2: validate frame geometry serially (varint count + fixed block
/// sizes), prefix-sum destination offsets, then CRC + memcpy every frame's
/// column blocks straight into its precomputed slice of the output columns
/// in parallel. Destinations depend only on the frame headers, so the
/// result is identical for every thread count; a corrupt frame throws and
/// the pool rethrows the lowest frame's error deterministically.
Dataset read_binlog_v2(std::span<const std::uint8_t> data,
                       const std::vector<BinlogFrameView>& frames,
                       const IngestOptions& options) {
  struct FramePlan {
    std::size_t blocks_offset = 0;  ///< Offset of the time block in the payload.
    std::size_t count = 0;
    std::size_t dest = 0;  ///< First destination record index.
  };
  std::vector<FramePlan> plans(frames.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto payload = data.subspan(frames[i].payload_offset, frames[i].payload_len);
    std::size_t offset = 0;
    std::uint64_t count = 0;
    if (!codec::get_varint(payload, offset, count)) {
      throw std::runtime_error("read_binlog: truncated record count");
    }
    // Validate by division, not multiplication: `count * kV2RecordBytes` can
    // wrap uint64 for attacker-chosen counts and pass an equality check while
    // the real block is tiny. With this form count is bounded by
    // payload.size() / kV2RecordBytes, so the running total cannot wrap either.
    const std::size_t block_bytes = payload.size() - offset;
    if (block_bytes % kV2RecordBytes != 0 || count != block_bytes / kV2RecordBytes) {
      throw std::runtime_error("read_binlog: frame size does not match record count");
    }
    plans[i] = {offset, static_cast<std::size_t>(count), total};
    total += count;
  }

  std::vector<std::int64_t> times(total);
  std::vector<double> latencies(total);
  std::vector<std::uint64_t> user_ids(total);
  std::vector<ActionType> actions(total);
  std::vector<UserClass> user_classes(total);
  std::vector<ActionStatus> statuses(total);

  core::parallel_for_items(frames.size(), options.threads, [&](std::size_t i) {
    const auto payload = data.subspan(frames[i].payload_offset, frames[i].payload_len);
    if (codec::crc32(payload) != frames[i].crc) {
      throw std::runtime_error("read_binlog: crc mismatch");
    }
    const FramePlan& plan = plans[i];
    // Empty frames have nothing to copy; also keeps memcpy away from the
    // nullptr data() of all-empty column vectors (UB even with length 0).
    if (plan.count == 0) return;
    const std::uint8_t* p = payload.data() + plan.blocks_offset;
    std::memcpy(times.data() + plan.dest, p, plan.count * sizeof(std::int64_t));
    p += plan.count * sizeof(std::int64_t);
    std::memcpy(latencies.data() + plan.dest, p, plan.count * sizeof(double));
    p += plan.count * sizeof(double);
    std::memcpy(user_ids.data() + plan.dest, p, plan.count * sizeof(std::uint64_t));
    p += plan.count * sizeof(std::uint64_t);
    // The enum blocks are validated byte-wise (CRC catches corruption, not a
    // well-formed file written with out-of-range values), then copied.
    const std::uint8_t* action_block = p;
    const std::uint8_t* class_block = p + plan.count;
    const std::uint8_t* status_block = p + 2 * plan.count;
    // Branch-free max reductions vectorize; one range check per block after.
    std::uint8_t max_action = 0;
    std::uint8_t max_class = 0;
    std::uint8_t max_status = 0;
    for (std::size_t k = 0; k < plan.count; ++k) {
      max_action = std::max(max_action, action_block[k]);
      max_class = std::max(max_class, class_block[k]);
      max_status = std::max(max_status, status_block[k]);
    }
    if (max_action >= kActionTypeCount || max_class >= kUserClassCount || max_status > 1) {
      throw std::runtime_error("read_binlog: invalid enum value");
    }
    std::memcpy(actions.data() + plan.dest, action_block, plan.count);
    std::memcpy(user_classes.data() + plan.dest, class_block, plan.count);
    std::memcpy(statuses.data() + plan.dest, status_block, plan.count);
  });

  Dataset dataset;
  dataset.adopt_columns(std::move(times), std::move(latencies), std::move(user_ids),
                        std::move(actions), std::move(user_classes), std::move(statuses));
  dataset.sort_by_time();
  return dataset;
}

/// ASL1 (legacy row format): decode frames over the fixed chunk grid, one
/// record-batch scratch vector and one column shard per CHUNK — the scratch
/// is reused across every frame a chunk decodes, so the per-frame vector
/// churn the ingest profile showed is gone. Shards concatenate in chunk
/// order (= frame order), so the record sequence — and after the stable
/// sort, the dataset — is byte-identical to the per-frame implementation
/// for every thread count.
Dataset read_binlog_v1(std::span<const std::uint8_t> data,
                       const std::vector<BinlogFrameView>& frames,
                       const IngestOptions& options) {
  const core::ChunkGrid grid = core::make_chunk_grid(frames.size(), /*min_per_chunk=*/1);
  std::vector<detail::ColumnShard> shards(grid.chunks);
  core::parallel_for(frames.size(), options.threads, /*min_per_chunk=*/1,
                     [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                       std::vector<ActionRecord> scratch;
                       detail::ColumnShard& shard = shards[chunk];
                       for (std::size_t i = begin; i < end; ++i) {
                         const auto payload =
                             data.subspan(frames[i].payload_offset, frames[i].payload_len);
                         if (codec::crc32(payload) != frames[i].crc) {
                           throw std::runtime_error("read_binlog: crc mismatch");
                         }
                         codec::decode_batch_into(payload, scratch);
                         shard.reserve(shard.size() + scratch.size());
                         for (const auto& r : scratch) shard.push(r);
                       }
                     });
  Dataset dataset;
  std::vector<IngestError> errors;  // ASL1 frames never produce line errors.
  detail::concat_shards(shards, 1, dataset, errors);
  dataset.sort_by_time();
  return dataset;
}

}  // namespace

BinlogVersion binlog_version(std::span<const std::uint8_t> data) {
  if (data.size() < 4) throw std::runtime_error("read_binlog: bad magic");
  const std::array<char, 4> magic = {static_cast<char>(data[0]), static_cast<char>(data[1]),
                                     static_cast<char>(data[2]), static_cast<char>(data[3])};
  if (magic == kMagicV1) return BinlogVersion::kV1;
  if (magic == kMagicV2) return BinlogVersion::kV2;
  throw std::runtime_error("read_binlog: bad magic");
}

std::vector<BinlogFrameView> walk_binlog_frames(std::span<const std::uint8_t> data) {
  std::vector<BinlogFrameView> frames;
  std::size_t offset = 4;  // past magic
  while (offset < data.size()) {
    if (data.size() - offset < 4) {
      throw std::runtime_error("read_binlog: truncated frame header");
    }
    const std::uint32_t len = load_u32(data, offset);
    offset += 4;
    if (data.size() - offset < len) throw std::runtime_error("read_binlog: truncated payload");
    const std::size_t payload_offset = offset;
    offset += len;
    if (data.size() - offset < 4) throw std::runtime_error("read_binlog: truncated crc");
    frames.push_back({payload_offset, len, load_u32(data, offset)});
    offset += 4;
  }
  return frames;
}

void write_binlog_header(std::ostream& out) {
  out.write(kMagicV2.data(), kMagicV2.size());
  if (!out) throw std::runtime_error("write_binlog: stream write failed");
}

void write_binlog_frames(std::ostream& out, std::span<const std::int64_t> times,
                         std::span<const double> latencies,
                         std::span<const std::uint64_t> user_ids,
                         std::span<const ActionType> actions,
                         std::span<const UserClass> user_classes,
                         std::span<const ActionStatus> statuses, std::size_t batch_size) {
  if (batch_size == 0) throw std::invalid_argument("write_binlog: batch_size must be nonzero");
  const std::size_t size = times.size();
  if (latencies.size() != size || user_ids.size() != size || actions.size() != size ||
      user_classes.size() != size || statuses.size() != size) {
    throw std::invalid_argument("write_binlog: column length mismatch");
  }
  std::vector<std::uint8_t> payload;
  for (std::size_t start = 0; start < size; start += batch_size) {
    const std::size_t count = std::min(batch_size, size - start);
    payload.clear();
    payload.reserve(10 + count * kV2RecordBytes);
    codec::put_varint(payload, count);
    append_block(payload, times.data() + start, count * sizeof(std::int64_t));
    append_block(payload, latencies.data() + start, count * sizeof(double));
    append_block(payload, user_ids.data() + start, count * sizeof(std::uint64_t));
    append_block(payload, actions.data() + start, count);
    append_block(payload, user_classes.data() + start, count);
    append_block(payload, statuses.data() + start, count);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    put_u32(out, codec::crc32(payload));
  }
  if (!out) throw std::runtime_error("write_binlog: stream write failed");
}

void write_binlog(std::ostream& out, const Dataset& dataset, std::size_t batch_size) {
  write_binlog_header(out);
  write_binlog_frames(out, dataset.times(), dataset.latencies(), dataset.user_ids(),
                      dataset.actions(), dataset.user_classes(), dataset.statuses(),
                      batch_size);
}

void write_binlog_file(const std::string& path, const Dataset& dataset, std::size_t batch_size) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_binlog_file: cannot open " + path);
  write_binlog(out, dataset, batch_size);
}

void write_binlog_v1(std::ostream& out, const Dataset& dataset, std::size_t batch_size) {
  if (batch_size == 0) throw std::invalid_argument("write_binlog: batch_size must be nonzero");
  out.write(kMagicV1.data(), kMagicV1.size());
  // Gather one batch at a time from the columns instead of materializing the
  // whole dataset as records up front.
  std::vector<ActionRecord> batch;
  batch.reserve(std::min(batch_size, dataset.size()));
  for (std::size_t start = 0; start < dataset.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, dataset.size() - start);
    batch.clear();
    for (std::size_t k = start; k < start + count; ++k) batch.push_back(dataset[k]);
    const auto payload = codec::encode_batch(batch);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    put_u32(out, codec::crc32(payload));
  }
  if (!out) throw std::runtime_error("write_binlog: stream write failed");
}

Dataset read_binlog_buffer(std::span<const std::uint8_t> data, const IngestOptions& options) {
  const BinlogVersion version = binlog_version(data);
  const auto frames = walk_binlog_frames(data);
  return version == BinlogVersion::kV2 ? read_binlog_v2(data, frames, options)
                                       : read_binlog_v1(data, frames, options);
}

Dataset read_binlog(std::istream& in, const IngestOptions& options) {
  const MappedFile input = MappedFile::read_stream(in);
  return read_binlog_buffer(input.bytes(), options);
}

Dataset read_binlog_file(const std::string& path, const IngestOptions& options) {
  obs::Span span("ingest_binlog");
  span.attr("path", path);
  const MappedFile input = MappedFile::map(path);
  const auto start = std::chrono::steady_clock::now();
  Dataset dataset = read_binlog_buffer(input.bytes(), options);
  const IngestStats stats{
      .bytes = input.size(),
      .records = dataset.size(),
      .errors = 0,
      .seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count(),
      .mapped = input.is_mapped()};
  note_ingest("binlog", stats);
  span.attr("records", static_cast<std::int64_t>(stats.records));
  span.attr("bytes", static_cast<std::int64_t>(stats.bytes));
  return dataset;
}

}  // namespace autosens::telemetry
