// Compact binary log format for ActionRecords, plus the byte-level codec
// primitives (varint, zigzag, CRC32) shared with the network wire format.
//
// File layout:
//   magic "ASL1" (4 bytes)
//   frames: [u32 payload_len][payload][u32 crc32(payload)] ...
// Each payload holds a batch of records, delta-encoded: the first record's
// time/user are varint-encoded absolutely, subsequent records store zigzag
// deltas. Latency is stored as a varint of round(latency_ms * 100), i.e.
// 10 µs resolution — far below the 10 ms analysis bin width.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "telemetry/dataset.h"

namespace autosens::telemetry {
namespace codec {

/// Append an unsigned LEB128 varint.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);
/// Read a varint; advances `offset`. Returns false on truncated/overlong input.
bool get_varint(std::span<const std::uint8_t> in, std::size_t& offset, std::uint64_t& value);

/// Zigzag mapping for signed deltas.
std::uint64_t zigzag_encode(std::int64_t value) noexcept;
std::int64_t zigzag_decode(std::uint64_t value) noexcept;

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF).
std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Encode / decode a whole record batch (the frame payload format above).
std::vector<std::uint8_t> encode_batch(std::span<const ActionRecord> records);
/// Throws std::runtime_error on malformed payloads.
std::vector<ActionRecord> decode_batch(std::span<const std::uint8_t> payload);

}  // namespace codec

/// Write `dataset` to a binary log stream, batching `batch_size` records per
/// frame. Throws std::runtime_error on IO failure.
void write_binlog(std::ostream& out, const Dataset& dataset, std::size_t batch_size = 4096);
void write_binlog_file(const std::string& path, const Dataset& dataset,
                       std::size_t batch_size = 4096);

/// Read a binary log. Throws std::runtime_error on bad magic, CRC mismatch,
/// or truncation (this format is checksummed; errors are never silent).
Dataset read_binlog(std::istream& in);
Dataset read_binlog_file(const std::string& path);

}  // namespace autosens::telemetry
