// Compact binary log formats for ActionRecords, plus the byte-level codec
// primitives (varint, zigzag, CRC32) shared with the network wire format.
//
// Two file formats share one frame envelope:
//
//   magic (4 bytes, "ASL1" or "ASL2")
//   frames: [u32 payload_len][payload][u32 crc32(payload)] ...
//
// ASL1 (legacy, row-oriented): each payload is a delta/varint batch of
// records — codec::encode_batch / decode_batch, also the network wire
// payload. Latency is quantized to round(latency_ms * 100), 10 µs
// resolution.
//
// ASL2 (current, column-oriented): each payload is
//   varint record_count
//   time_ms   block: record_count × int64  (little-endian)
//   latency   block: record_count × double (IEEE-754 bits, little-endian)
//   user_id   block: record_count × uint64 (little-endian)
//   action / user_class / status blocks: record_count × uint8 each
// i.e. exactly the Dataset's structure-of-arrays layout. Loading an ASL2
// file is zero-copy in the row sense: the reader memory-maps the file,
// CRC-checks and memcpy's each column block straight into the SoA column
// vectors — no per-record materialization — with frames processed in
// parallel on the shared thread pool (deterministic: every frame's
// destination slice is precomputed from the frame headers alone). Latency
// round-trips exactly (raw double bits).
//
// write_binlog emits ASL2; read_binlog reads both. write_binlog_v1 is kept
// for compatibility fixtures, parity tests, and the seed-path benchmark.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "telemetry/dataset.h"
#include "telemetry/ingest.h"

namespace autosens::telemetry {
namespace codec {

/// Append an unsigned LEB128 varint.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);
/// Read a varint; advances `offset`. Returns false on truncated/overlong input.
bool get_varint(std::span<const std::uint8_t> in, std::size_t& offset, std::uint64_t& value);

/// Zigzag mapping for signed deltas.
std::uint64_t zigzag_encode(std::int64_t value) noexcept;
std::int64_t zigzag_decode(std::uint64_t value) noexcept;

/// CRC-32 (IEEE 802.3, reflected, init/final 0xFFFFFFFF).
std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Encode / decode a whole record batch (the ASL1/wire payload format).
std::vector<std::uint8_t> encode_batch(std::span<const ActionRecord> records);
/// Throws std::runtime_error on malformed payloads.
std::vector<ActionRecord> decode_batch(std::span<const std::uint8_t> payload);
/// decode_batch into a caller-owned buffer: `out` is cleared but keeps its
/// capacity, so frame loops reuse one allocation across frames instead of
/// constructing a fresh vector per frame.
void decode_batch_into(std::span<const std::uint8_t> payload, std::vector<ActionRecord>& out);

}  // namespace codec

/// One frame of a binlog image located by the envelope walk: payload bounds
/// plus the recorded CRC — no payload bytes touched yet.
struct BinlogFrameView {
  std::size_t payload_offset = 0;
  std::size_t payload_len = 0;
  std::uint32_t crc = 0;
};

enum class BinlogVersion { kV1, kV2 };

/// Classify a binlog image by its magic. Throws std::runtime_error on bad
/// magic or a buffer too short to hold one.
BinlogVersion binlog_version(std::span<const std::uint8_t> data);

/// Walk the frame envelopes of a binlog image (cheap header-only pass,
/// magic already validated via binlog_version). Throws std::runtime_error
/// on truncation. Public for the ASL3 store converter, which streams frames
/// through a StoreWriter without ever materializing a Dataset.
std::vector<BinlogFrameView> walk_binlog_frames(std::span<const std::uint8_t> data);

/// Write the 4-byte ASL2 magic (the other streaming half of write_binlog).
void write_binlog_header(std::ostream& out);

/// The streaming half of write_binlog: append ASL2 frames (no magic) for
/// the given column slices, `batch_size` records per frame. All spans must
/// be the same length. Lets callers that produce columns incrementally (the
/// store exporter) emit one binlog from many column slices.
void write_binlog_frames(std::ostream& out, std::span<const std::int64_t> times,
                         std::span<const double> latencies,
                         std::span<const std::uint64_t> user_ids,
                         std::span<const ActionType> actions,
                         std::span<const UserClass> user_classes,
                         std::span<const ActionStatus> statuses,
                         std::size_t batch_size = 4096);

/// Write `dataset` as an ASL2 columnar binary log, batching `batch_size`
/// records per frame. Column blocks are copied straight out of the SoA
/// columns. Throws std::runtime_error on IO failure.
void write_binlog(std::ostream& out, const Dataset& dataset, std::size_t batch_size = 4096);
void write_binlog_file(const std::string& path, const Dataset& dataset,
                       std::size_t batch_size = 4096);

/// Write the legacy ASL1 row format (delta/varint batches).
void write_binlog_v1(std::ostream& out, const Dataset& dataset, std::size_t batch_size = 4096);

/// Read a binary log (either magic). Throws std::runtime_error on bad
/// magic, CRC mismatch, or truncation (these formats are checksummed;
/// errors are never silent). The buffer form parses a mapped or in-memory
/// image in place; the stream form slurps first; the file form
/// memory-maps. Output is identical for every `options.threads` value.
Dataset read_binlog_buffer(std::span<const std::uint8_t> data,
                           const IngestOptions& options = {});
Dataset read_binlog(std::istream& in, const IngestOptions& options = {});
Dataset read_binlog_file(const std::string& path, const IngestOptions& options = {});

}  // namespace autosens::telemetry
