// Single-pass per-user aggregation. The paper's conditioning analysis (§3.4)
// needs every user's median latency; at production volume (billions of rows)
// that must be streamed, not materialized. UserAccumulator keeps O(1) state
// per user (count, Welford moments, P² median) and can be merged across
// shards, so a fleet of collectors can each aggregate locally.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/descriptive.h"
#include "stats/streaming_quantile.h"
#include "telemetry/record.h"

namespace autosens::telemetry {

class Dataset;

/// Streaming summary of one user's latency experience.
struct UserSummary {
  std::uint64_t user_id = 0;
  std::size_t actions = 0;
  double median_latency_ms = 0.0;  ///< P² estimate (exact below 5 samples).
  double mean_latency_ms = 0.0;
  double stddev_latency_ms = 0.0;
  UserClass user_class = UserClass::kConsumer;
};

class UserAccumulator {
 public:
  /// Consume one record (order-independent; no buffering).
  void add(const ActionRecord& record);

  /// Consume a whole dataset, reading the user-id / latency / class columns
  /// directly — equivalent to add() on every record, without materializing
  /// ActionRecords.
  void add_all(const Dataset& dataset);

  std::size_t user_count() const noexcept { return users_.size(); }

  /// Snapshot of all user summaries (unspecified order).
  std::vector<UserSummary> summaries() const;

  /// Per-user median latencies, the input to quartile conditioning.
  std::unordered_map<std::uint64_t, double> median_latency() const;

 private:
  struct State {
    stats::P2Median median;
    stats::RunningStats moments;
    UserClass user_class = UserClass::kConsumer;
  };
  std::unordered_map<std::uint64_t, State> users_;
};

}  // namespace autosens::telemetry
