#include "telemetry/dataset.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "stats/descriptive.h"
#include "stats/sampling.h"
#include "stats/scratch.h"

namespace autosens::telemetry {

/// Memoized full-window Voronoi weights (see voronoi_weights_cached). The
/// cache is per-dataset state, not shared between copies.
struct Dataset::VoronoiCache {
  std::mutex mutex;
  bool valid = false;
  std::int64_t begin_ms = 0;
  std::int64_t end_ms = 0;
  std::vector<double> weights;
};

// Invariant: voronoi_ is always allocated (so the cache's lazy fill can be
// guarded by its own mutex without racing on the pointer itself). Moved-from
// datasets get a fresh empty cache.
Dataset::Dataset() : voronoi_(std::make_unique<VoronoiCache>()) {}
Dataset::~Dataset() = default;

Dataset::Dataset(std::vector<ActionRecord> records) : Dataset() {
  reserve(records.size());
  for (const auto& r : records) add(r);
}

Dataset::Dataset(const Dataset& other)
    : time_ms_(other.time_ms_),
      latency_ms_(other.latency_ms_),
      user_id_(other.user_id_),
      action_(other.action_),
      user_class_(other.user_class_),
      status_(other.status_),
      sorted_(other.sorted_),
      voronoi_(std::make_unique<VoronoiCache>()) {}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this != &other) {
    time_ms_ = other.time_ms_;
    latency_ms_ = other.latency_ms_;
    user_id_ = other.user_id_;
    action_ = other.action_;
    user_class_ = other.user_class_;
    status_ = other.status_;
    sorted_ = other.sorted_;
    invalidate_cache();
  }
  return *this;
}

Dataset::Dataset(Dataset&& other) noexcept
    : time_ms_(std::move(other.time_ms_)),
      latency_ms_(std::move(other.latency_ms_)),
      user_id_(std::move(other.user_id_)),
      action_(std::move(other.action_)),
      user_class_(std::move(other.user_class_)),
      status_(std::move(other.status_)),
      sorted_(other.sorted_),
      voronoi_(std::move(other.voronoi_)) {
  other.sorted_ = true;
  other.voronoi_ = std::make_unique<VoronoiCache>();
}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this != &other) {
    time_ms_ = std::move(other.time_ms_);
    latency_ms_ = std::move(other.latency_ms_);
    user_id_ = std::move(other.user_id_);
    action_ = std::move(other.action_);
    user_class_ = std::move(other.user_class_);
    status_ = std::move(other.status_);
    sorted_ = other.sorted_;
    voronoi_ = std::move(other.voronoi_);
    other.sorted_ = true;
    other.voronoi_ = std::make_unique<VoronoiCache>();
  }
  return *this;
}

void Dataset::reserve(std::size_t capacity) {
  time_ms_.reserve(capacity);
  latency_ms_.reserve(capacity);
  user_id_.reserve(capacity);
  action_.reserve(capacity);
  user_class_.reserve(capacity);
  status_.reserve(capacity);
}

void Dataset::add(ActionRecord record) {
  if (sorted_ && !time_ms_.empty() && record.time_ms < time_ms_.back()) {
    sorted_ = false;
  }
  time_ms_.push_back(record.time_ms);
  latency_ms_.push_back(record.latency_ms);
  user_id_.push_back(record.user_id);
  action_.push_back(record.action);
  user_class_.push_back(record.user_class);
  status_.push_back(record.status);
  invalidate_cache();
}

void Dataset::append_from(const Dataset& source, std::size_t i) {
  if (sorted_ && !time_ms_.empty() && source.time_ms_[i] < time_ms_.back()) {
    sorted_ = false;
  }
  time_ms_.push_back(source.time_ms_[i]);
  latency_ms_.push_back(source.latency_ms_[i]);
  user_id_.push_back(source.user_id_[i]);
  action_.push_back(source.action_[i]);
  user_class_.push_back(source.user_class_[i]);
  status_.push_back(source.status_[i]);
  invalidate_cache();
}

void Dataset::append_columns(std::span<const std::int64_t> times,
                             std::span<const double> latencies,
                             std::span<const std::uint64_t> user_ids,
                             std::span<const ActionType> actions,
                             std::span<const UserClass> user_classes,
                             std::span<const ActionStatus> statuses) {
  const std::size_t n = times.size();
  if (latencies.size() != n || user_ids.size() != n || actions.size() != n ||
      user_classes.size() != n || statuses.size() != n) {
    throw std::invalid_argument("Dataset::append_columns: column length mismatch");
  }
  if (n == 0) return;
  if (sorted_) {
    if (!time_ms_.empty() && times.front() < time_ms_.back()) {
      sorted_ = false;
    } else if (!std::is_sorted(times.begin(), times.end())) {
      sorted_ = false;
    }
  }
  time_ms_.insert(time_ms_.end(), times.begin(), times.end());
  latency_ms_.insert(latency_ms_.end(), latencies.begin(), latencies.end());
  user_id_.insert(user_id_.end(), user_ids.begin(), user_ids.end());
  action_.insert(action_.end(), actions.begin(), actions.end());
  user_class_.insert(user_class_.end(), user_classes.begin(), user_classes.end());
  status_.insert(status_.end(), statuses.begin(), statuses.end());
  invalidate_cache();
}

void Dataset::adopt_columns(std::vector<std::int64_t> times, std::vector<double> latencies,
                            std::vector<std::uint64_t> user_ids,
                            std::vector<ActionType> actions,
                            std::vector<UserClass> user_classes,
                            std::vector<ActionStatus> statuses) {
  const std::size_t n = times.size();
  if (latencies.size() != n || user_ids.size() != n || actions.size() != n ||
      user_classes.size() != n || statuses.size() != n) {
    throw std::invalid_argument("Dataset::adopt_columns: column length mismatch");
  }
  time_ms_ = std::move(times);
  latency_ms_ = std::move(latencies);
  user_id_ = std::move(user_ids);
  action_ = std::move(actions);
  user_class_ = std::move(user_classes);
  status_ = std::move(statuses);
  sorted_ = std::is_sorted(time_ms_.begin(), time_ms_.end());
  invalidate_cache();
}

std::vector<ActionRecord> Dataset::records() const {
  std::vector<ActionRecord> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back((*this)[i]);
  return out;
}

namespace {

/// out[i] = column[perm[i]], through a pooled scratch buffer.
template <typename T>
void apply_permutation(std::vector<T>& column, std::span<const std::uint64_t> perm) {
  std::vector<T> scratch = stats::ScratchPool<T>::take();
  scratch.resize(column.size());
  for (std::size_t i = 0; i < column.size(); ++i) {
    scratch[i] = column[static_cast<std::size_t>(perm[i])];
  }
  column.swap(scratch);
  stats::ScratchPool<T>::give(std::move(scratch));
}

}  // namespace

void Dataset::sort_by_time() {
  if (sorted_) return;
  // Permutation sort: order indices by time, then gather every column once.
  // Moves 8-byte indices through the comparator instead of 48-byte records.
  std::vector<std::uint64_t> perm = stats::ScratchPool<std::uint64_t>::take();
  perm.resize(size());
  std::iota(perm.begin(), perm.end(), std::uint64_t{0});
  std::stable_sort(perm.begin(), perm.end(), [this](std::uint64_t a, std::uint64_t b) {
    return time_ms_[static_cast<std::size_t>(a)] < time_ms_[static_cast<std::size_t>(b)];
  });
  apply_permutation(time_ms_, perm);
  apply_permutation(latency_ms_, perm);
  apply_permutation(user_id_, perm);
  apply_permutation(action_, perm);
  apply_permutation(user_class_, perm);
  apply_permutation(status_, perm);
  stats::ScratchPool<std::uint64_t>::give(std::move(perm));
  sorted_ = true;
  invalidate_cache();
}

std::int64_t Dataset::begin_time() const {
  if (time_ms_.empty()) throw std::runtime_error("Dataset::begin_time: empty dataset");
  if (!sorted_) throw std::runtime_error("Dataset::begin_time: dataset not sorted");
  return time_ms_.front();
}

std::int64_t Dataset::end_time() const {
  if (time_ms_.empty()) throw std::runtime_error("Dataset::end_time: empty dataset");
  if (!sorted_) throw std::runtime_error("Dataset::end_time: dataset not sorted");
  return time_ms_.back() + 1;
}

std::unordered_map<std::uint64_t, double> Dataset::per_user_median_latency() const {
  std::unordered_map<std::uint64_t, std::vector<double>> per_user;
  for (std::size_t i = 0; i < size(); ++i) {
    per_user[user_id_[i]].push_back(latency_ms_[i]);
  }
  std::unordered_map<std::uint64_t, double> medians;
  medians.reserve(per_user.size());
  for (auto& [user, latencies] : per_user) {
    medians.emplace(user, stats::median(latencies));
  }
  return medians;
}

std::span<const double> Dataset::voronoi_weights_cached(std::int64_t begin_ms,
                                                        std::int64_t end_ms,
                                                        std::size_t threads) const {
  if (!voronoi_) voronoi_ = std::make_unique<VoronoiCache>();
  std::lock_guard<std::mutex> lock(voronoi_->mutex);
  if (!voronoi_->valid || voronoi_->begin_ms != begin_ms || voronoi_->end_ms != end_ms) {
    voronoi_->weights = stats::voronoi_weights(time_ms_, begin_ms, end_ms, threads);
    voronoi_->begin_ms = begin_ms;
    voronoi_->end_ms = end_ms;
    voronoi_->valid = true;
  }
  return voronoi_->weights;
}

void Dataset::invalidate_cache() noexcept {
  if (voronoi_) voronoi_->valid = false;
}

}  // namespace autosens::telemetry
