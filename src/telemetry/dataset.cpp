#include "telemetry/dataset.h"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.h"

namespace autosens::telemetry {

Dataset::Dataset(std::vector<ActionRecord> records) : records_(std::move(records)) {
  sorted_ = std::is_sorted(records_.begin(), records_.end(),
                           [](const ActionRecord& a, const ActionRecord& b) {
                             return a.time_ms < b.time_ms;
                           });
}

void Dataset::add(ActionRecord record) {
  if (sorted_ && !records_.empty() && record.time_ms < records_.back().time_ms) {
    sorted_ = false;
  }
  records_.push_back(record);
}

void Dataset::sort_by_time() {
  if (sorted_) return;
  std::stable_sort(records_.begin(), records_.end(),
                   [](const ActionRecord& a, const ActionRecord& b) {
                     return a.time_ms < b.time_ms;
                   });
  sorted_ = true;
}

std::int64_t Dataset::begin_time() const {
  if (records_.empty()) throw std::runtime_error("Dataset::begin_time: empty dataset");
  if (!sorted_) throw std::runtime_error("Dataset::begin_time: dataset not sorted");
  return records_.front().time_ms;
}

std::int64_t Dataset::end_time() const {
  if (records_.empty()) throw std::runtime_error("Dataset::end_time: empty dataset");
  if (!sorted_) throw std::runtime_error("Dataset::end_time: dataset not sorted");
  return records_.back().time_ms + 1;
}

std::vector<std::int64_t> Dataset::times() const {
  std::vector<std::int64_t> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.time_ms);
  return out;
}

std::vector<double> Dataset::latencies() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.latency_ms);
  return out;
}

Dataset Dataset::filtered(const std::function<bool(const ActionRecord&)>& predicate) const {
  std::vector<ActionRecord> kept;
  for (const auto& r : records_) {
    if (predicate(r)) kept.push_back(r);
  }
  return Dataset(std::move(kept));
}

std::unordered_map<std::uint64_t, double> Dataset::per_user_median_latency() const {
  std::unordered_map<std::uint64_t, std::vector<double>> per_user;
  for (const auto& r : records_) per_user[r.user_id].push_back(r.latency_ms);
  std::unordered_map<std::uint64_t, double> medians;
  medians.reserve(per_user.size());
  for (auto& [user, latencies] : per_user) {
    medians.emplace(user, stats::median(latencies));
  }
  return medians;
}

}  // namespace autosens::telemetry
