#include "telemetry/clock.h"

namespace autosens::telemetry {
namespace {

std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t floor_mod(std::int64_t a, std::int64_t b) noexcept {
  return a - floor_div(a, b) * b;
}

}  // namespace

int hour_of_day(std::int64_t time_ms) noexcept {
  return static_cast<int>(floor_mod(time_ms, kMillisPerDay) / kMillisPerHour);
}

std::int64_t day_index(std::int64_t time_ms) noexcept {
  return floor_div(time_ms, kMillisPerDay);
}

int day_of_week(std::int64_t time_ms) noexcept {
  return static_cast<int>(floor_mod(day_index(time_ms), 7));
}

std::int64_t hour_slot(std::int64_t time_ms) noexcept {
  return floor_div(time_ms, kMillisPerHour);
}

DayPeriod day_period(std::int64_t time_ms) noexcept {
  const int hour = hour_of_day(time_ms);
  if (hour >= 8 && hour < 14) return DayPeriod::kMorning;
  if (hour >= 14 && hour < 20) return DayPeriod::kAfternoon;
  if (hour >= 20 || hour < 2) return DayPeriod::kEvening;
  return DayPeriod::kNight;
}

std::string_view to_string(DayPeriod period) noexcept {
  switch (period) {
    case DayPeriod::kMorning: return "8am-2pm";
    case DayPeriod::kAfternoon: return "2pm-8pm";
    case DayPeriod::kEvening: return "8pm-2am";
    case DayPeriod::kNight: return "2am-8am";
  }
  return "8am-2pm";
}

std::int64_t month_index(std::int64_t time_ms) noexcept {
  return floor_div(day_index(time_ms), 30);
}

}  // namespace autosens::telemetry
