// The telemetry data model: one record per user action, mirroring the tuple
// (T, A, L, M) of the paper (§2.1) plus the fields the OWA logs carry (§3.1):
// timestamp, action type, client-measured latency, anonymized user id, user
// class (business/consumer), and a success/error status.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace autosens::telemetry {

/// User action types studied in the paper (§3.2). `kOther` covers any action
/// the analysis does not slice on.
enum class ActionType : std::uint8_t {
  kSelectMail = 0,   ///< Click and open an email item.
  kSwitchFolder = 1, ///< Click and switch mail folder.
  kSearch = 2,       ///< Search over mailbox content.
  kComposeSend = 3,  ///< Click to send an email (asynchronous in the UI).
  kOther = 4,
};

inline constexpr int kActionTypeCount = 5;

/// Subscription class of the acting user (§3.3).
enum class UserClass : std::uint8_t {
  kBusiness = 0,  ///< Paying commercial subscription.
  kConsumer = 1,  ///< Free tier.
};

inline constexpr int kUserClassCount = 2;

/// Outcome of the action. The paper analyzes successful actions only.
enum class ActionStatus : std::uint8_t {
  kSuccess = 0,
  kError = 1,
};

std::string_view to_string(ActionType type) noexcept;
std::string_view to_string(UserClass user_class) noexcept;
std::string_view to_string(ActionStatus status) noexcept;

/// Parse helpers; std::nullopt on unknown names.
std::optional<ActionType> parse_action_type(std::string_view name) noexcept;
std::optional<UserClass> parse_user_class(std::string_view name) noexcept;
std::optional<ActionStatus> parse_action_status(std::string_view name) noexcept;

/// One logged user action.
struct ActionRecord {
  std::int64_t time_ms = 0;       ///< Action start, epoch milliseconds (UTC).
  std::uint64_t user_id = 0;      ///< Anonymized user identifier.
  double latency_ms = 0.0;        ///< Client-measured end-to-end latency.
  ActionType action = ActionType::kOther;
  UserClass user_class = UserClass::kConsumer;
  ActionStatus status = ActionStatus::kSuccess;

  friend bool operator==(const ActionRecord&, const ActionRecord&) = default;
};

}  // namespace autosens::telemetry
