#include "telemetry/logdir.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>

#include "telemetry/binlog.h"

namespace autosens::telemetry {

std::string shard_name(std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof name, "autosens-%05zu.bin", index);
  return name;
}

std::vector<std::string> write_sharded(const std::string& directory, const Dataset& dataset,
                                       std::size_t records_per_shard) {
  if (records_per_shard == 0) {
    throw std::invalid_argument("write_sharded: records_per_shard must be nonzero");
  }
  std::filesystem::create_directories(directory);
  std::vector<std::string> paths;
  std::size_t shard = 0;
  for (std::size_t start = 0; start < dataset.size() || shard == 0;
       start += records_per_shard, ++shard) {
    const std::size_t count = std::min(records_per_shard, dataset.size() - start);
    Dataset chunk;
    chunk.reserve(count);
    for (std::size_t i = 0; i < count; ++i) chunk.append_from(dataset, start + i);
    const auto path = (std::filesystem::path(directory) / shard_name(shard)).string();
    write_binlog_file(path, chunk);
    paths.push_back(path);
    if (dataset.empty()) break;  // wrote one empty shard as a marker
  }
  return paths;
}

Dataset read_sharded(const std::string& directory) {
  if (!std::filesystem::is_directory(directory)) {
    throw std::runtime_error("read_sharded: not a directory: " + directory);
  }
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".bin") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  Dataset merged;
  for (const auto& path : paths) {
    const auto shard = read_binlog_file(path);
    merged.reserve(merged.size() + shard.size());
    for (std::size_t i = 0; i < shard.size(); ++i) merged.append_from(shard, i);
  }
  merged.sort_by_time();
  return merged;
}

}  // namespace autosens::telemetry
