#include "telemetry/logdir.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "core/parallel.h"
#include "obs/trace.h"
#include "telemetry/binlog.h"

namespace autosens::telemetry {

std::string shard_name(std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof name, "autosens-%05zu.bin", index);
  return name;
}

std::vector<std::string> write_sharded(const std::string& directory, const Dataset& dataset,
                                       std::size_t records_per_shard) {
  if (records_per_shard == 0) {
    throw std::invalid_argument("write_sharded: records_per_shard must be nonzero");
  }
  std::filesystem::create_directories(directory);
  std::vector<std::string> paths;
  std::size_t shard = 0;
  for (std::size_t start = 0; start < dataset.size() || shard == 0;
       start += records_per_shard, ++shard) {
    const std::size_t count = std::min(records_per_shard, dataset.size() - start);
    Dataset chunk;
    chunk.append_columns(dataset.times().subspan(start, count),
                         dataset.latencies().subspan(start, count),
                         dataset.user_ids().subspan(start, count),
                         dataset.actions().subspan(start, count),
                         dataset.user_classes().subspan(start, count),
                         dataset.statuses().subspan(start, count));
    const auto path = (std::filesystem::path(directory) / shard_name(shard)).string();
    write_binlog_file(path, chunk);
    paths.push_back(path);
    if (dataset.empty()) break;  // wrote one empty shard as a marker
  }
  return paths;
}

Dataset read_sharded(const std::string& directory, const IngestOptions& options) {
  if (!std::filesystem::is_directory(directory)) {
    throw std::runtime_error("read_sharded: not a directory: " + directory);
  }
  obs::Span span("ingest_logdir");
  span.attr("path", directory);
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".bin") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  const auto start = std::chrono::steady_clock::now();
  // One worker per shard; each shard decodes through the binlog zero-copy
  // path (its nested parallel region runs inline inside the worker). Shard
  // results and the merge order depend only on the sorted path list.
  std::vector<Dataset> shards(paths.size());
  std::vector<std::size_t> shard_bytes(paths.size(), 0);
  core::parallel_for_items(paths.size(), options.threads, [&](std::size_t i) {
    const MappedFile input = MappedFile::map(paths[i]);
    shard_bytes[i] = input.size();
    shards[i] = read_binlog_buffer(input.bytes(), options);
  });

  Dataset merged;
  for (const auto& shard : shards) {
    merged.append_columns(shard.times(), shard.latencies(), shard.user_ids(), shard.actions(),
                          shard.user_classes(), shard.statuses());
  }
  merged.sort_by_time();

  std::size_t total_bytes = 0;
  for (const std::size_t b : shard_bytes) total_bytes += b;
  const IngestStats stats{
      .bytes = total_bytes,
      .records = merged.size(),
      .errors = 0,
      .seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count(),
      .mapped = true};
  note_ingest("logdir", stats);
  span.attr("shards", static_cast<std::int64_t>(paths.size()));
  span.attr("records", static_cast<std::int64_t>(stats.records));
  span.attr("bytes", static_cast<std::int64_t>(stats.bytes));
  return merged;
}

}  // namespace autosens::telemetry
