#include "telemetry/user_stats.h"

namespace autosens::telemetry {

void UserAccumulator::add(const ActionRecord& record) {
  auto& state = users_[record.user_id];
  state.median.add(record.latency_ms);
  state.moments.add(record.latency_ms);
  state.user_class = record.user_class;
}

std::vector<UserSummary> UserAccumulator::summaries() const {
  std::vector<UserSummary> out;
  out.reserve(users_.size());
  for (const auto& [user_id, state] : users_) {
    out.push_back({.user_id = user_id,
                   .actions = state.moments.count(),
                   .median_latency_ms = state.median.value(),
                   .mean_latency_ms = state.moments.mean(),
                   .stddev_latency_ms = state.moments.stddev(),
                   .user_class = state.user_class});
  }
  return out;
}

std::unordered_map<std::uint64_t, double> UserAccumulator::median_latency() const {
  std::unordered_map<std::uint64_t, double> out;
  out.reserve(users_.size());
  for (const auto& [user_id, state] : users_) {
    out.emplace(user_id, state.median.value());
  }
  return out;
}

}  // namespace autosens::telemetry
