#include "telemetry/user_stats.h"

#include "telemetry/dataset.h"

namespace autosens::telemetry {

void UserAccumulator::add(const ActionRecord& record) {
  auto& state = users_[record.user_id];
  state.median.add(record.latency_ms);
  state.moments.add(record.latency_ms);
  state.user_class = record.user_class;
}

void UserAccumulator::add_all(const Dataset& dataset) {
  const auto user_ids = dataset.user_ids();
  const auto latencies = dataset.latencies();
  const auto user_classes = dataset.user_classes();
  for (std::size_t i = 0; i < user_ids.size(); ++i) {
    auto& state = users_[user_ids[i]];
    state.median.add(latencies[i]);
    state.moments.add(latencies[i]);
    state.user_class = user_classes[i];
  }
}

std::vector<UserSummary> UserAccumulator::summaries() const {
  std::vector<UserSummary> out;
  out.reserve(users_.size());
  for (const auto& [user_id, state] : users_) {
    out.push_back({.user_id = user_id,
                   .actions = state.moments.count(),
                   .median_latency_ms = state.median.value(),
                   .mean_latency_ms = state.moments.mean(),
                   .stddev_latency_ms = state.moments.stddev(),
                   .user_class = state.user_class});
  }
  return out;
}

std::unordered_map<std::uint64_t, double> UserAccumulator::median_latency() const {
  std::unordered_map<std::uint64_t, double> out;
  out.reserve(users_.size());
  for (const auto& [user_id, state] : users_) {
    out.emplace(user_id, state.median.value());
  }
  return out;
}

}  // namespace autosens::telemetry
