#include "telemetry/csv.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace autosens::telemetry {
namespace {

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

template <typename T>
bool parse_number(std::string_view text, T& out) {
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

void write_csv(std::ostream& out, const Dataset& dataset) {
  out << kCsvHeader << '\n';
  for (const auto& r : dataset.records()) {
    out << r.time_ms << ',' << r.user_id << ',' << to_string(r.action) << ','
        << r.latency_ms << ',' << to_string(r.user_class) << ',' << to_string(r.status)
        << '\n';
  }
}

void write_csv_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(out, dataset);
  if (!out) throw std::runtime_error("write_csv_file: write failed for " + path);
}

CsvReadResult read_csv(std::istream& in) {
  CsvReadResult result;
  std::string line;
  std::size_t line_number = 0;

  if (!std::getline(in, line)) {
    throw std::runtime_error("read_csv: empty input (missing header)");
  }
  ++line_number;
  if (trim(line) != kCsvHeader) {
    throw std::runtime_error("read_csv: unexpected header: " + line);
  }

  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto fields = split_fields(trimmed);
    if (fields.size() != 6) {
      result.errors.push_back({line_number, "expected 6 fields, got " +
                                                std::to_string(fields.size())});
      continue;
    }
    ActionRecord record;
    if (!parse_number(trim(fields[0]), record.time_ms)) {
      result.errors.push_back({line_number, "bad time_ms"});
      continue;
    }
    if (!parse_number(trim(fields[1]), record.user_id)) {
      result.errors.push_back({line_number, "bad user_id"});
      continue;
    }
    const auto action = parse_action_type(trim(fields[2]));
    if (!action) {
      result.errors.push_back({line_number, "unknown action type"});
      continue;
    }
    record.action = *action;
    if (!parse_number(trim(fields[3]), record.latency_ms)) {
      result.errors.push_back({line_number, "bad latency_ms"});
      continue;
    }
    const auto user_class = parse_user_class(trim(fields[4]));
    if (!user_class) {
      result.errors.push_back({line_number, "unknown user class"});
      continue;
    }
    record.user_class = *user_class;
    const auto status = parse_action_status(trim(fields[5]));
    if (!status) {
      result.errors.push_back({line_number, "unknown status"});
      continue;
    }
    record.status = *status;
    result.dataset.add(record);
  }
  result.dataset.sort_by_time();
  return result;
}

CsvReadResult read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(in);
}

}  // namespace autosens::telemetry
