#include "telemetry/csv.h"

#include <charconv>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <type_traits>

#include "obs/trace.h"

namespace autosens::telemetry {
namespace {

template <typename T>
bool parse_number(std::string_view text, T& out) {
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parse six already-split fields into `record`. Fields arrive untrimmed;
/// each is trimmed here, which makes the whole-line trim in the callers
/// redundant for values while keeping their field-count semantics aligned
/// (whitespace holds no commas, so counts agree either way).
LineParse parse_csv_fields(const std::string_view fields[6], ActionRecord& record,
                           std::string& error) {
  if (!parse_number(trim(fields[0]), record.time_ms)) {
    error = "bad time_ms";
    return LineParse::kError;
  }
  if (!parse_number(trim(fields[1]), record.user_id)) {
    error = "bad user_id";
    return LineParse::kError;
  }
  const auto action = parse_action_type(trim(fields[2]));
  if (!action) {
    error = "unknown action type";
    return LineParse::kError;
  }
  record.action = *action;
  if (!detail::parse_double(trim(fields[3]), record.latency_ms)) {
    error = "bad latency_ms";
    return LineParse::kError;
  }
  const auto user_class = parse_user_class(trim(fields[4]));
  if (!user_class) {
    error = "unknown user class";
    return LineParse::kError;
  }
  record.user_class = *user_class;
  const auto status = parse_action_status(trim(fields[5]));
  if (!status) {
    error = "unknown status";
    return LineParse::kError;
  }
  record.status = *status;
  return LineParse::kRecord;
}

/// Per-line parser for the getline entry point (and the reference the
/// parity tests hold the fused chunk parser to).
LineParse parse_csv_line(std::string_view line, ActionRecord& record, std::string& error) {
  const std::string_view trimmed = trim(line);
  if (trimmed.empty()) return LineParse::kSkip;

  std::string_view fields[6];
  std::size_t field_count = 0;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = trimmed.find(',', start);
    const std::string_view field = comma == std::string_view::npos
                                       ? trimmed.substr(start)
                                       : trimmed.substr(start, comma - start);
    if (field_count < 6) fields[field_count] = field;
    ++field_count;
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (field_count != 6) {
    error = "expected 6 fields, got " + std::to_string(field_count);
    return LineParse::kError;
  }
  return parse_csv_fields(fields, record, error);
}

/// Writer-order fast path: the overwhelmingly common line is exactly what
/// write_csv emits — six fields, no padding whitespace, no CR. from_chars
/// doubles as the digit scan for the numeric fields (it stops on the comma
/// we then require), so only the enum fields need a manual scan. On success
/// `p` is advanced past the line's '\n'; ANY deviation — spaces, CRLF,
/// wrong field count, malformed value — returns false with `p` untouched
/// and the caller re-parses the line with the general splitter, so accepted
/// records and error messages are identical to the reference parser by
/// construction (a property the parity tests check against the scalar
/// oracle).
bool parse_csv_fast(const char*& p, const char* const end, ActionRecord& record) {
  const char* q = p;
  // Inline digit loop instead of from_chars: ≤18 digits cannot overflow a
  // 64-bit value, so the result matches from_chars exactly; anything longer
  // (or otherwise unusual) bails to the general path where from_chars rules
  // on overflow.
  const auto integer = [&q, end](auto& out) {
    using T = std::remove_reference_t<decltype(out)>;
    const char* s = q;
    bool negative = false;
    if constexpr (std::is_signed_v<T>) {
      if (s != end && *s == '-') {
        negative = true;
        ++s;
      }
    }
    std::uint64_t value = 0;
    const char* digits = s;
    while (s != end && *s >= '0' && *s <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(*s - '0');
      ++s;
    }
    if (s == digits || s - digits > 18 || s == end || *s != ',') return false;
    out = negative ? static_cast<T>(-static_cast<std::int64_t>(value)) : static_cast<T>(value);
    q = s + 1;
    return true;
  };
  // Scan a field up to the next comma; '\n' or end-of-chunk means the line
  // has too few fields for this position, so bail to the general splitter.
  const auto field_comma = [&q, end]() -> std::string_view {
    const char* start = q;
    while (q != end && *q != ',' && *q != '\n') ++q;
    if (q == end || *q != ',') return {};
    return {start, static_cast<std::size_t>(q++ - start)};
  };

  if (!integer(record.time_ms)) return false;
  if (!integer(record.user_id)) return false;
  const auto action = parse_action_type(field_comma());
  if (!action) return false;
  record.action = *action;
  const char* latency_start = q;
  while (q != end && *q != ',' && *q != '\n') ++q;
  if (q == end || *q != ',') return false;
  if (!detail::parse_double({latency_start, static_cast<std::size_t>(q - latency_start)},
                            record.latency_ms)) {
    return false;
  }
  ++q;
  const auto user_class = parse_user_class(field_comma());
  if (!user_class) return false;
  record.user_class = *user_class;
  // Final field runs to '\n' or end of chunk; a comma here means >6 fields.
  const char* status_start = q;
  while (q != end && *q != ',' && *q != '\n') ++q;
  if (q != end && *q == ',') return false;
  const auto status =
      parse_action_status({status_start, static_cast<std::size_t>(q - status_start)});
  if (!status) return false;
  record.status = *status;
  if (q != end) ++q;  // consume the '\n'
  p = q;
  return true;
}

/// Fused chunk parser: one pass over the bytes classifies ',' and '\n'
/// together, so there is no separate memchr('\n') sweep per line. A line is
/// blank exactly when it holds a single all-whitespace field (whitespace
/// never contains a comma), matching parse_csv_line's trim-then-skip rule.
void parse_csv_chunk(std::string_view chunk, detail::ColumnShard& shard) {
  shard.reserve(chunk.size() / 40 + 1);
  const char* p = chunk.data();
  const char* const end = p + chunk.size();
  ActionRecord record;
  std::string error;
  while (p != end) {
    ++shard.lines;
    if (parse_csv_fast(p, end, record)) {
      shard.push(record);
      continue;
    }
    std::string_view fields[6];
    std::size_t field_count = 0;
    const char* field_start = p;
    for (; p != end; ++p) {
      const char c = *p;
      if (c == ',') {
        if (field_count < 6) {
          fields[field_count] = {field_start, static_cast<std::size_t>(p - field_start)};
        }
        ++field_count;
        field_start = p + 1;
      } else if (c == '\n') {
        break;
      }
    }
    if (field_count < 6) {
      fields[field_count] = {field_start, static_cast<std::size_t>(p - field_start)};
    }
    ++field_count;
    if (p != end) ++p;  // consume the '\n'
    if (field_count == 1 && trim(fields[0]).empty()) continue;  // blank line
    if (field_count != 6) {
      shard.errors.push_back(
          {shard.lines, "expected 6 fields, got " + std::to_string(field_count)});
      continue;
    }
    switch (parse_csv_fields(fields, record, error)) {
      case LineParse::kRecord:
        shard.push(record);
        break;
      case LineParse::kSkip:
        break;
      case LineParse::kError:
        shard.errors.push_back({shard.lines, std::move(error)});
        error.clear();
        break;
    }
  }
}

}  // namespace

void write_csv(std::ostream& out, const Dataset& dataset) {
  out << kCsvHeader << '\n';
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const ActionRecord r = dataset[i];
    out << r.time_ms << ',' << r.user_id << ',' << to_string(r.action) << ','
        << r.latency_ms << ',' << to_string(r.user_class) << ',' << to_string(r.status)
        << '\n';
  }
}

void write_csv_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(out, dataset);
  if (!out) throw std::runtime_error("write_csv_file: write failed for " + path);
}

CsvReadResult read_csv_buffer(std::string_view text, const IngestOptions& options) {
  text = strip_utf8_bom(text);
  const std::size_t newline = text.find('\n');
  const std::string_view header =
      newline == std::string_view::npos ? text : text.substr(0, newline);
  if (text.empty()) throw std::runtime_error("read_csv: empty input (missing header)");
  if (trim(header) != kCsvHeader) {
    throw std::runtime_error("read_csv: unexpected header: " + std::string(header));
  }
  const std::string_view body =
      newline == std::string_view::npos ? std::string_view{} : text.substr(newline + 1);

  auto ingested = ingest_chunks(body, /*first_line=*/2, options, parse_csv_chunk);
  return CsvReadResult{std::move(ingested.dataset), std::move(ingested.errors)};
}

CsvReadResult read_csv(std::istream& in, const IngestOptions& options) {
  const MappedFile input = MappedFile::read_stream(in);
  return read_csv_buffer(input.text(), options);
}

CsvReadResult read_csv_file(const std::string& path, const IngestOptions& options) {
  obs::Span span("ingest_csv");
  span.attr("path", path);
  const MappedFile input = MappedFile::map(path);
  const auto start = std::chrono::steady_clock::now();
  auto result = read_csv_buffer(input.text(), options);
  IngestStats stats{.bytes = input.size(),
                    .records = result.dataset.size(),
                    .errors = result.errors.size(),
                    .seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start)
                                   .count(),
                    .mapped = input.is_mapped()};
  note_ingest("csv", stats);
  span.attr("records", static_cast<std::int64_t>(stats.records));
  span.attr("bytes", static_cast<std::int64_t>(stats.bytes));
  return result;
}

CsvReadResult read_csv_scalar(std::istream& in) {
  CsvReadResult result;
  std::string line;
  std::size_t line_number = 0;

  if (!std::getline(in, line)) {
    throw std::runtime_error("read_csv: empty input (missing header)");
  }
  ++line_number;
  // Satellite normalization: the scalar path must agree with the chunked
  // path on a UTF-8 BOM before the header.
  if (trim(strip_utf8_bom(line)) != kCsvHeader) {
    throw std::runtime_error("read_csv: unexpected header: " + line);
  }

  while (std::getline(in, line)) {
    ++line_number;
    ActionRecord record;
    std::string error;
    switch (parse_csv_line(line, record, error)) {
      case LineParse::kRecord:
        result.dataset.add(record);
        break;
      case LineParse::kSkip:
        break;
      case LineParse::kError:
        result.errors.push_back({line_number, std::move(error)});
        break;
    }
  }
  result.dataset.sort_by_time();
  return result;
}

}  // namespace autosens::telemetry
