// Civil-time helpers over epoch-millisecond timestamps. AutoSens slices data
// by hour-of-day (1-h α slots, §2.4.1), by 6-hour periods (§3.6), and by
// month (§3.7). All arithmetic here is pure integer math on UTC-like civil
// time — the simulator generates "local time of the user" directly, matching
// the paper's use of local time for time-of-day analyses.
#pragma once

#include <cstdint>
#include <string_view>

namespace autosens::telemetry {

inline constexpr std::int64_t kMillisPerSecond = 1000;
inline constexpr std::int64_t kMillisPerMinute = 60 * kMillisPerSecond;
inline constexpr std::int64_t kMillisPerHour = 60 * kMillisPerMinute;
inline constexpr std::int64_t kMillisPerDay = 24 * kMillisPerHour;

/// Hour of day in [0, 24).
int hour_of_day(std::int64_t time_ms) noexcept;

/// Day index since the epoch (floor division; correct for negative times).
std::int64_t day_index(std::int64_t time_ms) noexcept;

/// Day of week in [0, 7), 0 = Thursday (1970-01-01 was a Thursday).
int day_of_week(std::int64_t time_ms) noexcept;

/// Index of the 1-hour slot since epoch (α-normalization slot id).
std::int64_t hour_slot(std::int64_t time_ms) noexcept;

/// The paper's four 6-hour local periods (§3.6).
enum class DayPeriod : std::uint8_t {
  kMorning = 0,    ///< 8am–2pm (the reference period in Fig 8).
  kAfternoon = 1,  ///< 2pm–8pm.
  kEvening = 2,    ///< 8pm–2am.
  kNight = 3,      ///< 2am–8am.
};

inline constexpr int kDayPeriodCount = 4;

DayPeriod day_period(std::int64_t time_ms) noexcept;
std::string_view to_string(DayPeriod period) noexcept;

/// Month index since epoch assuming 30-day months starting at time 0. The
/// simulator emits "January" as days 0–29 and "February" as days 30–59; this
/// keeps the month split exact without a full civil calendar.
std::int64_t month_index(std::int64_t time_ms) noexcept;

}  // namespace autosens::telemetry
