// Serialization of the ASL3 partition footer and store MANIFEST. Both are
// varint/zigzag streams framed as magic + payload + CRC-32(payload); decode
// throws std::runtime_error on bad magic, CRC mismatch, truncation, or
// trailing bytes — like every other checksummed format in this tree, errors
// are never silent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "telemetry/store/format.h"

namespace autosens::telemetry::store {

std::vector<std::uint8_t> encode_footer(const PartitionFooter& footer);
PartitionFooter decode_footer(std::span<const std::uint8_t> data);

std::vector<std::uint8_t> encode_manifest(std::span<const PartitionInfo> partitions);
std::vector<PartitionInfo> decode_manifest(std::span<const std::uint8_t> data);

}  // namespace autosens::telemetry::store
