#include "telemetry/store/codec.h"

#include <stdexcept>

#include "telemetry/binlog.h"

namespace autosens::telemetry::store::codec {

namespace {

using telemetry::codec::get_varint;
using telemetry::codec::put_varint;
using telemetry::codec::zigzag_decode;
using telemetry::codec::zigzag_encode;

[[noreturn]] void truncated(const char* what) {
  throw std::runtime_error(std::string("store codec: truncated ") + what + " block");
}

void check_consumed(std::span<const std::uint8_t> in, std::size_t offset, const char* what) {
  if (offset != in.size()) {
    throw std::runtime_error(std::string("store codec: trailing bytes in ") + what + " block");
  }
}

}  // namespace

void encode_delta_i64(std::span<const std::int64_t> values, std::vector<std::uint8_t>& out) {
  std::int64_t prev = 0;
  for (const std::int64_t value : values) {
    // First value encodes as a delta from 0 — one uniform loop, and the
    // decoder needs no special case either.
    put_varint(out, zigzag_encode(value - prev));
    prev = value;
  }
}

void decode_delta_i64(std::span<const std::uint8_t> in, std::span<std::int64_t> out) {
  std::size_t offset = 0;
  std::int64_t prev = 0;
  for (std::int64_t& value : out) {
    std::uint64_t encoded = 0;
    if (!get_varint(in, offset, encoded)) truncated("delta-i64");
    prev += zigzag_decode(encoded);
    value = prev;
  }
  check_consumed(in, offset, "delta-i64");
}

void encode_delta_u64(std::span<const std::uint64_t> values, std::vector<std::uint8_t>& out) {
  std::uint64_t prev = 0;
  for (const std::uint64_t value : values) {
    // Wrap-around difference reinterpreted as signed: nearby ids in either
    // direction zigzag to short varints, and any sequence round-trips.
    put_varint(out, zigzag_encode(static_cast<std::int64_t>(value - prev)));
    prev = value;
  }
}

void decode_delta_u64(std::span<const std::uint8_t> in, std::span<std::uint64_t> out) {
  std::size_t offset = 0;
  std::uint64_t prev = 0;
  for (std::uint64_t& value : out) {
    std::uint64_t encoded = 0;
    if (!get_varint(in, offset, encoded)) truncated("delta-u64");
    prev += static_cast<std::uint64_t>(zigzag_decode(encoded));
    value = prev;
  }
  check_consumed(in, offset, "delta-u64");
}

void encode_rle_u8(std::span<const std::uint8_t> values, std::vector<std::uint8_t>& out) {
  std::size_t i = 0;
  while (i < values.size()) {
    const std::uint8_t value = values[i];
    std::size_t run = 1;
    while (i + run < values.size() && values[i + run] == value) ++run;
    out.push_back(value);
    put_varint(out, run);
    i += run;
  }
}

void decode_rle_u8(std::span<const std::uint8_t> in, std::span<std::uint8_t> out) {
  std::size_t offset = 0;
  std::size_t filled = 0;
  while (filled < out.size()) {
    if (offset >= in.size()) truncated("rle");
    const std::uint8_t value = in[offset++];
    std::uint64_t run = 0;
    if (!get_varint(in, offset, run)) truncated("rle");
    if (run == 0 || run > out.size() - filled) {
      throw std::runtime_error("store codec: rle run overflows block");
    }
    for (std::uint64_t k = 0; k < run; ++k) out[filled++] = value;
  }
  check_consumed(in, offset, "rle");
}

}  // namespace autosens::telemetry::store::codec
