#include "telemetry/store/writer.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "telemetry/binlog.h"
#include "telemetry/clock.h"
#include "telemetry/store/codec.h"
#include "telemetry/store/footer.h"

namespace autosens::telemetry::store {
namespace {

struct WriterMetrics {
  obs::Counter& partitions;
  obs::Counter& rows;
  obs::Counter& raw_bytes;
  obs::Counter& stored_bytes;

  WriterMetrics()
      : partitions(obs::registry().counter("autosens_store_partitions_written_total",
                                           "Partitions flushed by StoreWriter")),
        rows(obs::registry().counter("autosens_store_rows_written_total",
                                     "Rows flushed by StoreWriter")),
        raw_bytes(obs::registry().counter("autosens_store_raw_bytes_written_total",
                                          "Logical (uncompressed) bytes flushed")),
        stored_bytes(obs::registry().counter("autosens_store_stored_bytes_written_total",
                                             "On-disk data-region bytes flushed")) {}
};

WriterMetrics& writer_metrics() {
  static WriterMetrics metrics;
  return metrics;
}

void put_u64_le(std::uint8_t* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

/// Append one column's 24-byte "ASC1" header.
void write_column_header(std::ofstream& out, ColumnId id, ColumnCodec codec, std::uint64_t rows,
                         std::uint64_t data_bytes) {
  std::array<std::uint8_t, kColumnHeaderBytes> header{};
  std::memcpy(header.data(), kColumnMagic.data(), 4);
  header[4] = kFormatVersion;
  header[5] = static_cast<std::uint8_t>(id);
  header[6] = static_cast<std::uint8_t>(codec);
  header[7] = 0;
  put_u64_le(header.data() + 8, rows);
  put_u64_le(header.data() + 16, data_bytes);
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
}

/// Encode one column into `data` block-by-block, filling the footer metadata
/// (codec, per-block byte lengths and CRCs, stored size). `encode_block`
/// appends the encoded form of rows [begin, end) to `data`.
template <typename EncodeBlock>
void encode_column(ColumnMeta& meta, ColumnCodec codec, std::size_t rows,
                   std::uint32_t block_rows, std::vector<std::uint8_t>& data,
                   EncodeBlock&& encode_block) {
  meta.codec = codec;
  data.clear();
  const std::size_t blocks = rows == 0 ? 0 : (rows + block_rows - 1) / block_rows;
  meta.block_bytes.resize(blocks);
  meta.block_crcs.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * block_rows;
    const std::size_t end = std::min(rows, begin + static_cast<std::size_t>(block_rows));
    const std::size_t before = data.size();
    encode_block(begin, end);
    meta.block_bytes[b] = data.size() - before;
    meta.block_crcs[b] = telemetry::codec::crc32(
        std::span<const std::uint8_t>(data.data() + before, data.size() - before));
  }
  meta.stored_bytes = data.size();
}

/// Raw codec: the block payload is the column memory itself.
template <typename T>
void encode_raw_column(ColumnMeta& meta, const std::vector<T>& values, std::uint32_t block_rows,
                       std::vector<std::uint8_t>& data) {
  encode_column(meta, ColumnCodec::kRaw, values.size(), block_rows, data,
                [&](std::size_t begin, std::size_t end) {
                  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data() + begin);
                  data.insert(data.end(), p, p + (end - begin) * sizeof(T));
                });
}

template <typename Enum>
void encode_rle_column(ColumnMeta& meta, const std::vector<Enum>& values,
                       std::uint32_t block_rows, std::vector<std::uint8_t>& data) {
  static_assert(sizeof(Enum) == 1);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(values.data());
  encode_column(meta, ColumnCodec::kRle, values.size(), block_rows, data,
                [&](std::size_t begin, std::size_t end) {
                  codec::encode_rle_u8({bytes + begin, end - begin}, data);
                });
}

}  // namespace

StoreWriter::StoreWriter(std::filesystem::path dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.partition_rows == 0 || options_.block_rows == 0) {
    throw std::invalid_argument("StoreWriter: partition_rows and block_rows must be nonzero");
  }
  std::filesystem::create_directories(dir_);
  if (std::filesystem::exists(dir_ / kManifestFileName)) {
    throw std::runtime_error("StoreWriter: " + (dir_ / kManifestFileName).string() +
                             " already exists (stores are write-once)");
  }
}

StoreWriter::~StoreWriter() {
  if (finished_) return;
  try {
    finish();
  } catch (...) {
    // Destructor path: nothing sane to do with the error; call finish()
    // explicitly to observe it.
  }
}

void StoreWriter::append_columns(std::span<const std::int64_t> times,
                                 std::span<const double> latencies,
                                 std::span<const std::uint64_t> user_ids,
                                 std::span<const ActionType> actions,
                                 std::span<const UserClass> user_classes,
                                 std::span<const ActionStatus> statuses) {
  if (finished_) throw std::invalid_argument("StoreWriter: append after finish");
  const std::size_t count = times.size();
  if (latencies.size() != count || user_ids.size() != count || actions.size() != count ||
      user_classes.size() != count || statuses.size() != count) {
    throw std::invalid_argument("StoreWriter: column length mismatch");
  }
  if (count == 0) return;
  // Validate the whole batch before touching the buffers so a failed append
  // leaves the writer unchanged.
  if (times.front() < last_time_) {
    throw std::invalid_argument("StoreWriter: rows must be appended in ascending time order");
  }
  for (std::size_t i = 1; i < count; ++i) {
    if (times[i] < times[i - 1]) {
      throw std::invalid_argument("StoreWriter: rows must be appended in ascending time order");
    }
  }

  std::size_t offset = 0;
  while (offset < count) {
    const std::int64_t day = day_index(times[offset]);
    if (!times_.empty() && day != buffer_day_) flush_partition();
    if (times_.empty()) {
      if (day != buffer_day_) next_shard_ = 0;
      buffer_day_ = day;
    }
    // Rows of this day still in the batch, bounded by the room left in the
    // current shard.
    const std::int64_t day_end_ms = (buffer_day_ + 1) * kMillisPerDay;
    const auto* day_end =
        std::lower_bound(times.data() + offset, times.data() + count, day_end_ms);
    const std::size_t day_rows = static_cast<std::size_t>(day_end - (times.data() + offset));
    const std::size_t room = static_cast<std::size_t>(options_.partition_rows) - times_.size();
    const std::size_t take = std::min(day_rows, room);
    times_.insert(times_.end(), times.begin() + offset, times.begin() + offset + take);
    latencies_.insert(latencies_.end(), latencies.begin() + offset,
                      latencies.begin() + offset + take);
    user_ids_.insert(user_ids_.end(), user_ids.begin() + offset,
                     user_ids.begin() + offset + take);
    actions_.insert(actions_.end(), actions.begin() + offset, actions.begin() + offset + take);
    user_classes_.insert(user_classes_.end(), user_classes.begin() + offset,
                         user_classes.begin() + offset + take);
    statuses_.insert(statuses_.end(), statuses.begin() + offset,
                     statuses.begin() + offset + take);
    offset += take;
    if (times_.size() >= options_.partition_rows) flush_partition();
  }
  last_time_ = times.back();
}

void StoreWriter::append(const Dataset& dataset) {
  if (!dataset.is_sorted()) {
    throw std::invalid_argument("StoreWriter: dataset must be sorted by time");
  }
  append_columns(dataset.times(), dataset.latencies(), dataset.user_ids(), dataset.actions(),
                 dataset.user_classes(), dataset.statuses());
}

void StoreWriter::flush_partition() {
  const std::size_t rows = times_.size();
  if (rows == 0) return;

  PartitionFooter footer;
  footer.rows = rows;
  footer.block_rows = options_.block_rows;
  footer.min_time_ms = times_.front();
  footer.max_time_ms = times_.back();
  for (std::size_t i = 0; i < rows; ++i) {
    footer.slice_rows[static_cast<std::size_t>(actions_[i])]
                     [static_cast<std::size_t>(user_classes_[i])]++;
  }
  const std::size_t blocks = (rows + footer.block_rows - 1) / footer.block_rows;
  footer.blocks.resize(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * footer.block_rows;
    const std::size_t end = std::min(rows, begin + static_cast<std::size_t>(footer.block_rows));
    footer.blocks[b] = {times_[begin], times_[end - 1]};
  }

  char name[64];
  std::snprintf(name, sizeof(name), "day-%06lld.%u", static_cast<long long>(buffer_day_),
                next_shard_);
  const std::filesystem::path partition_dir = dir_ / name;
  std::filesystem::create_directory(partition_dir);

  std::vector<std::uint8_t> data;
  const std::uint32_t block_rows = footer.block_rows;
  for (std::size_t c = 0; c < kColumnCount; ++c) {
    const ColumnId id = static_cast<ColumnId>(c);
    ColumnMeta& meta = footer.columns[c];
    switch (id) {
      case ColumnId::kTime:
        if (options_.compress) {
          encode_column(meta, ColumnCodec::kDeltaVarint, rows, block_rows, data,
                        [&](std::size_t begin, std::size_t end) {
                          codec::encode_delta_i64({times_.data() + begin, end - begin}, data);
                        });
        } else {
          encode_raw_column(meta, times_, block_rows, data);
        }
        break;
      case ColumnId::kLatency:
        // Doubles of IEEE bits don't delta well; keep them raw so the reader
        // can hand out zero-copy spans over the mapping.
        encode_raw_column(meta, latencies_, block_rows, data);
        break;
      case ColumnId::kUserId:
        if (options_.compress) {
          encode_column(meta, ColumnCodec::kDeltaVarint, rows, block_rows, data,
                        [&](std::size_t begin, std::size_t end) {
                          codec::encode_delta_u64({user_ids_.data() + begin, end - begin},
                                                  data);
                        });
        } else {
          encode_raw_column(meta, user_ids_, block_rows, data);
        }
        break;
      case ColumnId::kAction:
        if (options_.compress) {
          encode_rle_column(meta, actions_, block_rows, data);
        } else {
          encode_raw_column(meta, actions_, block_rows, data);
        }
        break;
      case ColumnId::kUserClass:
        if (options_.compress) {
          encode_rle_column(meta, user_classes_, block_rows, data);
        } else {
          encode_raw_column(meta, user_classes_, block_rows, data);
        }
        break;
      case ColumnId::kStatus:
        if (options_.compress) {
          encode_rle_column(meta, statuses_, block_rows, data);
        } else {
          encode_raw_column(meta, statuses_, block_rows, data);
        }
        break;
    }
    const std::filesystem::path path = partition_dir / kColumnFileNames[c];
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("StoreWriter: cannot open " + path.string());
    write_column_header(out, id, meta.codec, rows, meta.stored_bytes);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) throw std::runtime_error("StoreWriter: write failed for " + path.string());
  }

  const std::vector<std::uint8_t> footer_bytes = encode_footer(footer);
  const std::filesystem::path footer_path = partition_dir / kFooterFileName;
  std::ofstream footer_out(footer_path, std::ios::binary | std::ios::trunc);
  footer_out.write(reinterpret_cast<const char*>(footer_bytes.data()),
                   static_cast<std::streamsize>(footer_bytes.size()));
  if (!footer_out) {
    throw std::runtime_error("StoreWriter: write failed for " + footer_path.string());
  }

  manifest_.push_back({name, buffer_day_, next_shard_, footer.rows, footer.min_time_ms,
                       footer.max_time_ms, footer.raw_bytes(), footer.stored_bytes()});
  rows_written_ += rows;
  ++next_shard_;

  WriterMetrics& metrics = writer_metrics();
  metrics.partitions.inc();
  metrics.rows.inc(rows);
  metrics.raw_bytes.inc(footer.raw_bytes());
  metrics.stored_bytes.inc(footer.stored_bytes());

  times_.clear();
  latencies_.clear();
  user_ids_.clear();
  actions_.clear();
  user_classes_.clear();
  statuses_.clear();
}

void StoreWriter::finish() {
  if (finished_) return;
  flush_partition();
  const std::vector<std::uint8_t> manifest_bytes = encode_manifest(manifest_);
  const std::filesystem::path path = dir_ / kManifestFileName;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(manifest_bytes.data()),
            static_cast<std::streamsize>(manifest_bytes.size()));
  if (!out) throw std::runtime_error("StoreWriter: write failed for " + path.string());
  finished_ = true;
}

void build_store(const Dataset& dataset, const std::string& dir, StoreOptions options) {
  StoreWriter writer(dir, options);
  writer.append(dataset);
  writer.finish();
}

namespace {

/// Streaming ASL2 → store conversion. Pass 1 walks every frame reading only
/// the time block (CRC-checking each payload once) to confirm the file is
/// globally sorted; pass 2 decodes the six column blocks of one frame at a
/// time into scratch vectors and appends them, so peak memory is
/// O(frame + partition) regardless of file size. Returns false when the file
/// is not sorted (caller falls back to the full loader).
bool stream_sorted_v2(std::span<const std::uint8_t> data,
                      const std::vector<BinlogFrameView>& frames, StoreWriter& writer) {
  constexpr std::size_t kV2RecordBytes = 8 + 8 + 8 + 3;
  struct FramePlan {
    std::size_t blocks_offset = 0;
    std::size_t count = 0;
  };
  std::vector<FramePlan> plans(frames.size());
  std::vector<std::int64_t> times;
  std::int64_t last_time = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto payload = data.subspan(frames[i].payload_offset, frames[i].payload_len);
    if (telemetry::codec::crc32(payload) != frames[i].crc) {
      throw std::runtime_error("store: binlog crc mismatch");
    }
    std::size_t offset = 0;
    std::uint64_t count = 0;
    if (!telemetry::codec::get_varint(payload, offset, count)) {
      throw std::runtime_error("store: truncated binlog record count");
    }
    const std::size_t block_bytes = payload.size() - offset;
    if (block_bytes % kV2RecordBytes != 0 || count != block_bytes / kV2RecordBytes) {
      throw std::runtime_error("store: binlog frame size does not match record count");
    }
    plans[i] = {offset, static_cast<std::size_t>(count)};
    if (count == 0) continue;
    times.resize(count);
    std::memcpy(times.data(), payload.data() + offset, count * sizeof(std::int64_t));
    if (times.front() < last_time ||
        !std::is_sorted(times.begin(), times.end())) {
      return false;
    }
    last_time = times.back();
  }

  std::vector<double> latencies;
  std::vector<std::uint64_t> user_ids;
  std::vector<ActionType> actions;
  std::vector<UserClass> user_classes;
  std::vector<ActionStatus> statuses;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const FramePlan& plan = plans[i];
    if (plan.count == 0) continue;
    const auto payload = data.subspan(frames[i].payload_offset, frames[i].payload_len);
    const std::uint8_t* p = payload.data() + plan.blocks_offset;
    const std::size_t n = plan.count;
    times.resize(n);
    latencies.resize(n);
    user_ids.resize(n);
    actions.resize(n);
    user_classes.resize(n);
    statuses.resize(n);
    std::memcpy(times.data(), p, n * sizeof(std::int64_t));
    p += n * sizeof(std::int64_t);
    std::memcpy(latencies.data(), p, n * sizeof(double));
    p += n * sizeof(double);
    std::memcpy(user_ids.data(), p, n * sizeof(std::uint64_t));
    p += n * sizeof(std::uint64_t);
    std::uint8_t max_action = 0, max_class = 0, max_status = 0;
    for (std::size_t k = 0; k < n; ++k) {
      max_action = std::max(max_action, p[k]);
      max_class = std::max(max_class, p[n + k]);
      max_status = std::max(max_status, p[2 * n + k]);
    }
    if (max_action >= kActionTypeCount || max_class >= kUserClassCount || max_status > 1) {
      throw std::runtime_error("store: invalid enum value in binlog");
    }
    std::memcpy(actions.data(), p, n);
    std::memcpy(user_classes.data(), p + n, n);
    std::memcpy(statuses.data(), p + 2 * n, n);
    writer.append_columns(times, latencies, user_ids, actions, user_classes, statuses);
  }
  return true;
}

}  // namespace

std::uint64_t build_store_from_binlog(const std::string& binlog_path, const std::string& dir,
                                      StoreOptions options, const IngestOptions& ingest) {
  const MappedFile input = MappedFile::map(binlog_path);
  const auto data = input.bytes();
  const BinlogVersion version = binlog_version(data);
  StoreWriter writer(dir, options);
  bool streamed = false;
  if (version == BinlogVersion::kV2) {
    streamed = stream_sorted_v2(data, walk_binlog_frames(data), writer);
  }
  if (!streamed) {
    // ASL1 or out-of-order ASL2: no streaming path — load, sort, append.
    writer.append(read_binlog_buffer(data, ingest));
  }
  writer.finish();
  return writer.rows_written();
}

}  // namespace autosens::telemetry::store
