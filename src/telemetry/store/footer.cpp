#include "telemetry/store/footer.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "telemetry/binlog.h"

namespace autosens::telemetry::store {
namespace {

using telemetry::codec::crc32;
using telemetry::codec::get_varint;
using telemetry::codec::put_varint;
using telemetry::codec::zigzag_decode;
using telemetry::codec::zigzag_encode;

void put_zigzag(std::vector<std::uint8_t>& out, std::int64_t value) {
  put_varint(out, zigzag_encode(value));
}

void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

/// Cursor over a checked payload; every read throws on truncation.
struct Reader {
  std::span<const std::uint8_t> in;
  std::size_t offset = 0;
  const char* what;

  std::uint64_t varint() {
    std::uint64_t value = 0;
    if (!get_varint(in, offset, value)) {
      throw std::runtime_error(std::string(what) + ": truncated varint");
    }
    return value;
  }
  std::int64_t zigzag() { return zigzag_decode(varint()); }
  std::uint8_t byte() {
    if (offset >= in.size()) throw std::runtime_error(std::string(what) + ": truncated byte");
    return in[offset++];
  }
  std::uint32_t u32_le() {
    if (in.size() - offset < 4) throw std::runtime_error(std::string(what) + ": truncated u32");
    const std::uint32_t value = static_cast<std::uint32_t>(in[offset]) |
                                (static_cast<std::uint32_t>(in[offset + 1]) << 8) |
                                (static_cast<std::uint32_t>(in[offset + 2]) << 16) |
                                (static_cast<std::uint32_t>(in[offset + 3]) << 24);
    offset += 4;
    return value;
  }
  std::size_t counted(std::uint64_t count, std::size_t min_bytes_each) {
    // Attacker-controlled counts: bound by the bytes actually present so a
    // bogus huge count throws runtime_error, not bad_alloc.
    if (count > (in.size() - offset) / (min_bytes_each == 0 ? 1 : min_bytes_each)) {
      throw std::runtime_error(std::string(what) + ": count exceeds payload");
    }
    return static_cast<std::size_t>(count);
  }
  void done() {
    if (offset != in.size()) {
      throw std::runtime_error(std::string(what) + ": trailing bytes");
    }
  }
};

/// Strip "magic + payload + crc" framing and verify; returns the payload.
std::span<const std::uint8_t> checked_payload(std::span<const std::uint8_t> data,
                                              const std::array<char, 4>& magic,
                                              const char* what) {
  if (data.size() < 8 ||
      !std::equal(magic.begin(), magic.end(), reinterpret_cast<const char*>(data.data()))) {
    throw std::runtime_error(std::string(what) + ": bad magic");
  }
  const auto payload = data.subspan(4, data.size() - 8);
  const auto crc_bytes = data.subspan(data.size() - 4);
  const std::uint32_t expect = static_cast<std::uint32_t>(crc_bytes[0]) |
                               (static_cast<std::uint32_t>(crc_bytes[1]) << 8) |
                               (static_cast<std::uint32_t>(crc_bytes[2]) << 16) |
                               (static_cast<std::uint32_t>(crc_bytes[3]) << 24);
  if (crc32(payload) != expect) {
    throw std::runtime_error(std::string(what) + ": crc mismatch");
  }
  return payload;
}

void seal(std::vector<std::uint8_t>& out) {
  const std::span<const std::uint8_t> payload(out.data() + 4, out.size() - 4);
  put_u32_le(out, crc32(payload));
}

ColumnCodec parse_codec(std::uint8_t value, const char* what) {
  if (value > static_cast<std::uint8_t>(ColumnCodec::kZstd)) {
    throw std::runtime_error(std::string(what) + ": unknown column codec " +
                             std::to_string(value));
  }
  return static_cast<ColumnCodec>(value);
}

}  // namespace

std::string_view to_string(ColumnCodec codec) noexcept {
  switch (codec) {
    case ColumnCodec::kRaw: return "raw";
    case ColumnCodec::kDeltaVarint: return "delta+varint";
    case ColumnCodec::kRle: return "rle";
    case ColumnCodec::kZstd: return "zstd";
  }
  return "?";
}

std::vector<std::uint8_t> encode_footer(const PartitionFooter& footer) {
  std::vector<std::uint8_t> out(kFooterMagic.begin(), kFooterMagic.end());
  put_varint(out, kFormatVersion);
  put_varint(out, footer.rows);
  put_varint(out, footer.block_rows);
  put_zigzag(out, footer.min_time_ms);
  put_zigzag(out, footer.max_time_ms);
  for (const auto& per_action : footer.slice_rows) {
    for (const std::uint64_t rows : per_action) put_varint(out, rows);
  }
  put_varint(out, footer.blocks.size());
  for (const auto& block : footer.blocks) {
    put_zigzag(out, block.first_time_ms);
    put_zigzag(out, block.last_time_ms);
  }
  for (const auto& column : footer.columns) {
    out.push_back(static_cast<std::uint8_t>(column.codec));
    put_varint(out, column.stored_bytes);
    for (const std::uint64_t bytes : column.block_bytes) put_varint(out, bytes);
    for (const std::uint32_t crc : column.block_crcs) put_u32_le(out, crc);
  }
  seal(out);
  return out;
}

PartitionFooter decode_footer(std::span<const std::uint8_t> data) {
  Reader r{checked_payload(data, kFooterMagic, "store footer"), 0, "store footer"};
  if (r.varint() != kFormatVersion) {
    throw std::runtime_error("store footer: unsupported format version");
  }
  PartitionFooter footer;
  footer.rows = r.varint();
  footer.block_rows = static_cast<std::uint32_t>(r.varint());
  footer.min_time_ms = r.zigzag();
  footer.max_time_ms = r.zigzag();
  for (auto& per_action : footer.slice_rows) {
    for (auto& rows : per_action) rows = r.varint();
  }
  const std::size_t blocks = r.counted(r.varint(), 2);
  footer.blocks.resize(blocks);
  for (auto& block : footer.blocks) {
    block.first_time_ms = r.zigzag();
    block.last_time_ms = r.zigzag();
  }
  for (auto& column : footer.columns) {
    column.codec = parse_codec(r.byte(), "store footer");
    column.stored_bytes = r.varint();
    column.block_bytes.resize(blocks);
    for (auto& bytes : column.block_bytes) bytes = r.varint();
    column.block_crcs.resize(blocks);
    for (auto& crc : column.block_crcs) crc = r.u32_le();
  }
  r.done();
  if (footer.rows > 0 && footer.block_rows == 0) {
    throw std::runtime_error("store footer: zero block_rows");
  }
  const std::uint64_t expect_blocks =
      footer.rows == 0 ? 0 : (footer.rows + footer.block_rows - 1) / footer.block_rows;
  if (expect_blocks != blocks) {
    throw std::runtime_error("store footer: block count does not match row count");
  }
  return footer;
}

std::vector<std::uint8_t> encode_manifest(std::span<const PartitionInfo> partitions) {
  std::vector<std::uint8_t> out(kManifestMagic.begin(), kManifestMagic.end());
  put_varint(out, kFormatVersion);
  put_varint(out, partitions.size());
  for (const auto& p : partitions) {
    put_varint(out, p.dir_name.size());
    out.insert(out.end(), p.dir_name.begin(), p.dir_name.end());
    put_zigzag(out, p.day);
    put_varint(out, p.shard);
    put_varint(out, p.rows);
    put_zigzag(out, p.min_time_ms);
    put_zigzag(out, p.max_time_ms);
    put_varint(out, p.raw_bytes);
    put_varint(out, p.stored_bytes);
  }
  seal(out);
  return out;
}

std::vector<PartitionInfo> decode_manifest(std::span<const std::uint8_t> data) {
  Reader r{checked_payload(data, kManifestMagic, "store manifest"), 0, "store manifest"};
  if (r.varint() != kFormatVersion) {
    throw std::runtime_error("store manifest: unsupported format version");
  }
  const std::size_t count = r.counted(r.varint(), 8);
  std::vector<PartitionInfo> partitions(count);
  for (auto& p : partitions) {
    const std::size_t name_len = r.counted(r.varint(), 1);
    if (r.in.size() - r.offset < name_len) {
      throw std::runtime_error("store manifest: truncated name");
    }
    p.dir_name.assign(reinterpret_cast<const char*>(r.in.data() + r.offset), name_len);
    r.offset += name_len;
    if (p.dir_name.empty() || p.dir_name.find('/') != std::string::npos ||
        p.dir_name.find("..") != std::string::npos) {
      // Names join onto the store root; reject anything that could escape it.
      throw std::runtime_error("store manifest: invalid partition name");
    }
    p.day = r.zigzag();
    p.shard = static_cast<std::uint32_t>(r.varint());
    p.rows = r.varint();
    p.min_time_ms = r.zigzag();
    p.max_time_ms = r.zigzag();
    p.raw_bytes = r.varint();
    p.stored_bytes = r.varint();
  }
  r.done();
  return partitions;
}

}  // namespace autosens::telemetry::store
