// Block codecs for ASL3 column files. Every function works on one block
// (<= StoreOptions::block_rows rows): compressed blocks restart their state,
// so a reader can decode any block without touching the ones before it —
// the property partition-window reads rely on.
//
// Encoders append to `out` (callers reuse one buffer across blocks);
// decoders throw std::runtime_error on truncated or trailing bytes, so a
// block that passes its CRC but was written short still fails loudly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "telemetry/store/format.h"

namespace autosens::telemetry::store::codec {

/// kDeltaVarint over signed values (the time column): zigzag-varint of the
/// first value, then zigzag-varint deltas. Sorted input yields tiny deltas.
void encode_delta_i64(std::span<const std::int64_t> values, std::vector<std::uint8_t>& out);
void decode_delta_i64(std::span<const std::uint8_t> in, std::span<std::int64_t> out);

/// kDeltaVarint over unsigned values (the user_id column). Deltas are taken
/// with wrap-around uint64 arithmetic, so arbitrary id sequences round-trip.
void encode_delta_u64(std::span<const std::uint64_t> values, std::vector<std::uint8_t>& out);
void decode_delta_u64(std::span<const std::uint8_t> in, std::span<std::uint64_t> out);

/// kRle over byte-wide enum columns: (value, run-length varint) pairs.
void encode_rle_u8(std::span<const std::uint8_t> values, std::vector<std::uint8_t>& out);
void decode_rle_u8(std::span<const std::uint8_t> in, std::span<std::uint8_t> out);

}  // namespace autosens::telemetry::store::codec
