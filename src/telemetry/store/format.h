// ASL3 — the on-disk layout of the time-partitioned out-of-core columnar
// store (DESIGN.md §6e). A store is a directory:
//
//   <root>/MANIFEST                     partition index (prune without opening)
//   <root>/day-<day>.<shard>/           one partition (a day, or a shard of one)
//       time.col latency.col user.col   one file per Dataset column
//       action.col class.col status.col
//       footer.asf                      per-block stats + per-slice row counts
//
// Partitions are cut on calendar-day boundaries (telemetry::day_index — the
// same unit the day-block bootstrap resamples), with a secondary cut at
// StoreOptions::partition_rows so a heavy day splits into shards. Rows are
// appended strictly time-ascending, so partitions (and blocks within them)
// tile the time axis in order and window pruning is a range test.
//
// Column file layout ("ASC1"): a 24-byte header — magic(4), version(1),
// column_id(1), codec(1), pad(1), u64 rows, u64 data_bytes — followed by the
// data region. 24 ≡ 0 (mod 8), so a raw column's data starts 8-byte aligned
// inside the mmap and int64/double spans alias the mapping zero-copy.
//
// The data region is split into blocks of footer.block_rows rows. Raw blocks
// are contiguous slices (offsets computable); compressed blocks restart
// their delta chain per block and carry per-block byte lengths in the
// footer, so any block decodes independently. Every block has a CRC-32 in
// the footer; readers verify the blocks they touch.
//
// Footer ("ASF1") and MANIFEST ("ASM1") are varint/zigzag-coded streams with
// a trailing CRC-32 over everything after the magic (see footer.cpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/record.h"

namespace autosens::telemetry::store {

inline constexpr std::array<char, 4> kColumnMagic = {'A', 'S', 'C', '1'};
inline constexpr std::array<char, 4> kFooterMagic = {'A', 'S', 'F', '1'};
inline constexpr std::array<char, 4> kManifestMagic = {'A', 'S', 'M', '1'};
inline constexpr std::uint8_t kFormatVersion = 1;

inline constexpr std::string_view kManifestFileName = "MANIFEST";
inline constexpr std::string_view kFooterFileName = "footer.asf";

/// Column order is fixed and mirrors the Dataset SoA layout.
enum class ColumnId : std::uint8_t {
  kTime = 0,
  kLatency = 1,
  kUserId = 2,
  kAction = 3,
  kUserClass = 4,
  kStatus = 5,
};
inline constexpr std::size_t kColumnCount = 6;

inline constexpr std::array<std::string_view, kColumnCount> kColumnFileNames = {
    "time.col", "latency.col", "user.col", "action.col", "class.col", "status.col"};

/// Element width of each column in its raw (decoded) representation.
inline constexpr std::array<std::size_t, kColumnCount> kColumnElemBytes = {8, 8, 8, 1, 1, 1};

/// Logical bytes per row across all six columns (the "raw" size every
/// compression ratio and scan-throughput figure is measured against).
inline constexpr std::size_t kRowBytes = 8 + 8 + 8 + 1 + 1 + 1;

inline constexpr std::size_t kColumnHeaderBytes = 24;
static_assert(kColumnHeaderBytes % 8 == 0,
              "raw column data must start 8-byte aligned for zero-copy spans");

/// How a column's data region is encoded. The codec byte is an open seam:
/// kZstd is reserved for a general-purpose block compressor and is only
/// functional when the build carries one (AUTOSENS_HAVE_ZSTD); this tree
/// never writes it, and readers reject it with a clear error instead of
/// misparsing.
enum class ColumnCodec : std::uint8_t {
  kRaw = 0,          ///< Native little-endian elements, mmap zero-copy.
  kDeltaVarint = 1,  ///< Per block: zigzag-varint first value, then deltas.
  kRle = 2,          ///< Per block: (value u8, run varint) pairs.
  kZstd = 3,         ///< Reserved; gated behind AUTOSENS_HAVE_ZSTD.
};

std::string_view to_string(ColumnCodec codec) noexcept;

/// Writer knobs. The defaults target analysis-sized partitions: 1M-row
/// shards (27 MB raw) in 64K-row blocks.
struct StoreOptions {
  /// Secondary partition cut: a day with more rows splits into shards.
  std::uint64_t partition_rows = 1u << 20;
  /// Rows per block (the pruning/decode granule inside a partition).
  std::uint32_t block_rows = 1u << 16;
  /// When true (default): time/user_id delta+varint, enums RLE, latency raw.
  /// When false every column is raw (all-mmap partitions, no decode step).
  bool compress = true;
};

/// Per-block time range (times are sorted, so first/last are min/max).
struct BlockStat {
  std::int64_t first_time_ms = 0;
  std::int64_t last_time_ms = 0;
};

/// One column's encoding metadata inside a partition footer.
struct ColumnMeta {
  ColumnCodec codec = ColumnCodec::kRaw;
  std::uint64_t stored_bytes = 0;          ///< Data-region bytes on disk.
  std::vector<std::uint64_t> block_bytes;  ///< Stored bytes per block.
  std::vector<std::uint32_t> block_crcs;   ///< CRC-32 per stored block.
};

/// Everything footer.asf carries for one partition.
struct PartitionFooter {
  std::uint64_t rows = 0;
  std::uint32_t block_rows = 0;
  std::int64_t min_time_ms = 0;
  std::int64_t max_time_ms = 0;
  /// Row counts per (action, user_class) slice — the pruning statistic for
  /// sliced scans ("does this partition hold any Business SelectMail rows?").
  std::array<std::array<std::uint64_t, kUserClassCount>, kActionTypeCount> slice_rows{};
  std::vector<BlockStat> blocks;
  std::array<ColumnMeta, kColumnCount> columns;

  std::size_t block_count() const noexcept { return blocks.size(); }
  std::uint64_t raw_bytes() const noexcept { return rows * kRowBytes; }
  std::uint64_t stored_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& column : columns) total += column.stored_bytes;
    return total;
  }
};

/// One MANIFEST entry: enough to prune a partition by time range without
/// opening its footer.
struct PartitionInfo {
  std::string dir_name;  ///< Relative directory, e.g. "day-000012.0".
  std::int64_t day = 0;  ///< telemetry::day_index of every row in it.
  std::uint32_t shard = 0;
  std::uint64_t rows = 0;
  std::int64_t min_time_ms = 0;
  std::int64_t max_time_ms = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t stored_bytes = 0;
};

}  // namespace autosens::telemetry::store
