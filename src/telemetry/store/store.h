// StoredDataset — the read side of the ASL3 out-of-core store. Opening a
// store reads the MANIFEST and every partition footer (a few KB per
// partition); column data stays on disk until a read touches it, so a store
// far larger than RAM opens instantly and an analysis window only pays for
// the partitions (and blocks) it overlaps.
//
// Reads are CRC-verified at block granularity. Raw-codec columns hand out
// zero-copy spans aliasing the memory mapping (the 24-byte column header
// keeps 8-byte elements aligned); compressed columns decode just the
// touched blocks into owned buffers. PartitionData owns both kinds of
// backing storage — its spans are valid for its lifetime.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "telemetry/dataset.h"
#include "telemetry/ingest.h"
#include "telemetry/store/format.h"

namespace autosens::telemetry::store {

/// One contiguous row range of one partition, materialized for reading.
/// Spans alias either the column-file mappings (raw codecs) or the decoded
/// buffers this object owns; both live exactly as long as it does.
class PartitionData {
 public:
  std::size_t rows() const noexcept { return times_.size(); }
  std::span<const std::int64_t> times() const noexcept { return times_; }
  std::span<const double> latencies() const noexcept { return latencies_; }
  std::span<const std::uint64_t> user_ids() const noexcept { return user_ids_; }
  std::span<const ActionType> actions() const noexcept { return actions_; }
  std::span<const UserClass> user_classes() const noexcept { return user_classes_; }
  std::span<const ActionStatus> statuses() const noexcept { return statuses_; }
  SampleColumns columns() const noexcept { return {times_, latencies_}; }

  /// Stored (on-disk) bytes CRC-checked and consumed by this read.
  std::uint64_t bytes_read() const noexcept { return bytes_read_; }
  /// Columns served zero-copy straight from the mapping (raw codec).
  std::size_t zero_copy_columns() const noexcept { return zero_copy_columns_; }

 private:
  friend class StoredDataset;
  std::vector<MappedFile> maps_;
  std::vector<std::int64_t> owned_times_;
  std::vector<std::uint64_t> owned_user_ids_;
  std::vector<double> owned_latencies_;
  std::vector<std::uint8_t> owned_bytes_[3];  ///< action / class / status.
  std::span<const std::int64_t> times_;
  std::span<const double> latencies_;
  std::span<const std::uint64_t> user_ids_;
  std::span<const ActionType> actions_;
  std::span<const UserClass> user_classes_;
  std::span<const ActionStatus> statuses_;
  std::uint64_t bytes_read_ = 0;
  std::size_t zero_copy_columns_ = 0;
};

class StoredDataset {
 public:
  /// Read MANIFEST + all partition footers. Throws std::runtime_error on a
  /// missing/corrupt manifest or a footer that disagrees with it.
  static StoredDataset open(const std::string& dir);

  const std::filesystem::path& dir() const noexcept { return dir_; }
  const std::vector<PartitionInfo>& partitions() const noexcept { return manifest_; }
  const PartitionFooter& footer(std::size_t i) const { return footers_.at(i); }

  std::uint64_t rows() const noexcept;
  std::uint64_t raw_bytes() const noexcept;
  std::uint64_t stored_bytes() const noexcept;
  /// Overall time range [min, max] across partitions. Throws when empty.
  std::int64_t min_time_ms() const;
  std::int64_t max_time_ms() const;

  /// Indices of partitions overlapping [begin_ms, end_ms) — the manifest
  /// range test only, no disk IO.
  std::vector<std::size_t> prune(std::int64_t begin_ms, std::int64_t end_ms) const;

  /// Materialize one whole partition (CRC-verified; raw columns zero-copy).
  PartitionData read_partition(std::size_t i) const;
  /// Materialize rows [row_begin, row_end) of partition i, touching only the
  /// blocks that cover the range.
  PartitionData read_rows(std::size_t i, std::size_t row_begin, std::size_t row_end) const;

  struct WindowLoad {
    Dataset dataset;  ///< Sorted by construction (partitions tile time).
    std::size_t partitions_scanned = 0;
    std::size_t partitions_pruned = 0;
    std::uint64_t bytes_read = 0;  ///< Stored bytes consumed.
  };

  /// All rows with time in [begin_ms, end_ms) as an in-memory Dataset.
  /// Partitions outside the window are pruned via the manifest; partitions
  /// straddling a boundary are trimmed at block granularity, then exactly by
  /// binary search on the decoded time column.
  WindowLoad load_window(std::int64_t begin_ms, std::int64_t end_ms) const;

  /// The whole store as a Dataset (must fit in memory — tests/conversion).
  Dataset load_all() const;

 private:
  StoredDataset() = default;

  std::filesystem::path dir_;
  std::vector<PartitionInfo> manifest_;
  std::vector<PartitionFooter> footers_;
};

/// Stream a store back out as a sorted ASL2 binlog, one partition at a time
/// (O(partition) memory). The inverse of build_store_from_binlog.
void export_binlog(const StoredDataset& store, const std::string& path,
                   std::size_t batch_size = 4096);

}  // namespace autosens::telemetry::store
