#include "telemetry/store/store.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "telemetry/binlog.h"
#include "telemetry/store/codec.h"
#include "telemetry/store/footer.h"

namespace autosens::telemetry::store {
namespace {

struct ReaderMetrics {
  obs::Counter& partitions_scanned;
  obs::Counter& partitions_pruned;
  obs::Counter& bytes_read;
  obs::Counter& bytes_mapped;

  ReaderMetrics()
      : partitions_scanned(obs::registry().counter(
            "autosens_store_partitions_scanned_total",
            "Partitions overlapping a window (opened for reading)")),
        partitions_pruned(obs::registry().counter(
            "autosens_store_partitions_pruned_total",
            "Partitions skipped by the manifest time-range test")),
        bytes_read(obs::registry().counter("autosens_store_read_bytes_total",
                                           "Stored bytes CRC-checked and consumed by reads")),
        bytes_mapped(obs::registry().counter("autosens_store_mapped_bytes_total",
                                             "Column-file bytes memory-mapped by reads")) {}
};

ReaderMetrics& reader_metrics() {
  static ReaderMetrics metrics;
  return metrics;
}

std::uint64_t load_u64_le(const std::uint8_t* p) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return value;
}

struct ColumnHeader {
  std::uint8_t version = 0;
  std::uint8_t column_id = 0;
  std::uint8_t codec = 0;
  std::uint64_t rows = 0;
  std::uint64_t data_bytes = 0;
};

ColumnHeader parse_column_header(std::span<const std::uint8_t> data, const std::string& path) {
  if (data.size() < kColumnHeaderBytes ||
      std::memcmp(data.data(), kColumnMagic.data(), 4) != 0) {
    throw std::runtime_error("store: bad column header in " + path);
  }
  ColumnHeader header;
  header.version = data[4];
  header.column_id = data[5];
  header.codec = data[6];
  header.rows = load_u64_le(data.data() + 8);
  header.data_bytes = load_u64_le(data.data() + 16);
  if (header.version != kFormatVersion) {
    throw std::runtime_error("store: unsupported column format version in " + path);
  }
  return header;
}

/// Verify the CRC of stored block `b` and return its byte slice.
std::span<const std::uint8_t> checked_block(std::span<const std::uint8_t> region,
                                            const ColumnMeta& meta, std::size_t b,
                                            std::size_t byte_offset, const std::string& path) {
  const std::size_t bytes = meta.block_bytes[b];
  if (byte_offset + bytes > region.size()) {
    throw std::runtime_error("store: column data truncated in " + path);
  }
  const auto slice = region.subspan(byte_offset, bytes);
  if (telemetry::codec::crc32(slice) != meta.block_crcs[b]) {
    throw std::runtime_error("store: block crc mismatch in " + path);
  }
  return slice;
}

}  // namespace

StoredDataset StoredDataset::open(const std::string& dir) {
  StoredDataset store;
  store.dir_ = dir;
  const MappedFile manifest = MappedFile::map((store.dir_ / kManifestFileName).string());
  store.manifest_ = decode_manifest(manifest.bytes());
  store.footers_.reserve(store.manifest_.size());
  const PartitionInfo* prev = nullptr;
  for (const auto& p : store.manifest_) {
    const MappedFile f = MappedFile::map((store.dir_ / p.dir_name / kFooterFileName).string());
    PartitionFooter footer = decode_footer(f.bytes());
    if (footer.rows != p.rows || footer.min_time_ms != p.min_time_ms ||
        footer.max_time_ms != p.max_time_ms) {
      throw std::runtime_error("store: footer disagrees with MANIFEST for " + p.dir_name);
    }
    if (p.rows == 0 || p.min_time_ms > p.max_time_ms ||
        (prev != nullptr && p.min_time_ms < prev->max_time_ms)) {
      // Pruning and window loads rely on partitions tiling time in order.
      throw std::runtime_error("store: partitions are not time-ordered at " + p.dir_name);
    }
    store.footers_.push_back(std::move(footer));
    prev = &p;
  }
  return store;
}

std::uint64_t StoredDataset::rows() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : manifest_) total += p.rows;
  return total;
}

std::uint64_t StoredDataset::raw_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : manifest_) total += p.raw_bytes;
  return total;
}

std::uint64_t StoredDataset::stored_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& p : manifest_) total += p.stored_bytes;
  return total;
}

std::int64_t StoredDataset::min_time_ms() const {
  if (manifest_.empty()) throw std::runtime_error("store: empty store has no time range");
  return manifest_.front().min_time_ms;
}

std::int64_t StoredDataset::max_time_ms() const {
  if (manifest_.empty()) throw std::runtime_error("store: empty store has no time range");
  return manifest_.back().max_time_ms;
}

std::vector<std::size_t> StoredDataset::prune(std::int64_t begin_ms,
                                              std::int64_t end_ms) const {
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < manifest_.size(); ++i) {
    if (manifest_[i].min_time_ms < end_ms && manifest_[i].max_time_ms >= begin_ms) {
      kept.push_back(i);
    }
  }
  return kept;
}

PartitionData StoredDataset::read_partition(std::size_t i) const {
  return read_rows(i, 0, static_cast<std::size_t>(footer(i).rows));
}

PartitionData StoredDataset::read_rows(std::size_t i, std::size_t row_begin,
                                       std::size_t row_end) const {
  const PartitionFooter& footer = footers_.at(i);
  const PartitionInfo& info = manifest_[i];
  PartitionData out;
  if (row_begin >= row_end) return out;
  if (row_end > footer.rows) {
    throw std::out_of_range("store: row range exceeds partition");
  }
  const std::uint32_t block_rows = footer.block_rows;
  const std::size_t b0 = row_begin / block_rows;
  const std::size_t b1 = (row_end - 1) / block_rows + 1;
  // Decoded buffers cover whole blocks; spans trim to the exact row range.
  const std::size_t decode_begin = b0 * block_rows;
  const std::size_t decode_rows =
      std::min<std::size_t>(footer.rows, b1 * static_cast<std::size_t>(block_rows)) -
      decode_begin;

  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_mapped = 0;
  for (std::size_t c = 0; c < kColumnCount; ++c) {
    const ColumnMeta& meta = footer.columns[c];
    const std::string path = (dir_ / info.dir_name / kColumnFileNames[c]).string();
    MappedFile map = MappedFile::map(path);
    const auto bytes = map.bytes();
    const ColumnHeader header = parse_column_header(bytes, path);
    if (header.column_id != c || header.codec != static_cast<std::uint8_t>(meta.codec) ||
        header.rows != footer.rows || header.data_bytes != meta.stored_bytes ||
        bytes.size() != kColumnHeaderBytes + meta.stored_bytes) {
      throw std::runtime_error("store: column header disagrees with footer in " + path);
    }
    const auto region = bytes.subspan(kColumnHeaderBytes);
    bytes_mapped += bytes.size();

    const std::size_t elem = kColumnElemBytes[c];
    const std::uint8_t* raw = nullptr;  ///< Element row_begin when zero-copy.
    switch (meta.codec) {
      case ColumnCodec::kRaw: {
        if (meta.stored_bytes != footer.rows * elem) {
          throw std::runtime_error("store: raw column size mismatch in " + path);
        }
        std::size_t offset = decode_begin * elem;
        for (std::size_t b = b0; b < b1; ++b) {
          offset += checked_block(region, meta, b, offset, path).size();
          bytes_read += meta.block_bytes[b];
        }
        raw = region.data() + row_begin * elem;
        ++out.zero_copy_columns_;
        break;
      }
      case ColumnCodec::kDeltaVarint:
      case ColumnCodec::kRle: {
        std::size_t offset = 0;
        for (std::size_t b = 0; b < b0; ++b) offset += meta.block_bytes[b];
        std::size_t dest = 0;
        const auto each_block = [&](auto&& decode) {
          for (std::size_t b = b0; b < b1; ++b) {
            const std::size_t in_block =
                std::min<std::size_t>(footer.rows, (b + 1) * block_rows) - b * block_rows;
            const auto slice = checked_block(region, meta, b, offset, path);
            decode(slice, dest, in_block);
            offset += slice.size();
            dest += in_block;
            bytes_read += meta.block_bytes[b];
          }
        };
        const ColumnId id = static_cast<ColumnId>(c);
        if (meta.codec == ColumnCodec::kDeltaVarint && id == ColumnId::kTime) {
          out.owned_times_.resize(decode_rows);
          each_block([&](auto slice, std::size_t at, std::size_t n) {
            codec::decode_delta_i64(slice, {out.owned_times_.data() + at, n});
          });
        } else if (meta.codec == ColumnCodec::kDeltaVarint && id == ColumnId::kUserId) {
          out.owned_user_ids_.resize(decode_rows);
          each_block([&](auto slice, std::size_t at, std::size_t n) {
            codec::decode_delta_u64(slice, {out.owned_user_ids_.data() + at, n});
          });
        } else if (meta.codec == ColumnCodec::kRle && c >= 3) {
          auto& owned = out.owned_bytes_[c - 3];
          owned.resize(decode_rows);
          each_block([&](auto slice, std::size_t at, std::size_t n) {
            codec::decode_rle_u8(slice, {owned.data() + at, n});
          });
        } else {
          throw std::runtime_error("store: codec not valid for column in " + path);
        }
        break;
      }
      case ColumnCodec::kZstd:
#ifdef AUTOSENS_HAVE_ZSTD
        throw std::runtime_error("store: zstd decode not implemented in " + path);
#else
        throw std::runtime_error("store: column uses zstd but this build lacks zstd (" +
                                 path + ")");
#endif
    }

    const std::size_t count = row_end - row_begin;
    const std::size_t trim = row_begin - decode_begin;  ///< Offset into decoded buffers.
    switch (static_cast<ColumnId>(c)) {
      case ColumnId::kTime:
        out.times_ = raw != nullptr
                         ? std::span<const std::int64_t>(
                               reinterpret_cast<const std::int64_t*>(raw), count)
                         : std::span<const std::int64_t>(out.owned_times_)
                               .subspan(trim, count);
        break;
      case ColumnId::kLatency:
        out.latencies_ = std::span<const double>(reinterpret_cast<const double*>(raw), count);
        break;
      case ColumnId::kUserId:
        out.user_ids_ = raw != nullptr
                            ? std::span<const std::uint64_t>(
                                  reinterpret_cast<const std::uint64_t*>(raw), count)
                            : std::span<const std::uint64_t>(out.owned_user_ids_)
                                  .subspan(trim, count);
        break;
      case ColumnId::kAction:
        out.actions_ = raw != nullptr
                           ? std::span<const ActionType>(
                                 reinterpret_cast<const ActionType*>(raw), count)
                           : std::span<const ActionType>(
                                 reinterpret_cast<const ActionType*>(out.owned_bytes_[0].data()),
                                 out.owned_bytes_[0].size())
                                 .subspan(trim, count);
        break;
      case ColumnId::kUserClass:
        out.user_classes_ =
            raw != nullptr
                ? std::span<const UserClass>(reinterpret_cast<const UserClass*>(raw), count)
                : std::span<const UserClass>(
                      reinterpret_cast<const UserClass*>(out.owned_bytes_[1].data()),
                      out.owned_bytes_[1].size())
                      .subspan(trim, count);
        break;
      case ColumnId::kStatus:
        out.statuses_ =
            raw != nullptr
                ? std::span<const ActionStatus>(reinterpret_cast<const ActionStatus*>(raw),
                                                count)
                : std::span<const ActionStatus>(
                      reinterpret_cast<const ActionStatus*>(out.owned_bytes_[2].data()),
                      out.owned_bytes_[2].size())
                      .subspan(trim, count);
        break;
    }
    out.maps_.push_back(std::move(map));
  }

  // CRC catches corruption, not a well-formed file written with out-of-range
  // values; validate the enum columns like the binlog reader does.
  std::uint8_t max_action = 0;
  std::uint8_t max_class = 0;
  std::uint8_t max_status = 0;
  for (std::size_t k = 0; k < out.actions_.size(); ++k) {
    max_action = std::max(max_action, static_cast<std::uint8_t>(out.actions_[k]));
    max_class = std::max(max_class, static_cast<std::uint8_t>(out.user_classes_[k]));
    max_status = std::max(max_status, static_cast<std::uint8_t>(out.statuses_[k]));
  }
  if (max_action >= kActionTypeCount || max_class >= kUserClassCount || max_status > 1) {
    throw std::runtime_error("store: invalid enum value in partition " + info.dir_name);
  }
  if (!std::is_sorted(out.times_.begin(), out.times_.end())) {
    throw std::runtime_error("store: time column not sorted in partition " + info.dir_name);
  }

  out.bytes_read_ = bytes_read;
  ReaderMetrics& metrics = reader_metrics();
  metrics.bytes_read.inc(bytes_read);
  metrics.bytes_mapped.inc(bytes_mapped);
  return out;
}

StoredDataset::WindowLoad StoredDataset::load_window(std::int64_t begin_ms,
                                                     std::int64_t end_ms) const {
  WindowLoad out;
  for (std::size_t i = 0; i < manifest_.size(); ++i) {
    const PartitionInfo& p = manifest_[i];
    if (!(p.min_time_ms < end_ms && p.max_time_ms >= begin_ms)) {
      ++out.partitions_pruned;
      continue;
    }
    ++out.partitions_scanned;
    const PartitionFooter& footer = footers_[i];
    // Trim to the blocks whose time range overlaps the window.
    const std::size_t blocks = footer.block_count();
    std::size_t b0 = 0;
    while (b0 < blocks && footer.blocks[b0].last_time_ms < begin_ms) ++b0;
    std::size_t b1 = blocks;
    while (b1 > b0 && footer.blocks[b1 - 1].first_time_ms >= end_ms) --b1;
    if (b0 >= b1) continue;  // The window falls in a time gap between blocks.
    const std::size_t row_begin = b0 * footer.block_rows;
    const std::size_t row_end = std::min<std::size_t>(
        footer.rows, b1 * static_cast<std::size_t>(footer.block_rows));
    const PartitionData part = read_rows(i, row_begin, row_end);
    out.bytes_read += part.bytes_read();
    // Exact trim: the decoded times are sorted.
    const auto times = part.times();
    const std::size_t lo = static_cast<std::size_t>(
        std::lower_bound(times.begin(), times.end(), begin_ms) - times.begin());
    const std::size_t hi = static_cast<std::size_t>(
        std::lower_bound(times.begin(), times.end(), end_ms) - times.begin());
    if (lo >= hi) continue;
    const std::size_t n = hi - lo;
    out.dataset.append_columns(times.subspan(lo, n), part.latencies().subspan(lo, n),
                               part.user_ids().subspan(lo, n), part.actions().subspan(lo, n),
                               part.user_classes().subspan(lo, n),
                               part.statuses().subspan(lo, n));
  }
  ReaderMetrics& metrics = reader_metrics();
  metrics.partitions_scanned.inc(out.partitions_scanned);
  metrics.partitions_pruned.inc(out.partitions_pruned);
  return out;
}

Dataset StoredDataset::load_all() const {
  Dataset dataset;
  dataset.reserve(static_cast<std::size_t>(rows()));
  for (std::size_t i = 0; i < manifest_.size(); ++i) {
    const PartitionData part = read_partition(i);
    dataset.append_columns(part.times(), part.latencies(), part.user_ids(), part.actions(),
                           part.user_classes(), part.statuses());
  }
  return dataset;
}

void export_binlog(const StoredDataset& store, const std::string& path,
                   std::size_t batch_size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("store: cannot open " + path + " for writing");
  write_binlog_header(out);
  for (std::size_t i = 0; i < store.partitions().size(); ++i) {
    const PartitionData part = store.read_partition(i);
    write_binlog_frames(out, part.times(), part.latencies(), part.user_ids(), part.actions(),
                        part.user_classes(), part.statuses(), batch_size);
  }
}

}  // namespace autosens::telemetry::store
