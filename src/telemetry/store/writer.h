// StoreWriter — incremental builder of an ASL3 store directory. Rows are
// appended in strictly ascending time order (enforced; the whole pruning
// contract rests on it); the writer buffers at most one partition
// (StoreOptions::partition_rows rows) and flushes it to disk when the
// calendar day changes or the shard fills, so building a store of any size
// needs O(partition) memory.
//
// build_store converts an in-memory Dataset; build_store_from_binlog is the
// ingest-to-store spill path — a sorted ASL2 binlog streams frame-by-frame
// through the writer without ever materializing the dataset (unsorted or
// legacy ASL1 inputs fall back to a full load + sort first).
#pragma once

#include <cstdint>
#include <filesystem>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "telemetry/dataset.h"
#include "telemetry/ingest.h"
#include "telemetry/store/format.h"

namespace autosens::telemetry::store {

class StoreWriter {
 public:
  /// Creates `dir` (and parents) if needed. Throws std::runtime_error when
  /// the directory already contains a MANIFEST — stores are write-once.
  explicit StoreWriter(std::filesystem::path dir, StoreOptions options = {});

  /// Flushes any buffered rows and writes the MANIFEST on a best-effort
  /// basis when finish() was never called (errors swallowed; call finish()
  /// to observe them).
  ~StoreWriter();

  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Append column slices. All spans must be the same length and `times`
  /// must be ascending and start at or after the last appended time; throws
  /// std::invalid_argument otherwise (nothing is appended on failure).
  void append_columns(std::span<const std::int64_t> times, std::span<const double> latencies,
                      std::span<const std::uint64_t> user_ids,
                      std::span<const ActionType> actions,
                      std::span<const UserClass> user_classes,
                      std::span<const ActionStatus> statuses);

  /// Append a whole sorted dataset (throws std::invalid_argument if unsorted).
  void append(const Dataset& dataset);

  /// Flush the trailing partial partition and write the MANIFEST.
  /// Idempotent; append after finish throws.
  void finish();

  /// Partitions flushed so far (all of them after finish()).
  const std::vector<PartitionInfo>& partitions() const noexcept { return manifest_; }
  std::uint64_t rows_written() const noexcept { return rows_written_; }
  const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  void flush_partition();

  std::filesystem::path dir_;
  StoreOptions options_;
  std::vector<PartitionInfo> manifest_;

  // The buffered (current) partition.
  std::vector<std::int64_t> times_;
  std::vector<double> latencies_;
  std::vector<std::uint64_t> user_ids_;
  std::vector<ActionType> actions_;
  std::vector<UserClass> user_classes_;
  std::vector<ActionStatus> statuses_;

  std::int64_t buffer_day_ = 0;  ///< day_index of every buffered row.
  std::int64_t last_time_ = std::numeric_limits<std::int64_t>::min();
  std::uint32_t next_shard_ = 0;  ///< Shard number within buffer_day_.
  std::uint64_t rows_written_ = 0;
  bool finished_ = false;
};

/// One-shot: write all of `dataset` (must be sorted) as a store at `dir`.
void build_store(const Dataset& dataset, const std::string& dir, StoreOptions options = {});

/// Spill an existing binlog into a store. Sorted ASL2 files stream through
/// O(partition) memory; ASL1 and unsorted inputs load fully first. Returns
/// the number of rows written.
std::uint64_t build_store_from_binlog(const std::string& binlog_path, const std::string& dir,
                                      StoreOptions options = {},
                                      const IngestOptions& ingest = {});

}  // namespace autosens::telemetry::store
