#include "telemetry/dataset_view.h"

#include <algorithm>
#include <stdexcept>

namespace autosens::telemetry {

DatasetView::DatasetView(const Dataset& parent, std::vector<Block> blocks)
    : parent_(&parent), blocks_(std::move(blocks)) {
  if (!parent.is_sorted()) {
    throw std::invalid_argument("DatasetView: parent dataset not sorted");
  }
  offsets_.reserve(blocks_.size() + 1);
  offsets_.push_back(0);
  for (const auto& block : blocks_) {
    if (block.last < block.first || block.last > parent.size()) {
      throw std::invalid_argument("DatasetView: block out of range");
    }
    size_ += block.last - block.first;
    offsets_.push_back(size_);
  }
}

std::size_t DatasetView::block_of(std::size_t i) const noexcept {
  // First block whose end offset exceeds i.
  const auto it = std::upper_bound(offsets_.begin() + 1, offsets_.end(), i);
  return static_cast<std::size_t>(it - offsets_.begin()) - 1;
}

ActionRecord DatasetView::operator[](std::size_t i) const noexcept {
  const std::size_t b = block_of(i);
  const auto& block = blocks_[b];
  ActionRecord record = (*parent_)[block.first + (i - offsets_[b])];
  record.time_ms += block.time_shift;
  return record;
}

std::int64_t DatasetView::begin_time() const {
  for (const auto& block : blocks_) {
    if (block.last > block.first) {
      return parent_->times()[block.first] + block.time_shift;
    }
  }
  throw std::runtime_error("DatasetView::begin_time: empty view");
}

std::int64_t DatasetView::end_time() const {
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    if (it->last > it->first) {
      return parent_->times()[it->last - 1] + it->time_shift + 1;
    }
  }
  throw std::runtime_error("DatasetView::end_time: empty view");
}

void DatasetView::ensure_columns() const {
  if (materialized_) return;
  times_ = stats::PooledVector<std::int64_t>(size_);
  latencies_ = stats::PooledVector<double>(size_);
  const auto parent_times = parent_->times();
  const auto parent_latencies = parent_->latencies();
  std::size_t out = 0;
  for (const auto& block : blocks_) {
    for (std::size_t i = block.first; i < block.last; ++i, ++out) {
      times_[out] = parent_times[i] + block.time_shift;
      latencies_[out] = parent_latencies[i];
    }
  }
  materialized_ = true;
}

std::span<const std::int64_t> DatasetView::times() const {
  ensure_columns();
  return times_.span();
}

std::span<const double> DatasetView::latencies() const {
  ensure_columns();
  return latencies_.span();
}

Dataset DatasetView::materialize() const {
  Dataset out;
  out.reserve(size_);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const auto& block = blocks_[b];
    for (std::size_t i = block.first; i < block.last; ++i) {
      ActionRecord record = (*parent_)[i];
      record.time_ms += block.time_shift;
      out.add(record);
    }
  }
  out.sort_by_time();
  return out;
}

}  // namespace autosens::telemetry
