#include "telemetry/jsonl.h"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/trace.h"

namespace autosens::telemetry {
namespace {

template <typename T>
bool parse_number(std::string_view text, T& out) {
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

/// Whitespace sets matching what std::isspace accepts in the "C" locale,
/// without the per-character libc call the previous tokenizer paid.
/// line_space excludes '\n' — it is the line terminator and must never be
/// skipped inside a line when parsing straight out of a multi-line chunk.
constexpr bool json_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r';
}
constexpr bool line_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r';
}

/// Single-pass parser for one flat JSON object {"key":value,...} where
/// values are numbers or double-quoted strings without escapes (the schema
/// never needs them). `p` must sit at a line start; on return it sits just
/// past the line's '\n' (or at `end` for a final unterminated line)
/// regardless of outcome, so the caller never rescans for the terminator.
LineParse parse_jsonl_record(const char*& p, const char* const end, ActionRecord& record,
                             std::string& error) {
  // On error, skip the rest of the offending line so the next call starts
  // at a line boundary.
  const auto resync = [&p, end] {
    while (p != end && *p != '\n') ++p;
    if (p != end) ++p;
  };
  const auto fail = [&error, &resync](const char* message) {
    error = message;
    resync();
    return LineParse::kError;
  };
  const auto skip_space = [&p, end] {
    while (p != end && line_space(*p)) ++p;
  };
  // Scans the body of a double-quoted string; the opening quote is already
  // consumed. Leaves p past the closing quote on success.
  const auto scan_string = [&p, end](std::string_view& out) {
    const char* start = p;
    while (p != end && *p != '"' && *p != '\\' && *p != '\n') ++p;
    if (p == end || *p != '"') return false;  // unterminated or escaped
    out = std::string_view(start, static_cast<std::size_t>(p - start));
    ++p;  // closing quote
    return true;
  };

  record = ActionRecord{};
  bool saw_time = false;
  bool saw_user = false;
  bool saw_action = false;
  bool saw_latency = false;
  bool saw_class = false;
  bool saw_status = false;

  skip_space();
  if (p == end || *p == '\n') {  // blank line
    if (p != end) ++p;
    return LineParse::kSkip;
  }
  if (*p != '{') return fail("expected '{'");
  ++p;
  skip_space();
  bool closed = p != end && *p == '}';
  if (closed) ++p;
  while (!closed) {
    std::string_view key;
    if (p == end || *p != '"') return fail("expected string key");
    ++p;
    if (!scan_string(key)) return fail("expected string key");
    skip_space();
    if (p == end || *p != ':') return fail("expected ':'");
    ++p;
    skip_space();
    std::string_view value;
    bool is_string = false;
    if (p != end && *p == '"') {
      ++p;
      if (!scan_string(value)) return fail("bad string value");
      is_string = true;
    } else {
      const char* start = p;
      while (p != end && *p != ',' && *p != '}' && !json_space(*p)) ++p;
      value = std::string_view(start, static_cast<std::size_t>(p - start));
      if (value.empty()) return fail("expected value");
    }
    // Key dispatch on (length, content): every schema key has a unique
    // (length, first letter) pair, so the switch reaches at most two
    // full compares. A known key with the wrong value type falls through
    // to "unknown key", same as the reference parser.
    bool handled = false;
    switch (key.size()) {
      case 7:
        if (!is_string && key == "time_ms") {
          if (!parse_number(value, record.time_ms)) return fail("bad time_ms");
          saw_time = true;
          handled = true;
        } else if (!is_string && key == "user_id") {
          if (!parse_number(value, record.user_id)) return fail("bad user_id");
          saw_user = true;
          handled = true;
        }
        break;
      case 10:
        if (!is_string && key == "latency_ms") {
          if (!detail::parse_double(value, record.latency_ms)) {
            return fail("bad latency_ms");
          }
          saw_latency = true;
          handled = true;
        } else if (is_string && key == "user_class") {
          const auto parsed = parse_user_class(value);
          if (!parsed) return fail("unknown user class");
          record.user_class = *parsed;
          saw_class = true;
          handled = true;
        }
        break;
      case 6:
        if (is_string && key == "action") {
          const auto parsed = parse_action_type(value);
          if (!parsed) return fail("unknown action type");
          record.action = *parsed;
          saw_action = true;
          handled = true;
        } else if (is_string && key == "status") {
          const auto parsed = parse_action_status(value);
          if (!parsed) return fail("unknown status");
          record.status = *parsed;
          saw_status = true;
          handled = true;
        }
        break;
      default:
        break;
    }
    if (!handled) {
      error = "unknown key: ";
      error += key;
      resync();
      return LineParse::kError;
    }
    skip_space();
    if (p != end && *p == ',') {
      ++p;
      skip_space();
      continue;
    }
    if (p != end && *p == '}') {
      ++p;
      closed = true;
      break;
    }
    return fail("expected ',' or '}'");
  }
  skip_space();
  if (p != end && *p != '\n') return fail("trailing characters after object");
  if (!(saw_time && saw_user && saw_action && saw_latency && saw_class && saw_status)) {
    return fail("missing required field");  // p at '\n'/end; resync consumes it
  }
  if (p != end) ++p;
  return LineParse::kRecord;
}

/// Writer-order fast path: the overwhelmingly common line is exactly what
/// write_jsonl emits — fixed key order, no whitespace, no escapes. Matching
/// the key literals directly (each memcmp compiles to a couple of word
/// compares) skips the generic tokenizer. On success `p` is advanced past
/// the line's '\n' and every record field is written. ANY deviation —
/// reordered keys, whitespace, malformed value, trailing bytes — returns
/// false with `p` untouched and the caller re-parses the line with
/// parse_jsonl_record, so accepted records and error messages are identical
/// to the reference parser by construction (a property the parity tests
/// check against the scalar oracle).
bool parse_jsonl_fast(const char*& p, const char* const end, ActionRecord& record) {
  const char* q = p;
  const auto literal = [&q, end](std::string_view text) {
    if (static_cast<std::size_t>(end - q) < text.size() ||
        std::memcmp(q, text.data(), text.size()) != 0) {
      return false;
    }
    q += text.size();
    return true;
  };
  // Same stop set as the general parser's unquoted-value scan.
  const auto number = [&q, end]() -> std::string_view {
    const char* start = q;
    while (q != end && *q != ',' && *q != '}' && !json_space(*q)) ++q;
    return {start, static_cast<std::size_t>(q - start)};
  };
  // Same stop set as scan_string; '\\' and '\n' bail to the general parser.
  const auto quoted = [&q, end](std::string_view& out) {
    const char* start = q;
    while (q != end && *q != '"' && *q != '\\' && *q != '\n') ++q;
    if (q == end || *q != '"') return false;
    out = {start, static_cast<std::size_t>(q - start)};
    ++q;
    return true;
  };

  if (!literal("{\"time_ms\":")) return false;
  if (!parse_number(number(), record.time_ms)) return false;
  if (!literal(",\"user_id\":")) return false;
  if (!parse_number(number(), record.user_id)) return false;
  if (!literal(",\"action\":\"")) return false;
  std::string_view text;
  if (!quoted(text)) return false;
  const auto action = parse_action_type(text);
  if (!action) return false;
  record.action = *action;
  if (!literal(",\"latency_ms\":")) return false;
  if (!detail::parse_double(number(), record.latency_ms)) return false;
  if (!literal(",\"user_class\":\"")) return false;
  if (!quoted(text)) return false;
  const auto user_class = parse_user_class(text);
  if (!user_class) return false;
  record.user_class = *user_class;
  if (!literal(",\"status\":\"")) return false;
  if (!quoted(text)) return false;
  const auto status = parse_action_status(text);
  if (!status) return false;
  record.status = *status;
  if (q == end || *q != '}') return false;
  ++q;
  if (q != end) {
    if (*q != '\n') return false;  // trailing bytes: let the reference decide
    ++q;
  }
  p = q;
  return true;
}

/// Per-line wrapper for the getline entry point (and the reference the
/// parity tests hold the fused chunk parser to). The line arrives with its
/// '\n' already stripped, so `end` acts as the terminator.
LineParse parse_jsonl_line(std::string_view line, ActionRecord& record, std::string& error) {
  const char* p = line.data();
  return parse_jsonl_record(p, line.data() + line.size(), record, error);
}

/// Fused chunk parser: parse_jsonl_record leaves the cursor past each
/// line's terminator, so there is no separate memchr('\n') sweep per line.
void parse_jsonl_chunk(std::string_view chunk, detail::ColumnShard& shard) {
  shard.reserve(chunk.size() / 110 + 1);
  const char* p = chunk.data();
  const char* const end = p + chunk.size();
  ActionRecord record;
  std::string error;
  while (p != end) {
    ++shard.lines;
    if (parse_jsonl_fast(p, end, record)) {
      shard.push(record);
      continue;
    }
    switch (parse_jsonl_record(p, end, record, error)) {
      case LineParse::kRecord:
        shard.push(record);
        break;
      case LineParse::kSkip:
        break;
      case LineParse::kError:
        shard.errors.push_back({shard.lines, std::move(error)});
        error.clear();
        break;
    }
  }
}

}  // namespace

void write_jsonl(std::ostream& out, const Dataset& dataset) {
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const ActionRecord r = dataset[i];
    out << "{\"time_ms\":" << r.time_ms << ",\"user_id\":" << r.user_id << ",\"action\":\""
        << to_string(r.action) << "\",\"latency_ms\":" << r.latency_ms
        << ",\"user_class\":\"" << to_string(r.user_class) << "\",\"status\":\""
        << to_string(r.status) << "\"}\n";
  }
}

void write_jsonl_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_jsonl_file: cannot open " + path);
  write_jsonl(out, dataset);
  if (!out) throw std::runtime_error("write_jsonl_file: write failed for " + path);
}

JsonlReadResult read_jsonl_buffer(std::string_view text, const IngestOptions& options) {
  auto ingested = ingest_chunks(strip_utf8_bom(text), /*first_line=*/1, options,
                                parse_jsonl_chunk);
  return JsonlReadResult{std::move(ingested.dataset), std::move(ingested.errors)};
}

JsonlReadResult read_jsonl(std::istream& in, const IngestOptions& options) {
  const MappedFile input = MappedFile::read_stream(in);
  return read_jsonl_buffer(input.text(), options);
}

JsonlReadResult read_jsonl_file(const std::string& path, const IngestOptions& options) {
  obs::Span span("ingest_jsonl");
  span.attr("path", path);
  const MappedFile input = MappedFile::map(path);
  const auto start = std::chrono::steady_clock::now();
  auto result = read_jsonl_buffer(input.text(), options);
  IngestStats stats{.bytes = input.size(),
                    .records = result.dataset.size(),
                    .errors = result.errors.size(),
                    .seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start)
                                   .count(),
                    .mapped = input.is_mapped()};
  note_ingest("jsonl", stats);
  span.attr("records", static_cast<std::int64_t>(stats.records));
  span.attr("bytes", static_cast<std::int64_t>(stats.bytes));
  return result;
}

JsonlReadResult read_jsonl_scalar(std::istream& in) {
  JsonlReadResult result;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view view = line;
    if (line_number == 1) view = strip_utf8_bom(view);
    ActionRecord record;
    std::string error;
    switch (parse_jsonl_line(view, record, error)) {
      case LineParse::kRecord:
        result.dataset.add(record);
        break;
      case LineParse::kSkip:
        break;
      case LineParse::kError:
        result.errors.push_back({line_number, std::move(error)});
        break;
    }
  }
  result.dataset.sort_by_time();
  return result;
}

}  // namespace autosens::telemetry
