#include "telemetry/jsonl.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace autosens::telemetry {
namespace {

/// Minimal tokenizer over one flat JSON object: {"key":value,...} where
/// values are numbers or double-quoted strings without escapes (the schema
/// has no strings needing them).
class ObjectParser {
 public:
  explicit ObjectParser(std::string_view text) : text_(text) {}

  /// Parse the object; invokes on_field(key, value_text, is_string) per
  /// field. Returns an error message or empty on success.
  template <typename Callback>
  std::string parse(Callback&& on_field) {
    skip_space();
    if (!consume('{')) return "expected '{'";
    skip_space();
    if (consume('}')) return finish();
    for (;;) {
      std::string_view key;
      if (!parse_string(key)) return "expected string key";
      skip_space();
      if (!consume(':')) return "expected ':'";
      skip_space();
      std::string_view value;
      bool is_string = false;
      if (peek() == '"') {
        if (!parse_string(value)) return "bad string value";
        is_string = true;
      } else {
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
               !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        value = text_.substr(start, pos_ - start);
        if (value.empty()) return "expected value";
      }
      const std::string error = on_field(key, value, is_string);
      if (!error.empty()) return error;
      skip_space();
      if (consume(',')) {
        skip_space();
        continue;
      }
      if (consume('}')) return finish();
      return "expected ',' or '}'";
    }
  }

 private:
  std::string finish() {
    skip_space();
    return pos_ == text_.size() ? "" : "trailing characters after object";
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool parse_string(std::string_view& out) {
    if (!consume('"')) return false;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return false;  // schema never needs escapes
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    out = text_.substr(start, pos_ - start);
    ++pos_;  // closing quote
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

template <typename T>
bool parse_number(std::string_view text, T& out) {
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

}  // namespace

void write_jsonl(std::ostream& out, const Dataset& dataset) {
  for (const auto& r : dataset.records()) {
    out << "{\"time_ms\":" << r.time_ms << ",\"user_id\":" << r.user_id << ",\"action\":\""
        << to_string(r.action) << "\",\"latency_ms\":" << r.latency_ms
        << ",\"user_class\":\"" << to_string(r.user_class) << "\",\"status\":\""
        << to_string(r.status) << "\"}\n";
  }
}

void write_jsonl_file(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_jsonl_file: cannot open " + path);
  write_jsonl(out, dataset);
  if (!out) throw std::runtime_error("write_jsonl_file: write failed for " + path);
}

JsonlReadResult read_jsonl(std::istream& in) {
  JsonlReadResult result;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = line;
    while (!trimmed.empty() &&
           std::isspace(static_cast<unsigned char>(trimmed.back()))) {
      trimmed.remove_suffix(1);
    }
    if (trimmed.empty()) continue;

    ActionRecord record;
    bool saw_time = false;
    bool saw_user = false;
    bool saw_action = false;
    bool saw_latency = false;
    bool saw_class = false;
    bool saw_status = false;
    ObjectParser parser(trimmed);
    const std::string error = parser.parse([&](std::string_view key, std::string_view value,
                                               bool is_string) -> std::string {
      if (key == "time_ms" && !is_string) {
        if (!parse_number(value, record.time_ms)) return "bad time_ms";
        saw_time = true;
      } else if (key == "user_id" && !is_string) {
        if (!parse_number(value, record.user_id)) return "bad user_id";
        saw_user = true;
      } else if (key == "latency_ms" && !is_string) {
        if (!parse_number(value, record.latency_ms)) return "bad latency_ms";
        saw_latency = true;
      } else if (key == "action" && is_string) {
        const auto parsed = parse_action_type(value);
        if (!parsed) return "unknown action type";
        record.action = *parsed;
        saw_action = true;
      } else if (key == "user_class" && is_string) {
        const auto parsed = parse_user_class(value);
        if (!parsed) return "unknown user class";
        record.user_class = *parsed;
        saw_class = true;
      } else if (key == "status" && is_string) {
        const auto parsed = parse_action_status(value);
        if (!parsed) return "unknown status";
        record.status = *parsed;
        saw_status = true;
      } else {
        return "unknown key: " + std::string(key);
      }
      return "";
    });
    if (!error.empty()) {
      result.errors.push_back({line_number, error});
      continue;
    }
    if (!(saw_time && saw_user && saw_action && saw_latency && saw_class && saw_status)) {
      result.errors.push_back({line_number, "missing required field"});
      continue;
    }
    result.dataset.add(record);
  }
  result.dataset.sort_by_time();
  return result;
}

JsonlReadResult read_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_jsonl_file: cannot open " + path);
  return read_jsonl(in);
}

}  // namespace autosens::telemetry
