#include "telemetry/record.h"

namespace autosens::telemetry {

std::string_view to_string(ActionType type) noexcept {
  switch (type) {
    case ActionType::kSelectMail: return "SelectMail";
    case ActionType::kSwitchFolder: return "SwitchFolder";
    case ActionType::kSearch: return "Search";
    case ActionType::kComposeSend: return "ComposeSend";
    case ActionType::kOther: return "Other";
  }
  return "Other";
}

std::string_view to_string(UserClass user_class) noexcept {
  switch (user_class) {
    case UserClass::kBusiness: return "Business";
    case UserClass::kConsumer: return "Consumer";
  }
  return "Consumer";
}

std::string_view to_string(ActionStatus status) noexcept {
  switch (status) {
    case ActionStatus::kSuccess: return "Success";
    case ActionStatus::kError: return "Error";
  }
  return "Error";
}

std::optional<ActionType> parse_action_type(std::string_view name) noexcept {
  if (name == "SelectMail") return ActionType::kSelectMail;
  if (name == "SwitchFolder") return ActionType::kSwitchFolder;
  if (name == "Search") return ActionType::kSearch;
  if (name == "ComposeSend") return ActionType::kComposeSend;
  if (name == "Other") return ActionType::kOther;
  return std::nullopt;
}

std::optional<UserClass> parse_user_class(std::string_view name) noexcept {
  if (name == "Business") return UserClass::kBusiness;
  if (name == "Consumer") return UserClass::kConsumer;
  return std::nullopt;
}

std::optional<ActionStatus> parse_action_status(std::string_view name) noexcept {
  if (name == "Success") return ActionStatus::kSuccess;
  if (name == "Error") return ActionStatus::kError;
  return std::nullopt;
}

}  // namespace autosens::telemetry
