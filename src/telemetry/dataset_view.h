// DatasetView: a lightweight reordering view over a Dataset — a list of
// (record-range, time-shift) blocks evaluated lazily, without copying or
// re-sorting the parent's records. This is the output type of the day-block
// bootstrap (core/day_block_resample): constructing a replicate is O(blocks),
// not O(records), and estimators consume the view through the same
// SampleColumns hot path as a real Dataset.
//
// Lifetime rules (DESIGN.md "Data layout & memory model"): the view borrows
// the parent Dataset — the parent must outlive the view, and any
// add()/sort_by_time() on the parent invalidates it. The time/latency columns
// a view hands out are materialized on first access into buffers borrowed
// from the scratch pool and returned when the view dies; first access is not
// thread-safe (each bootstrap replicate owns its view).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/scratch.h"
#include "telemetry/dataset.h"
#include "telemetry/record.h"

namespace autosens::telemetry {

class DatasetView {
 public:
  /// One contiguous run [first, last) of parent records, each shifted by
  /// `time_shift` milliseconds when read through the view.
  struct Block {
    std::size_t first = 0;
    std::size_t last = 0;
    std::int64_t time_shift = 0;
  };

  /// Blocks must be chosen so that the concatenated, shifted times are
  /// globally sorted ascending (day_block_resample guarantees this: block s
  /// lands in day s). The parent must be sorted.
  DatasetView(const Dataset& parent, std::vector<Block> blocks);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t block_count() const noexcept { return blocks_.size(); }

  /// Gather record i (time-shifted) without materializing columns.
  ActionRecord operator[](std::size_t i) const noexcept;

  /// First / one-past-last view time, straight from the block table (no
  /// materialization). Throws std::runtime_error when the view is empty.
  std::int64_t begin_time() const;
  std::int64_t end_time() const;

  /// Shifted, contiguous column views — materialized from the parent on
  /// first access into pooled buffers (O(records) once, then free).
  std::span<const std::int64_t> times() const;
  std::span<const double> latencies() const;
  SampleColumns columns() const { return {times(), latencies()}; }

  /// Deep copy into an owning, sorted Dataset (all columns gathered).
  Dataset materialize() const;

 private:
  void ensure_columns() const;
  /// Index of the block containing view position i, via offsets_.
  std::size_t block_of(std::size_t i) const noexcept;

  const Dataset* parent_;
  std::vector<Block> blocks_;
  std::vector<std::size_t> offsets_;  ///< Prefix sums; offsets_[b] = view index of blocks_[b].first.
  std::size_t size_ = 0;
  mutable stats::PooledVector<std::int64_t> times_;
  mutable stats::PooledVector<double> latencies_;
  mutable bool materialized_ = false;
};

}  // namespace autosens::telemetry
