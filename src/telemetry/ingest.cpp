#include "telemetry/ingest.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <istream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace autosens::telemetry {

// ---------------------------------------------------------------------------
// MappedFile

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      map_base_(other.map_base_),
      map_length_(other.map_length_),
      buffer_(std::move(other.buffer_)) {
  // The buffer move can relocate nothing (vector storage is stable), but the
  // moved-from object must not unmap what we now own.
  other.data_ = "";
  other.size_ = 0;
  other.map_base_ = nullptr;
  other.map_length_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    map_base_ = other.map_base_;
    map_length_ = other.map_length_;
    buffer_ = std::move(other.buffer_);
    other.data_ = "";
    other.size_ = 0;
    other.map_base_ = nullptr;
    other.map_length_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() { reset(); }

void MappedFile::reset() noexcept {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_length_);
    map_base_ = nullptr;
    map_length_ = 0;
  }
  buffer_.clear();
  data_ = "";
  size_ = 0;
}

namespace {

/// RAII fd so every throw path closes the descriptor.
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

/// Read everything `fd` has to offer into `out` (the non-mmap fallback).
bool read_all(int fd, std::vector<char>& out) {
  char block[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, block, sizeof block);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out.insert(out.end(), block, block + n);
  }
}

}  // namespace

MappedFile MappedFile::map(const std::string& path) {
  FdGuard guard{::open(path.c_str(), O_RDONLY)};
  if (guard.fd < 0) {
    throw std::runtime_error("MappedFile::map: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat info {};
  if (::fstat(guard.fd, &info) != 0) {
    throw std::runtime_error("MappedFile::map: fstat failed for " + path + ": " +
                             std::strerror(errno));
  }

  MappedFile file;
  if (S_ISREG(info.st_mode) && info.st_size > 0) {
    const auto length = static_cast<std::size_t>(info.st_size);
    void* base = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, guard.fd, 0);
    if (base != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
      ::madvise(base, length, MADV_SEQUENTIAL);
#endif
      file.map_base_ = base;
      file.map_length_ = length;
      file.data_ = base;
      file.size_ = length;
      return file;
    }
    // mmap can fail for exotic filesystems; fall through to the read path.
  }

  if (!read_all(guard.fd, file.buffer_)) {
    throw std::runtime_error("MappedFile::map: read failed for " + path + ": " +
                             std::strerror(errno));
  }
  if (!file.buffer_.empty()) {
    file.data_ = file.buffer_.data();
    file.size_ = file.buffer_.size();
  }
  return file;
}

MappedFile MappedFile::read_stream(std::istream& in) {
  MappedFile file;
  char block[1 << 16];
  while (in.read(block, sizeof block) || in.gcount() > 0) {
    file.buffer_.insert(file.buffer_.end(), block, block + in.gcount());
  }
  if (!file.buffer_.empty()) {
    file.data_ = file.buffer_.data();
    file.size_ = file.buffer_.size();
  }
  return file;
}

// ---------------------------------------------------------------------------
// Chunking

std::vector<std::size_t> newline_chunk_bounds(std::string_view text,
                                              std::size_t chunk_bytes,
                                              std::size_t max_chunks) {
  const core::ChunkGrid grid =
      core::make_chunk_grid(text.size(), chunk_bytes == 0 ? 1 : chunk_bytes, max_chunks);
  std::vector<std::size_t> bounds;
  bounds.reserve(grid.chunks + 1);
  bounds.push_back(0);
  for (std::size_t c = 1; c < grid.chunks; ++c) {
    // Snap the grid boundary forward to just past the next newline so no
    // line straddles two chunks. A long line can swallow whole grid cells,
    // leaving empty chunks — harmless, and still thread-count independent.
    const std::size_t raw = grid.begin(c);
    const std::size_t newline = text.find('\n', std::max(raw, bounds.back()));
    bounds.push_back(newline == std::string_view::npos ? text.size() : newline + 1);
  }
  bounds.push_back(text.size());
  return bounds;
}

std::string_view strip_utf8_bom(std::string_view text) noexcept {
  if (text.size() >= 3 && text[0] == '\xef' && text[1] == '\xbb' && text[2] == '\xbf') {
    text.remove_prefix(3);
  }
  return text;
}

// ---------------------------------------------------------------------------
// Shard concatenation

namespace detail {

void concat_shards(std::vector<ColumnShard>& shards, std::size_t first_line,
                   Dataset& dataset, std::vector<IngestError>& errors) {
  std::size_t total_records = 0;
  std::size_t total_errors = 0;
  for (const auto& shard : shards) {
    total_records += shard.size();
    total_errors += shard.errors.size();
  }
  dataset.reserve(dataset.size() + total_records);
  errors.reserve(errors.size() + total_errors);
  std::size_t lines_before = 0;
  for (auto& shard : shards) {
    dataset.append_columns(shard.time_ms, shard.latency_ms, shard.user_id, shard.action,
                           shard.user_class, shard.status);
    for (auto& error : shard.errors) {
      // Chunk-local (1-based) -> global line number.
      errors.push_back({first_line + lines_before + error.line - 1,
                        std::move(error.message)});
    }
    lines_before += shard.lines;
  }
}

namespace {

bool from_chars_fallback(std::string_view text, double& out) noexcept {
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc{} && result.ptr == text.data() + text.size();
}

}  // namespace

bool parse_double(std::string_view text, double& out) noexcept {
  // Fast path: [-]digits[.digits] with at most 15 significant digits. The
  // mantissa then fits a double exactly and 10^-frac_digits is one of the
  // exactly-representable powers below, so a single divide/multiply is
  // correctly rounded — the same bits std::from_chars produces.
  static constexpr double kPow10[] = {1e0, 1e1, 1e2,  1e3,  1e4,  1e5,  1e6,  1e7,
                                      1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15};
  const char* p = text.data();
  const char* const end = p + text.size();
  const bool negative = p != end && *p == '-';
  if (negative) ++p;
  std::uint64_t mantissa = 0;
  int digits = 0;
  int frac_digits = 0;
  const char* int_start = p;
  while (p != end && *p >= '0' && *p <= '9') {
    mantissa = mantissa * 10 + static_cast<std::uint64_t>(*p - '0');
    ++digits;
    ++p;
  }
  if (p == int_start) return from_chars_fallback(text, out);
  if (p != end && *p == '.') {
    ++p;
    const char* frac_start = p;
    while (p != end && *p >= '0' && *p <= '9') {
      mantissa = mantissa * 10 + static_cast<std::uint64_t>(*p - '0');
      ++digits;
      ++frac_digits;
      ++p;
    }
    if (p == frac_start) return from_chars_fallback(text, out);
  }
  if (p != end || digits > 15) return from_chars_fallback(text, out);
  double value = static_cast<double>(mantissa);
  if (frac_digits > 0) value /= kPow10[frac_digits];
  out = negative ? -value : value;
  return true;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Observability

namespace {

/// Per-format ingest instrumentation handles (registered once, then one
/// relaxed atomic op per use — see DESIGN.md "Observability").
struct IngestMetrics {
  obs::Counter& bytes;
  obs::Counter& records;
  obs::Counter& parse_errors;
  obs::Counter& loads;
  obs::Gauge& bytes_per_second;
  obs::Gauge& records_per_second;

  explicit IngestMetrics(const std::string& format)
      : bytes(obs::registry().counter("autosens_ingest_bytes_total{format=\"" + format + "\"}",
                                      "Input bytes consumed by the ingest engine")),
        records(obs::registry().counter(
            "autosens_ingest_records_total{format=\"" + format + "\"}",
            "Records accepted by the ingest engine")),
        parse_errors(obs::registry().counter(
            "autosens_ingest_parse_errors_total{format=\"" + format + "\"}",
            "Lines or frames rejected by the ingest engine")),
        loads(obs::registry().counter("autosens_ingest_loads_total{format=\"" + format + "\"}",
                                      "Completed ingest calls")),
        bytes_per_second(obs::registry().gauge(
            "autosens_ingest_bytes_per_second{format=\"" + format + "\"}",
            "Parse throughput of the most recent ingest")),
        records_per_second(obs::registry().gauge(
            "autosens_ingest_records_per_second{format=\"" + format + "\"}",
            "Record throughput of the most recent ingest")) {}
};

IngestMetrics& metrics_for(std::string_view format) {
  static IngestMetrics csv("csv");
  static IngestMetrics jsonl("jsonl");
  static IngestMetrics binlog("binlog");
  static IngestMetrics logdir("logdir");
  if (format == "csv") return csv;
  if (format == "jsonl") return jsonl;
  if (format == "binlog") return binlog;
  return logdir;
}

}  // namespace

void note_ingest(std::string_view format, const IngestStats& stats) {
  if (!obs::enabled()) return;
  IngestMetrics& handles = metrics_for(format);
  handles.bytes.inc(stats.bytes);
  handles.records.inc(stats.records);
  handles.parse_errors.inc(stats.errors);
  handles.loads.inc();
  if (stats.seconds > 0.0) {
    handles.bytes_per_second.set(static_cast<double>(stats.bytes) / stats.seconds);
    handles.records_per_second.set(static_cast<double>(stats.records) / stats.seconds);
  }
}

}  // namespace autosens::telemetry
