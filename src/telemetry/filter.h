// Composable record predicates and the slicing helpers the evaluation uses:
// by action type (§3.2), by user class (§3.3), by per-user median-latency
// quartile (§3.4), by 6-hour period (§3.6), and by month (§3.7).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "telemetry/clock.h"
#include "telemetry/dataset.h"
#include "telemetry/record.h"

namespace autosens::telemetry {

using RecordPredicate = std::function<bool(const ActionRecord&)>;

RecordPredicate by_action(ActionType type);
RecordPredicate by_user_class(UserClass user_class);
RecordPredicate by_status(ActionStatus status);
RecordPredicate by_period(DayPeriod period);
RecordPredicate by_month(std::int64_t month);
RecordPredicate by_time_range(std::int64_t begin_ms, std::int64_t end_ms);

/// Logical AND of predicates.
RecordPredicate all_of(std::vector<RecordPredicate> predicates);

/// Per-user median-latency quartile assignment. Users are ranked by their
/// median latency over `dataset`; quartile 0 (Q1) holds the quarter with the
/// lowest medians. Boundaries use the type-7 quantiles of the per-user
/// medians, so quartiles are balanced in user count (up to ties).
class UserQuartiles {
 public:
  static constexpr int kQuartileCount = 4;

  /// Throws std::invalid_argument if the dataset has no users.
  explicit UserQuartiles(const Dataset& dataset);

  /// Build from precomputed per-user medians (e.g. a streaming
  /// telemetry::UserAccumulator over data too large to materialize).
  explicit UserQuartiles(const std::unordered_map<std::uint64_t, double>& medians);

  /// Quartile in [0, 4) for a user; unknown users go to the nearest quartile
  /// by their absence being impossible in our pipelines — throws instead.
  int quartile_of(std::uint64_t user_id) const;
  bool contains(std::uint64_t user_id) const noexcept {
    return assignment_.contains(user_id);
  }

  /// Predicate matching records of users in quartile q.
  RecordPredicate in_quartile(int q) const;

  /// Median-latency boundaries between quartiles (3 values: q25, q50, q75).
  const std::array<double, 3>& boundaries() const noexcept { return boundaries_; }
  std::size_t user_count() const noexcept { return assignment_.size(); }

 private:
  std::unordered_map<std::uint64_t, int> assignment_;
  std::array<double, 3> boundaries_{};
};

}  // namespace autosens::telemetry
