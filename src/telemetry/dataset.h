// Dataset: an in-memory, time-sorted store of ActionRecords with the access
// paths AutoSens needs — time range, parallel time/latency views, per-user
// grouping (for the conditioning-to-speed quartiles, §3.4), and cheap
// filtered copies.
//
// Storage is structure-of-arrays: every record field lives in its own
// contiguous column, so the estimator hot loops (which only touch time and
// latency) stream exactly the bytes they need and times()/latencies() are
// zero-copy spans rather than per-call vector copies. See DESIGN.md
// "Data layout & memory model" for the view-lifetime rules.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "telemetry/record.h"

namespace autosens::telemetry {

/// Non-owning view of the two analysis-plane columns. The whole estimator
/// pipeline (biased/unbiased fills, α-normalization) consumes this instead of
/// a concrete Dataset, so bootstrap views and datasets share one hot path.
/// `times` must be sorted ascending and aligned with `latencies`.
struct SampleColumns {
  std::span<const std::int64_t> times;
  std::span<const double> latencies;

  std::size_t size() const noexcept { return times.size(); }
  bool empty() const noexcept { return times.empty(); }
  /// First sample time; [begin_time, end_time) is the observation window.
  /// Throws std::runtime_error when the view is empty.
  std::int64_t begin_time() const {
    if (times.empty()) throw std::runtime_error("SampleColumns::begin_time: empty view");
    return times.front();
  }
  std::int64_t end_time() const {
    if (times.empty()) throw std::runtime_error("SampleColumns::end_time: empty view");
    return times.back() + 1;
  }
};

class Dataset {
 public:
  Dataset();
  explicit Dataset(std::vector<ActionRecord> records);
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(Dataset&& other) noexcept;
  ~Dataset();

  /// Append one record. Invalidates sortedness; sort happens lazily via
  /// ensure_sorted() or eagerly through sort_by_time().
  void add(ActionRecord record);
  /// Append record i of `source` column-wise (no AoS round-trip).
  void append_from(const Dataset& source, std::size_t i);
  /// Bulk append: splice whole column slices onto the dataset (the ingest
  /// engine's shard-concatenation path). All spans must have equal length;
  /// throws std::invalid_argument otherwise. The sorted flag survives only
  /// when the incoming times are ascending and start at or after the
  /// current last time.
  void append_columns(std::span<const std::int64_t> times, std::span<const double> latencies,
                      std::span<const std::uint64_t> user_ids,
                      std::span<const ActionType> actions,
                      std::span<const UserClass> user_classes,
                      std::span<const ActionStatus> statuses);
  /// Bulk load: take ownership of fully-formed columns without copying (the
  /// binlog zero-copy path). All vectors must have equal length; throws
  /// std::invalid_argument otherwise. Replaces the current contents;
  /// sortedness is determined by scanning the times once.
  void adopt_columns(std::vector<std::int64_t> times, std::vector<double> latencies,
                     std::vector<std::uint64_t> user_ids, std::vector<ActionType> actions,
                     std::vector<UserClass> user_classes,
                     std::vector<ActionStatus> statuses);
  void reserve(std::size_t capacity);

  std::size_t size() const noexcept { return time_ms_.size(); }
  bool empty() const noexcept { return time_ms_.empty(); }
  /// Gather record i from the columns (a cheap by-value assembly).
  ActionRecord operator[](std::size_t i) const noexcept {
    return ActionRecord{.time_ms = time_ms_[i],
                        .user_id = user_id_[i],
                        .latency_ms = latency_ms_[i],
                        .action = action_[i],
                        .user_class = user_class_[i],
                        .status = status_[i]};
  }
  /// Materialized AoS copy, for serialization and compatibility call sites.
  /// O(n) gather — hot loops should take the column spans instead.
  std::vector<ActionRecord> records() const;

  /// Sort records ascending by time (stable, so equal-time order is
  /// insertion order). Idempotent.
  void sort_by_time();
  bool is_sorted() const noexcept { return sorted_; }

  /// First record time. Throws std::runtime_error when empty or unsorted.
  std::int64_t begin_time() const;
  /// One past the last record time (so [begin_time, end_time) is non-empty).
  std::int64_t end_time() const;

  /// Zero-copy column views (records must be sorted for `times` to be
  /// monotone). The spans alias this dataset's storage: they are valid until
  /// the next add()/sort_by_time()/destruction, and the data pointer is
  /// stable across calls.
  std::span<const std::int64_t> times() const noexcept { return time_ms_; }
  std::span<const double> latencies() const noexcept { return latency_ms_; }
  std::span<const std::uint64_t> user_ids() const noexcept { return user_id_; }
  std::span<const ActionType> actions() const noexcept { return action_; }
  std::span<const UserClass> user_classes() const noexcept { return user_class_; }
  std::span<const ActionStatus> statuses() const noexcept { return status_; }
  /// The analysis-plane view (same lifetime rules as the column spans).
  SampleColumns columns() const noexcept { return {time_ms_, latency_ms_}; }

  /// A new dataset containing records matching `predicate`, preserving
  /// order. Templated so lambda predicates run devirtualized; the predicate
  /// sees a gathered ActionRecord.
  template <typename Predicate>
  Dataset filtered(const Predicate& predicate) const {
    Dataset kept;
    for (std::size_t i = 0; i < size(); ++i) {
      if (predicate((*this)[i])) kept.append_from(*this, i);
    }
    return kept;
  }

  /// Per-user median latency over this dataset (for quartile conditioning).
  std::unordered_map<std::uint64_t, double> per_user_median_latency() const;

  /// Exact Voronoi selection weights over [begin_ms, end_ms), memoized on
  /// the dataset: repeated analyses of the same window (bench loops, slice
  /// re-reads) reuse the cached weights instead of recomputing them. The
  /// span follows the column-span lifetime rules; add()/sort_by_time()
  /// invalidate the cache. Thread-safe.
  std::span<const double> voronoi_weights_cached(std::int64_t begin_ms, std::int64_t end_ms,
                                                 std::size_t threads) const;

 private:
  struct VoronoiCache;
  void invalidate_cache() noexcept;

  std::vector<std::int64_t> time_ms_;
  std::vector<double> latency_ms_;
  std::vector<std::uint64_t> user_id_;
  std::vector<ActionType> action_;
  std::vector<UserClass> user_class_;
  std::vector<ActionStatus> status_;
  bool sorted_ = true;  // vacuously sorted when empty
  mutable std::unique_ptr<VoronoiCache> voronoi_;
};

}  // namespace autosens::telemetry
