// Dataset: an in-memory, time-sorted store of ActionRecords with the access
// paths AutoSens needs — time range, parallel time/latency views, per-user
// grouping (for the conditioning-to-speed quartiles, §3.4), and cheap
// filtered copies.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "telemetry/record.h"

namespace autosens::telemetry {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<ActionRecord> records);

  /// Append one record. Invalidates sortedness; sort happens lazily via
  /// ensure_sorted() or eagerly through sort_by_time().
  void add(ActionRecord record);
  void reserve(std::size_t capacity) { records_.reserve(capacity); }

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  std::span<const ActionRecord> records() const noexcept { return records_; }
  const ActionRecord& operator[](std::size_t i) const noexcept { return records_[i]; }

  /// Sort records ascending by time (stable, so equal-time order is
  /// insertion order). Idempotent.
  void sort_by_time();
  bool is_sorted() const noexcept { return sorted_; }

  /// First record time. Throws std::runtime_error when empty or unsorted.
  std::int64_t begin_time() const;
  /// One past the last record time (so [begin_time, end_time) is non-empty).
  std::int64_t end_time() const;

  /// Column extraction (records must be sorted for `times` to be monotone).
  std::vector<std::int64_t> times() const;
  std::vector<double> latencies() const;

  /// A new dataset containing records matching `predicate`, preserving order.
  Dataset filtered(const std::function<bool(const ActionRecord&)>& predicate) const;

  /// Per-user median latency over this dataset (for quartile conditioning).
  std::unordered_map<std::uint64_t, double> per_user_median_latency() const;

 private:
  std::vector<ActionRecord> records_;
  bool sorted_ = true;  // vacuously sorted when empty
};

}  // namespace autosens::telemetry
