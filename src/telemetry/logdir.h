// Sharded binary-log directories. A fleet of collectors (or one collector
// rotating by size) produces many binary logs; analyses want one time-sorted
// Dataset. This module writes fixed-size shards ("autosens-00000.bin", ...)
// and reads a whole directory back, merging and sorting.
//
// Reads are a sharded multi-file load on the shared thread pool: every shard
// is memory-mapped and decoded concurrently (the binlog zero-copy path),
// then the per-shard columns are concatenated in lexicographic path order —
// so the merged dataset is identical for every thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/dataset.h"
#include "telemetry/ingest.h"

namespace autosens::telemetry {

/// Shard file name for index `i` (zero-padded, stable sort order).
std::string shard_name(std::size_t index);

/// Write `dataset` into `directory` as shards of at most `records_per_shard`
/// records each (the directory is created if missing). Returns the shard
/// paths in order. Throws std::runtime_error on IO failure and
/// std::invalid_argument for records_per_shard == 0.
std::vector<std::string> write_sharded(const std::string& directory, const Dataset& dataset,
                                       std::size_t records_per_shard = 500'000);

/// Read every "*.bin" file in `directory` (non-recursive) and merge into a
/// single time-sorted dataset. Shards load in parallel per
/// `options.threads`; the result is identical for every value. Throws
/// std::runtime_error if the directory does not exist or any shard is
/// unreadable/corrupt.
Dataset read_sharded(const std::string& directory, const IngestOptions& options = {});

}  // namespace autosens::telemetry
