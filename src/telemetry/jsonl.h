// JSON-lines telemetry interchange: one JSON object per line, the format
// most log pipelines (jq, BigQuery exports, vector.dev, etc.) speak.
//
//   {"time_ms":1000,"user_id":42,"action":"SelectMail","latency_ms":123.4,
//    "user_class":"Business","status":"Success"}
//
// The reader is a small, strict JSON-object parser specialized to this flat
// schema: unknown keys are errors (they signal a schema mismatch, not data
// to silently drop), and malformed lines are reported with line numbers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/csv.h"  // reuse CsvError for per-line error reporting
#include "telemetry/dataset.h"

namespace autosens::telemetry {

struct JsonlReadResult {
  Dataset dataset;
  std::vector<CsvError> errors;
};

void write_jsonl(std::ostream& out, const Dataset& dataset);
void write_jsonl_file(const std::string& path, const Dataset& dataset);

JsonlReadResult read_jsonl(std::istream& in);
JsonlReadResult read_jsonl_file(const std::string& path);

}  // namespace autosens::telemetry
