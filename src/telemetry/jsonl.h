// JSON-lines telemetry interchange: one JSON object per line, the format
// most log pipelines (jq, BigQuery exports, vector.dev, etc.) speak.
//
//   {"time_ms":1000,"user_id":42,"action":"SelectMail","latency_ms":123.4,
//    "user_class":"Business","status":"Success"}
//
// The reader is a small, strict JSON-object parser specialized to this flat
// schema: unknown keys are errors (they signal a schema mismatch, not data
// to silently drop), and malformed lines are reported with line numbers.
//
// Like the CSV reader, reads run on the parallel zero-copy ingest engine
// (ingest.h): mmap + newline-aligned chunks + string_view slices, with
// results byte-identical for every thread count. UTF-8 BOM, CRLF, and a
// missing trailing newline are normalized identically in the chunked and
// scalar paths.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/csv.h"  // reuse CsvError for per-line error reporting
#include "telemetry/dataset.h"
#include "telemetry/ingest.h"

namespace autosens::telemetry {

struct JsonlReadResult {
  Dataset dataset;
  std::vector<CsvError> errors;
};

void write_jsonl(std::ostream& out, const Dataset& dataset);
void write_jsonl_file(const std::string& path, const Dataset& dataset);

/// Read JSON-lines. Same entry-point semantics as the CSV reader: the
/// buffer form parses in place, the stream form slurps first, the file
/// form memory-maps; identical output for every `options.threads` value.
JsonlReadResult read_jsonl_buffer(std::string_view text, const IngestOptions& options = {});
JsonlReadResult read_jsonl(std::istream& in, const IngestOptions& options = {});
JsonlReadResult read_jsonl_file(const std::string& path, const IngestOptions& options = {});

/// Scalar reference reader (std::getline loop), kept as the oracle for the
/// parser-parity property tests and the seed-path benchmark baseline.
JsonlReadResult read_jsonl_scalar(std::istream& in);

}  // namespace autosens::telemetry
