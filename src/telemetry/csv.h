// CSV import/export of ActionRecords. The on-disk schema is the minimal
// telemetry of the paper (§2.1): time_ms,user_id,action,latency_ms,
// user_class,status — with a header row. Parsing is strict: malformed rows
// are reported with line numbers rather than silently dropped.
//
// Reads go through the parallel zero-copy ingest engine (ingest.h): files
// are memory-mapped and parsed in newline-aligned chunks with
// std::from_chars over string_view slices, no per-line heap allocations.
// The result is byte-identical for every thread count. A UTF-8 BOM before
// the header, CRLF line endings, and a missing trailing newline are all
// tolerated, identically in the chunked and scalar paths.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/dataset.h"
#include "telemetry/ingest.h"

namespace autosens::telemetry {

/// The canonical header row.
inline constexpr const char* kCsvHeader = "time_ms,user_id,action,latency_ms,user_class,status";

/// One rejected input row (shared shape with the other text readers).
using CsvError = IngestError;

/// Result of a CSV read: accepted records plus per-row errors.
struct CsvReadResult {
  Dataset dataset;
  std::vector<CsvError> errors;
};

/// Write `dataset` as CSV (header + one row per record).
void write_csv(std::ostream& out, const Dataset& dataset);
void write_csv_file(const std::string& path, const Dataset& dataset);

/// Read records from CSV. The header row is validated; a wrong header is a
/// fatal std::runtime_error (it means the file is not this schema at all),
/// while individually malformed data rows are collected into `errors`.
///
/// The buffer entry point parses in place (zero copies); the stream entry
/// point slurps the stream first (pipes and string streams welcome); the
/// file entry point memory-maps. All three produce identical results for
/// every `options.threads` value.
CsvReadResult read_csv_buffer(std::string_view text, const IngestOptions& options = {});
CsvReadResult read_csv(std::istream& in, const IngestOptions& options = {});
CsvReadResult read_csv_file(const std::string& path, const IngestOptions& options = {});

/// The pre-ingest-engine scalar reference reader (std::getline, row-by-row
/// appends). Kept as the independent oracle for the parser-parity property
/// tests and the seed-path benchmark baseline; not a hot path.
CsvReadResult read_csv_scalar(std::istream& in);

}  // namespace autosens::telemetry
