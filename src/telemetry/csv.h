// CSV import/export of ActionRecords. The on-disk schema is the minimal
// telemetry of the paper (§2.1): time_ms,user_id,action,latency_ms,
// user_class,status — with a header row. Parsing is strict: malformed rows
// are reported with line numbers rather than silently dropped.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/dataset.h"

namespace autosens::telemetry {

/// The canonical header row.
inline constexpr const char* kCsvHeader = "time_ms,user_id,action,latency_ms,user_class,status";

/// One rejected input row.
struct CsvError {
  std::size_t line = 0;     ///< 1-based line number in the input.
  std::string message;      ///< What was wrong.
};

/// Result of a CSV read: accepted records plus per-row errors.
struct CsvReadResult {
  Dataset dataset;
  std::vector<CsvError> errors;
};

/// Write `dataset` as CSV (header + one row per record).
void write_csv(std::ostream& out, const Dataset& dataset);
void write_csv_file(const std::string& path, const Dataset& dataset);

/// Read records from CSV. The header row is validated; a wrong header is a
/// fatal std::runtime_error (it means the file is not this schema at all),
/// while individually malformed data rows are collected into `errors`.
CsvReadResult read_csv(std::istream& in);
CsvReadResult read_csv_file(const std::string& path);

}  // namespace autosens::telemetry
