// Dataset sanity validation. Real telemetry is messy: negative or absurd
// latencies, clock skew, error rows. The paper's pipeline keeps only
// successful actions (§3.1); this module implements that scrub and reports
// exactly what was dropped and why.
#pragma once

#include <cstddef>
#include <string>

#include "telemetry/dataset.h"

namespace autosens::telemetry {

/// Validation policy.
struct ValidationOptions {
  double min_latency_ms = 0.0;       ///< Drop below this (exclusive of 0: <= 0 drops).
  double max_latency_ms = 60'000.0;  ///< Drop above this (client timeouts, skew).
  bool successful_only = true;       ///< Drop records with status == kError.
};

/// Per-reason drop accounting.
struct ValidationReport {
  std::size_t total = 0;
  std::size_t kept = 0;
  std::size_t dropped_error_status = 0;
  std::size_t dropped_nonpositive_latency = 0;
  std::size_t dropped_excessive_latency = 0;
  std::size_t dropped_nonfinite_latency = 0;

  std::size_t dropped() const noexcept { return total - kept; }
  std::string summary() const;
};

/// Result of scrubbing.
struct ValidatedDataset {
  Dataset dataset;  ///< Kept records, sorted by time.
  ValidationReport report;
};

ValidatedDataset validate(const Dataset& input, const ValidationOptions& options = {});

}  // namespace autosens::telemetry
