// Dataset sanity validation. Real telemetry is messy: negative or absurd
// latencies, clock skew, error rows. The paper's pipeline keeps only
// successful actions (§3.1); this module implements that scrub and reports
// exactly what was dropped and why. Drop counts are also mirrored into the
// obs metrics registry (autosens_validate_dropped_total{reason=...}) so a
// silently lossy measurement path shows up in any metrics snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "telemetry/dataset.h"

namespace autosens::telemetry {

/// Validation policy.
struct ValidationOptions {
  double min_latency_ms = 0.0;       ///< Drop below this (exclusive of 0: <= 0 drops).
  double max_latency_ms = 60'000.0;  ///< Drop above this (client timeouts, skew).
  bool successful_only = true;       ///< Drop records with status == kError.
  /// Timestamps before this are clock-skew garbage (pre-epoch by default).
  std::int64_t min_time_ms = 0;
  /// Optional observation window: records outside [window_begin_ms,
  /// window_end_ms) are dropped. Disabled by default.
  std::int64_t window_begin_ms = std::numeric_limits<std::int64_t>::min();
  std::int64_t window_end_ms = std::numeric_limits<std::int64_t>::max();
};

/// Per-reason drop accounting.
struct ValidationReport {
  std::size_t total = 0;
  std::size_t kept = 0;
  std::size_t dropped_error_status = 0;
  std::size_t dropped_nonpositive_latency = 0;
  std::size_t dropped_excessive_latency = 0;
  std::size_t dropped_nonfinite_latency = 0;
  std::size_t dropped_bad_timestamp = 0;
  std::size_t dropped_out_of_window = 0;

  std::size_t dropped() const noexcept { return total - kept; }
  std::string summary() const;
  /// Compact single-line form for end-of-run stderr reporting:
  /// `kept 120/128 (dropped: error-status 5, bad-timestamp 3)` — zero-count
  /// reasons are omitted.
  std::string one_line() const;
};

/// Result of scrubbing.
struct ValidatedDataset {
  Dataset dataset;  ///< Kept records, sorted by time.
  ValidationReport report;
};

ValidatedDataset validate(const Dataset& input, const ValidationOptions& options = {});

}  // namespace autosens::telemetry
