// Parallel zero-copy ingest engine for the telemetry readers.
//
// The pieces, bottom to top:
//
//  * MappedFile — read-only byte source for a whole input. Regular files are
//    memory-mapped (mmap, PROT_READ/MAP_PRIVATE, MADV_SEQUENTIAL); pipes,
//    FIFOs, and other non-mappable inputs fall back to a read-whole-stream
//    buffer with the same interface. The view stays valid for the lifetime
//    of the MappedFile object and parsers slice std::string_views straight
//    out of it — no per-line copies anywhere on the hot path.
//
//  * newline_chunk_bounds — splits a text buffer into newline-aligned chunks
//    on the same fixed-grid policy as core::make_chunk_grid: the boundaries
//    are a function of the byte count alone, never of the thread count, so
//    parallel parses are deterministic under any scheduling.
//
//  * ingest_lines — the chunked parallel line-parse driver. Each chunk
//    parses its lines with std::from_chars over string_view slices into a
//    private ColumnShard (SampleColumns-shaped: one vector per Dataset
//    column) plus a local error list; shards are concatenated IN CHUNK ORDER
//    through Dataset::append_columns, and error line numbers are
//    offset-corrected by a prefix sum of per-chunk line counts. Because
//    lines are atomic and concatenation preserves file order, the resulting
//    Dataset and error list are byte-identical for every thread count (and
//    in fact for every chunking policy).
//
// csv.cpp and jsonl.cpp supply the per-line parsers; binlog.cpp has its own
// frame-parallel zero-copy path (see binlog.h). See DESIGN.md
// "Ingest & file I/O" for the determinism argument and mmap lifetime rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/parallel.h"
#include "telemetry/dataset.h"

namespace autosens::telemetry {

/// Tuning knobs for a parallel ingest. The defaults are right for files;
/// tests shrink chunk_bytes to exercise many chunks on small inputs.
struct IngestOptions {
  /// Worker threads for the chunk parse: 0 = all hardware threads, 1 =
  /// serial. The parsed output is identical for every value.
  std::size_t threads = 0;
  /// Minimum bytes per parse chunk before newline alignment. Part of the
  /// fixed chunk-grid policy; the parsed output does not depend on it.
  std::size_t chunk_bytes = 1u << 20;
};

/// One rejected input line (1-based line number in the whole input).
struct IngestError {
  std::size_t line = 0;
  std::string message;

  friend bool operator==(const IngestError&, const IngestError&) = default;
};

/// Throughput accounting for one ingest, also mirrored into the obs
/// registry by note_ingest().
struct IngestStats {
  std::size_t bytes = 0;    ///< Input bytes consumed.
  std::size_t records = 0;  ///< Records accepted.
  std::size_t errors = 0;   ///< Lines / frames rejected.
  double seconds = 0.0;     ///< Wall-clock parse time.
  bool mapped = false;      ///< True when the input was mmap-backed.
};

/// Read-only view over a whole input: mmap for regular files, an owned
/// buffer for everything else. Movable, not copyable; the text()/bytes()
/// views are valid until destruction/move.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Map `path`. Regular non-empty files are mmap'd; anything else readable
  /// (FIFOs, /proc files, ...) is slurped into a fallback buffer. Throws
  /// std::runtime_error when the path cannot be opened or read.
  static MappedFile map(const std::string& path);
  /// Slurp an already-open stream (the std::istream reader entry points).
  static MappedFile read_stream(std::istream& in);

  std::string_view text() const noexcept {
    return {static_cast<const char*>(data_), size_};
  }
  std::span<const std::uint8_t> bytes() const noexcept {
    return {static_cast<const std::uint8_t*>(data_), size_};
  }
  std::size_t size() const noexcept { return size_; }
  /// True when backed by an actual memory mapping (vs the stream fallback).
  bool is_mapped() const noexcept { return map_base_ != nullptr; }

 private:
  const void* data_ = "";       ///< Never null, so text() is always valid.
  std::size_t size_ = 0;
  void* map_base_ = nullptr;    ///< mmap base when mapped, else nullptr.
  std::size_t map_length_ = 0;
  std::vector<char> buffer_;    ///< Fallback storage when not mapped.

  void reset() noexcept;
};

/// Newline-aligned chunk boundaries over `text`: bounds[c]..bounds[c+1] is
/// chunk c, bounds.front() == 0, bounds.back() == text.size(), and every
/// interior boundary sits just after a '\n'. The underlying grid is a
/// function of text.size() and the policy knobs only (fixed-grid
/// determinism); chunks can be empty when a single line spans several grid
/// cells. Always returns at least one chunk.
std::vector<std::size_t> newline_chunk_bounds(
    std::string_view text, std::size_t chunk_bytes,
    std::size_t max_chunks = core::kDefaultMaxChunks);

/// Strip a UTF-8 byte-order mark, if present, from the front of `text`.
std::string_view strip_utf8_bom(std::string_view text) noexcept;

/// Mirror one finished ingest into the obs registry: per-format
/// bytes/records/parse-error counters plus bytes-per-second and
/// records-per-second gauges. `format` must be a string literal
/// ("csv", "jsonl", "binlog", "logdir").
void note_ingest(std::string_view format, const IngestStats& stats);

/// What a per-line parser did with one line.
enum class LineParse {
  kRecord,  ///< Parsed a record (out-param filled).
  kSkip,    ///< Blank/ignorable line.
  kError,   ///< Malformed; error message filled.
};

namespace detail {

/// Per-chunk parse output: the six Dataset columns plus chunk-local errors.
struct ColumnShard {
  std::vector<std::int64_t> time_ms;
  std::vector<double> latency_ms;
  std::vector<std::uint64_t> user_id;
  std::vector<ActionType> action;
  std::vector<UserClass> user_class;
  std::vector<ActionStatus> status;
  std::vector<IngestError> errors;  ///< Line numbers local to the chunk (1-based).
  std::size_t lines = 0;            ///< Total lines the chunk contained.

  void push(const ActionRecord& r) {
    time_ms.push_back(r.time_ms);
    latency_ms.push_back(r.latency_ms);
    user_id.push_back(r.user_id);
    action.push_back(r.action);
    user_class.push_back(r.user_class);
    status.push_back(r.status);
  }
  void reserve(std::size_t n) {
    time_ms.reserve(n);
    latency_ms.reserve(n);
    user_id.reserve(n);
    action.reserve(n);
    user_class.reserve(n);
    status.reserve(n);
  }
  std::size_t size() const noexcept { return time_ms.size(); }
};

/// Concatenate shards in chunk order into `dataset` (bulk column appends)
/// and offset-correct each shard's error line numbers into `errors`.
/// `first_line` is the global 1-based line number of the first chunked line.
void concat_shards(std::vector<ColumnShard>& shards, std::size_t first_line,
                   Dataset& dataset, std::vector<IngestError>& errors);

/// Clinger fast-path double parse: when the value has few enough significant
/// digits that both the mantissa and the power of ten are exactly
/// representable, one multiply/divide gives the correctly-rounded result —
/// bit-identical to std::from_chars, which remains the fallback for
/// everything else (long mantissas, large exponents, inf/nan, hex).
bool parse_double(std::string_view text, double& out) noexcept;

}  // namespace detail

/// Result of a chunked line ingest (before any format-specific wrapping).
struct IngestResult {
  Dataset dataset;
  std::vector<IngestError> errors;
  IngestStats stats;
};

/// The chunked parallel parse driver. `parse_chunk` is invoked as
///   void parse_chunk(std::string_view chunk, detail::ColumnShard& shard)
/// for every newline-aligned chunk of `text` and must append records/errors
/// to the shard (error line numbers 1-based within the chunk) and count
/// every line the chunk contained in shard.lines. Chunk parsers fuse the
/// newline scan into their field scan — one pass over the bytes instead of
/// a memchr('\n') pass followed by a field pass. Records land in file
/// order, then the dataset is time-sorted (stable, so the order is
/// reproducible); errors carry global line numbers starting at
/// `first_line`. Output is identical for every threads value.
template <typename ChunkParser>
IngestResult ingest_chunks(std::string_view text, std::size_t first_line,
                           const IngestOptions& options, const ChunkParser& parse_chunk) {
  IngestResult result;
  const auto bounds = newline_chunk_bounds(text, options.chunk_bytes);
  const std::size_t chunks = bounds.size() - 1;
  std::vector<detail::ColumnShard> shards(chunks);
  core::parallel_for_items(chunks, options.threads, [&](std::size_t c) {
    parse_chunk(text.substr(bounds[c], bounds[c + 1] - bounds[c]), shards[c]);
  });
  detail::concat_shards(shards, first_line, result.dataset, result.errors);
  result.dataset.sort_by_time();
  result.stats.bytes = text.size();
  result.stats.records = result.dataset.size();
  result.stats.errors = result.errors.size();
  return result;
}

/// Line-at-a-time wrapper over ingest_chunks. `parse_line` is invoked as
///   LineParse parse_line(std::string_view line, ActionRecord& record,
///                        std::string& error)
/// for every '\n'-delimited line of `text` (terminator excluded; a missing
/// trailing newline still yields the final line). csv.cpp and jsonl.cpp use
/// fused chunk parsers instead; this wrapper remains for formats without
/// one and as the reference the parity tests compare them against.
template <typename LineParser>
IngestResult ingest_lines(std::string_view text, std::size_t first_line,
                          const IngestOptions& options, const LineParser& parse_line) {
  return ingest_chunks(
      text, first_line, options,
      [&parse_line](std::string_view chunk, detail::ColumnShard& shard) {
        // Rough reservation: the schema averages well above 16 bytes per line.
        shard.time_ms.reserve(chunk.size() / 24 + 1);
        std::string_view rest = chunk;
        ActionRecord record;
        std::string error;
        while (!rest.empty()) {
          const std::size_t newline = rest.find('\n');
          const std::string_view line =
              newline == std::string_view::npos ? rest : rest.substr(0, newline);
          rest = newline == std::string_view::npos ? std::string_view{}
                                                   : rest.substr(newline + 1);
          ++shard.lines;
          switch (parse_line(line, record, error)) {
            case LineParse::kRecord:
              shard.push(record);
              break;
            case LineParse::kSkip:
              break;
            case LineParse::kError:
              shard.errors.push_back({shard.lines, std::move(error)});
              error.clear();
              break;
          }
        }
      });
}

}  // namespace autosens::telemetry
