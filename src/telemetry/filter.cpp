#include "telemetry/filter.h"

#include <stdexcept>

#include "stats/descriptive.h"

namespace autosens::telemetry {

RecordPredicate by_action(ActionType type) {
  return [type](const ActionRecord& r) { return r.action == type; };
}

RecordPredicate by_user_class(UserClass user_class) {
  return [user_class](const ActionRecord& r) { return r.user_class == user_class; };
}

RecordPredicate by_status(ActionStatus status) {
  return [status](const ActionRecord& r) { return r.status == status; };
}

RecordPredicate by_period(DayPeriod period) {
  return [period](const ActionRecord& r) { return day_period(r.time_ms) == period; };
}

RecordPredicate by_month(std::int64_t month) {
  return [month](const ActionRecord& r) { return month_index(r.time_ms) == month; };
}

RecordPredicate by_time_range(std::int64_t begin_ms, std::int64_t end_ms) {
  return [begin_ms, end_ms](const ActionRecord& r) {
    return r.time_ms >= begin_ms && r.time_ms < end_ms;
  };
}

RecordPredicate all_of(std::vector<RecordPredicate> predicates) {
  return [predicates = std::move(predicates)](const ActionRecord& r) {
    for (const auto& p : predicates) {
      if (!p(r)) return false;
    }
    return true;
  };
}

UserQuartiles::UserQuartiles(const Dataset& dataset)
    : UserQuartiles(dataset.per_user_median_latency()) {}

UserQuartiles::UserQuartiles(const std::unordered_map<std::uint64_t, double>& medians) {
  if (medians.empty()) throw std::invalid_argument("UserQuartiles: dataset has no users");
  std::vector<double> values;
  values.reserve(medians.size());
  for (const auto& [user, median] : medians) values.push_back(median);
  boundaries_ = {stats::quantile(values, 0.25), stats::quantile(values, 0.50),
                 stats::quantile(values, 0.75)};
  assignment_.reserve(medians.size());
  for (const auto& [user, median] : medians) {
    int q = 0;
    while (q < 3 && median > boundaries_[static_cast<std::size_t>(q)]) ++q;
    assignment_.emplace(user, q);
  }
}

int UserQuartiles::quartile_of(std::uint64_t user_id) const {
  const auto it = assignment_.find(user_id);
  if (it == assignment_.end()) {
    throw std::invalid_argument("UserQuartiles: unknown user id");
  }
  return it->second;
}

RecordPredicate UserQuartiles::in_quartile(int q) const {
  if (q < 0 || q >= kQuartileCount) {
    throw std::invalid_argument("UserQuartiles::in_quartile: q outside [0,4)");
  }
  // Capture the map by value so the predicate outlives this object safely.
  return [assignment = assignment_, q](const ActionRecord& r) {
    const auto it = assignment.find(r.user_id);
    return it != assignment.end() && it->second == q;
  };
}

}  // namespace autosens::telemetry
