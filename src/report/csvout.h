// CSV export of analysis results, so figures can be re-plotted with external
// tools. One file per figure: a long-format table (series, x, y).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/preference.h"
#include "core/slices.h"
#include "report/ascii_chart.h"

namespace autosens::report {

/// Write named preference curves as long-format CSV:
/// series,latency_ms,normalized_preference
void write_preference_csv(std::ostream& out, std::span<const core::NamedPreference> curves);
void write_preference_csv_file(const std::string& path,
                               std::span<const core::NamedPreference> curves);

/// Write generic chart series as long-format CSV: series,x,y
void write_series_csv(std::ostream& out, std::span<const Series> series);
void write_series_csv_file(const std::string& path, std::span<const Series> series);

/// Downsample a preference curve to a plottable Series (every `stride` bins
/// of the supported range).
Series to_series(const core::NamedPreference& curve, std::size_t stride = 5);

}  // namespace autosens::report
