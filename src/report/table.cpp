#include "report/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace autosens::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace autosens::report
