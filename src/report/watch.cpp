#include "report/watch.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace autosens::report {
namespace {

/// Metric family of a sample name (labels stripped).
std::string base_name(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_counter_name(const std::string& name) {
  return ends_with(base_name(name), "_total") || ends_with(base_name(name), "_count");
}

bool is_bucket_series(const std::string& name) {
  return ends_with(base_name(name), "_bucket");
}

}  // namespace

std::vector<WatchRow> watch_rows(const std::vector<obs::Sample>& previous,
                                 const std::vector<obs::Sample>& current,
                                 double dt_seconds) {
  std::unordered_map<std::string, double> before;
  before.reserve(previous.size());
  for (const auto& sample : previous) before.emplace(sample.name, sample.value);

  std::vector<WatchRow> rows;
  rows.reserve(current.size());
  for (const auto& sample : current) {
    if (is_bucket_series(sample.name)) continue;
    WatchRow row{.name = sample.name, .value = sample.value, .rate_per_s = {}};
    if (is_counter_name(sample.name) && dt_seconds > 0.0) {
      const auto it = before.find(sample.name);
      if (it != before.end()) {
        // A restarted process resets its counters; clamp instead of showing
        // a large negative rate.
        row.rate_per_s = std::max(0.0, (sample.value - it->second) / dt_seconds);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Table watch_table(const std::vector<WatchRow>& rows, bool hide_zero) {
  Table table({"metric", "value", "rate/s"});
  for (const auto& row : rows) {
    const bool moving = row.rate_per_s.has_value() && *row.rate_per_s > 0.0;
    if (hide_zero && row.value == 0.0 && !moving) continue;
    table.add_row({row.name, si_value(row.value),
                   row.rate_per_s.has_value() ? si_value(*row.rate_per_s) : "-"});
  }
  return table;
}

std::string si_value(double value) {
  const double magnitude = std::fabs(value);
  const char* suffix = "";
  double scaled = value;
  if (magnitude >= 1e9) {
    suffix = "G";
    scaled = value / 1e9;
  } else if (magnitude >= 1e6) {
    suffix = "M";
    scaled = value / 1e6;
  } else if (magnitude >= 1e3) {
    suffix = "k";
    scaled = value / 1e3;
  }
  char buffer[64];
  if (*suffix == '\0' && scaled == std::floor(scaled) && magnitude < 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", scaled);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f%s", scaled, suffix);
  }
  return buffer;
}

}  // namespace autosens::report
