#include "report/compare.h"

#include <ostream>

#include "report/table.h"

namespace autosens::report {

void Comparison::check(const core::PreferenceResult& curve, double latency_ms,
                       double expected, double tolerance) {
  Row row;
  row.label = Table::num(latency_ms, 0) + " ms";
  row.check.latency_ms = latency_ms;
  row.check.expected = expected;
  row.check.tolerance = tolerance;
  if (curve.covers(latency_ms)) {
    row.check.measured = curve.at(latency_ms);
  } else {
    row.supported = false;
  }
  rows_.push_back(std::move(row));
}

void Comparison::check_value(const std::string& label, double expected, double measured,
                             double tolerance) {
  Row row;
  row.label = label;
  row.check.expected = expected;
  row.check.measured = measured;
  row.check.tolerance = tolerance;
  rows_.push_back(std::move(row));
}

bool Comparison::all_within() const noexcept { return failures() == 0; }

std::size_t Comparison::failures() const noexcept {
  std::size_t count = 0;
  for (const auto& row : rows_) {
    if (!row.supported || !row.check.within()) ++count;
  }
  return count;
}

void Comparison::print(std::ostream& out) const {
  out << "== " << title_ << " ==\n";
  Table table({"anchor", "paper/planted", "measured", "|delta|", "tol", "ok"});
  for (const auto& row : rows_) {
    const double delta = row.check.measured - row.check.expected;
    table.add_row({row.label, Table::num(row.check.expected),
                   row.supported ? Table::num(row.check.measured) : "unsupported",
                   row.supported ? Table::num(delta < 0 ? -delta : delta) : "-",
                   Table::num(row.check.tolerance),
                   row.supported && row.check.within() ? "yes" : "NO"});
  }
  table.print(out);
  out << (all_within() ? "[SHAPE OK]" : "[SHAPE DEVIATION]") << " " << title_ << "\n\n";
}

}  // namespace autosens::report
