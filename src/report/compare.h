// Paper-vs-measured comparison: every figure bench declares the values the
// paper reports (or the planted ground truth) at anchor latencies, and this
// module prints the side-by-side rows and checks tolerances. The benches'
// success criterion is *shape* agreement, per the reproduction contract.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/preference.h"

namespace autosens::report {

struct AnchorCheck {
  double latency_ms = 0.0;
  double expected = 0.0;   ///< Paper-reported or planted value.
  double measured = 0.0;
  double tolerance = 0.0;
  bool within() const noexcept {
    const double delta = measured - expected;
    return (delta < 0 ? -delta : delta) <= tolerance;
  }
};

class Comparison {
 public:
  explicit Comparison(std::string title) : title_(std::move(title)) {}

  /// Record one anchor: measured is read from the curve (interpolated).
  /// Anchors outside the curve's support are recorded as failed.
  void check(const core::PreferenceResult& curve, double latency_ms, double expected,
             double tolerance);
  /// Record an externally computed scalar.
  void check_value(const std::string& label, double expected, double measured,
                   double tolerance);

  bool all_within() const noexcept;
  std::size_t failures() const noexcept;

  /// Print "paper vs measured" rows with pass/fail marks.
  void print(std::ostream& out) const;

 private:
  struct Row {
    std::string label;
    AnchorCheck check;
    bool supported = true;
  };
  std::string title_;
  std::vector<Row> rows_;
};

}  // namespace autosens::report
