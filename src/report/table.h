// Aligned plain-text tables for bench and example output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace autosens::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; it must have as many cells as there are headers
  /// (std::invalid_argument otherwise).
  void add_row(std::vector<std::string> cells);

  /// Number formatting helper: fixed decimals.
  static std::string num(double value, int decimals = 3);

  /// Render with column alignment and a header underline.
  void print(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autosens::report
