// Live metrics watch: joins two /metrics scrapes into top-style rows (level
// + per-second rate) rendered through report::Table. Powers the `autosens
// watch <url>` subcommand.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "report/table.h"

namespace autosens::report {

struct WatchRow {
  std::string name;
  double value = 0.0;
  /// Per-second rate for `*_total` counters; absent for gauges and on the
  /// first scrape (no previous value to diff against).
  std::optional<double> rate_per_s;
};

/// Join two scrapes `dt_seconds` apart. `_bucket` histogram series are
/// dropped (the `_count` rate is the live signal; the full distribution
/// belongs in /metrics, not a terminal table); counter rates clamp at 0
/// across process restarts. Rows keep the sorted order of `current`.
std::vector<WatchRow> watch_rows(const std::vector<obs::Sample>& previous,
                                 const std::vector<obs::Sample>& current,
                                 double dt_seconds);

/// Render rows as the watch table (metric / value / per-second rate).
/// `hide_zero` drops rows whose value and rate are both zero — the live
/// view shows what is moving, not the whole registry.
Table watch_table(const std::vector<WatchRow>& rows, bool hide_zero = true);

/// Human scale: 1234567 → "1.23M", 4096 → "4.10k"; small values keep two
/// decimals ("0.52").
std::string si_value(double value);

}  // namespace autosens::report
