#include "report/csvout.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace autosens::report {

void write_preference_csv(std::ostream& out, std::span<const core::NamedPreference> curves) {
  out << "series,latency_ms,normalized_preference\n";
  for (const auto& curve : curves) {
    const auto& r = curve.result;
    for (std::size_t i = r.support_begin; i < r.support_end; ++i) {
      out << curve.name << ',' << r.latency_ms[i] << ',' << r.normalized[i] << '\n';
    }
  }
}

void write_preference_csv_file(const std::string& path,
                               std::span<const core::NamedPreference> curves) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_preference_csv_file: cannot open " + path);
  write_preference_csv(out, curves);
}

void write_series_csv(std::ostream& out, std::span<const Series> series) {
  out << "series,x,y\n";
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size() && i < s.y.size(); ++i) {
      out << s.name << ',' << s.x[i] << ',' << s.y[i] << '\n';
    }
  }
}

void write_series_csv_file(const std::string& path, std::span<const Series> series) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_series_csv_file: cannot open " + path);
  write_series_csv(out, series);
}

Series to_series(const core::NamedPreference& curve, std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("to_series: zero stride");
  Series series;
  series.name = curve.name;
  const auto& r = curve.result;
  for (std::size_t i = r.support_begin; i < r.support_end; i += stride) {
    series.x.push_back(r.latency_ms[i]);
    series.y.push_back(r.normalized[i]);
  }
  return series;
}

}  // namespace autosens::report
