#include "report/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace autosens::report {
namespace {

constexpr const char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

struct Extent {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void add(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  double span() const { return hi > lo ? hi - lo : 1.0; }
};

std::string format_tick(double v) {
  std::ostringstream out;
  if (std::abs(v) >= 100.0 || v == std::floor(v)) {
    out << std::fixed << std::setprecision(0) << v;
  } else {
    out << std::fixed << std::setprecision(2) << v;
  }
  return out.str();
}

}  // namespace

void render_chart(std::ostream& out, std::span<const Series> series,
                  const ChartOptions& options) {
  Extent xs;
  Extent ys;
  for (const auto& s : series) {
    if (s.x.size() < 2 || s.x.size() != s.y.size()) continue;
    for (const double v : s.x) xs.add(v);
    for (const double v : s.y) ys.add(v);
  }
  if (!xs.valid() || !ys.valid()) {
    out << "(chart: no drawable series)\n";
    return;
  }

  const int width = std::max(options.width, 10);
  const int height = std::max(options.height, 4);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));

  std::size_t glyph_index = 0;
  for (const auto& s : series) {
    if (s.x.size() < 2 || s.x.size() != s.y.size()) continue;
    const char glyph = kGlyphs[glyph_index % sizeof kGlyphs];
    ++glyph_index;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int col = static_cast<int>((s.x[i] - xs.lo) / xs.span() * (width - 1) + 0.5);
      const int row =
          height - 1 - static_cast<int>((s.y[i] - ys.lo) / ys.span() * (height - 1) + 0.5);
      if (col < 0 || col >= width || row < 0 || row >= height) continue;
      auto& cell = grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      // First series wins on collisions unless the cell is empty.
      if (cell == ' ') cell = glyph;
    }
  }

  if (!options.title.empty()) out << options.title << '\n';
  const std::string y_hi = format_tick(ys.hi);
  const std::string y_lo = format_tick(ys.lo);
  const std::size_t margin = std::max(y_hi.size(), y_lo.size()) + 1;
  for (int r = 0; r < height; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = y_hi + std::string(margin - y_hi.size(), ' ');
    if (r == height - 1) label = y_lo + std::string(margin - y_lo.size(), ' ');
    out << label << '|' << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(margin, ' ') << '+' << std::string(static_cast<std::size_t>(width), '-')
      << '\n';
  const std::string x_lo = format_tick(xs.lo);
  const std::string x_hi = format_tick(xs.hi);
  out << std::string(margin + 1, ' ') << x_lo
      << std::string(static_cast<std::size_t>(std::max<int>(
                         1, width - static_cast<int>(x_lo.size() + x_hi.size()))),
                     ' ')
      << x_hi << "  (" << options.x_label << ")\n";

  out << "legend:";
  glyph_index = 0;
  for (const auto& s : series) {
    if (s.x.size() < 2 || s.x.size() != s.y.size()) continue;
    out << "  [" << kGlyphs[glyph_index % sizeof kGlyphs] << "] " << s.name;
    ++glyph_index;
  }
  out << "   y: " << options.y_label << '\n';
}

}  // namespace autosens::report
