// Terminal line charts: multiple named series over a shared x-axis, rendered
// into a fixed character grid. Used by the benches to draw the paper's
// figures directly in the console output.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace autosens::report {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

struct ChartOptions {
  int width = 78;    ///< Plot area columns.
  int height = 20;   ///< Plot area rows.
  std::string x_label = "x";
  std::string y_label = "y";
  std::string title;
};

/// Render the series into `out`. Each series is drawn with its own glyph
/// ('*', '+', 'o', 'x', ...); a legend maps glyphs to names. Series with
/// fewer than 2 points are skipped.
void render_chart(std::ostream& out, std::span<const Series> series,
                  const ChartOptions& options);

}  // namespace autosens::report
