// Global registry mirrors of the per-instance collector counters, shared by
// the sharded epoll collector (net/collector.h) and the preserved poll()
// baseline (net/collector_poll.h) so a process-wide metrics snapshot sees
// one ingest path regardless of which implementation served it. The obs
// registry dedups by metric name, so both callers get the same handles.
#pragma once

#include "obs/metrics.h"

namespace autosens::net {

struct CollectorMetrics {
  obs::Counter& connections = obs::registry().counter(
      "autosens_collector_connections_total", "Emitter connections accepted");
  obs::Counter& frames = obs::registry().counter(
      "autosens_collector_frames_total", "Wire frames decoded");
  obs::Counter& records = obs::registry().counter(
      "autosens_collector_records_total", "Telemetry records ingested");
  obs::Counter& flushes = obs::registry().counter(
      "autosens_collector_flushes_total", "Flush markers received");
  obs::Counter& drops = obs::registry().counter(
      "autosens_collector_dropped_connections_total",
      "Connections dropped on protocol or transport error");
  obs::Counter& bytes = obs::registry().counter(
      "autosens_collector_bytes_total", "Payload bytes received");
  obs::Counter& backpressure = obs::registry().counter(
      "autosens_collector_backpressure_reads_total",
      "recv() calls that filled the whole buffer (ingest running behind)");
  obs::Counter& resyncs = obs::registry().counter(
      "autosens_net_resyncs_total",
      "Damaged byte runs scanned past to the next valid frame");
  obs::Counter& resync_bytes = obs::registry().counter(
      "autosens_net_resync_bytes_total", "Garbage bytes discarded by frame resync");
  obs::Counter& dedup_hits = obs::registry().counter(
      "autosens_net_dedup_hits_total",
      "Retransmitted frames dropped by (session, seq) dedup");
  obs::Counter& sessions = obs::registry().counter(
      "autosens_collector_sessions_total", "Distinct emitter sessions seen");
  obs::Gauge& sessions_active = obs::registry().gauge(
      "autosens_net_sessions_active",
      "Emitter sessions seen whose goodbye has not arrived yet");
  obs::Counter& session_reconnects = obs::registry().counter(
      "autosens_collector_session_reconnects_total",
      "Hello frames for an already-known session (emitter reconnects)");
  obs::Counter& deadline_drops = obs::registry().counter(
      "autosens_net_deadline_drops_total",
      "Connections dropped by the per-connection read deadline");
  obs::Counter& interrupted = obs::registry().counter(
      "autosens_collector_interrupted_connections_total",
      "Session connections that ended without a goodbye (retry artifacts "
      "or emitters that died)");
  obs::Gauge& idle_timeout_outcome = obs::registry().gauge(
      "autosens_collector_idle_timeout_outcome",
      "1 when the last serve loop ended on idle timeout, 0 when all "
      "goodbyes arrived");
  obs::Counter& udp_lost = obs::registry().counter(
      "autosens_net_udp_lost_total",
      "Datagram sequence gaps still open when their session finalized "
      "(exact per-session UDP loss accounting)");
  obs::Counter& udp_datagrams = obs::registry().counter(
      "autosens_net_udp_datagrams_total", "UDP datagrams accepted (CRC-valid hello)");
};

/// The process-wide handle set (constructed on first use).
CollectorMetrics& collector_metrics();

}  // namespace autosens::net
