#include "net/fault.h"

#include <sys/socket.h>

#include <cerrno>
#include <cmath>

#include "stats/rng.h"

namespace autosens::net {

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs) : seed_(seed) {
  for (const auto& spec : specs) {
    auto& state = classes_[static_cast<std::size_t>(spec.fault)];
    state.configured = true;
    state.probability = spec.probability;
    state.skip_ops = spec.skip_ops;
    state.max_injections = spec.max_injections;
    state.latency_ms = spec.latency_ms;
    state.storm_len = spec.storm_len;
  }
}

bool FaultPlan::fire(FaultClass fault) noexcept {
  auto& state = classes_[static_cast<std::size_t>(fault)];
  if (!state.configured) return false;
  const std::size_t op = state.ops_seen++;
  if (op < state.skip_ops) return false;
  if (injected_[static_cast<std::size_t>(fault)] >= state.max_injections) return false;
  if (state.probability < 1.0) {
    // Substream per (class, op index): the draw depends on nothing else, so
    // the schedule is identical however operations interleave in time.
    const std::uint64_t stream =
        seed_ ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(fault) + 1));
    stats::Random draw(stats::substream_seed(stream, op));
    if (draw.uniform() >= state.probability) return false;
  }
  ++injected_[static_cast<std::size_t>(fault)];
  return true;
}

std::uint32_t FaultPlan::latency_ms() const noexcept {
  return classes_[static_cast<std::size_t>(FaultClass::kLatency)].latency_ms;
}

std::size_t FaultPlan::storm_len() const noexcept {
  return classes_[static_cast<std::size_t>(FaultClass::kEagainStorm)].storm_len;
}

std::size_t FaultPlan::total_injected() const noexcept {
  std::size_t total = 0;
  for (const auto count : injected_) total += count;
  return total;
}

bool FaultySocketOps::storm_step_locked() noexcept {
  if (storm_remaining_ > 0) {
    --storm_remaining_;
    return true;
  }
  if (plan_.fire(FaultClass::kEagainStorm)) {
    const std::size_t len = plan_.storm_len();
    storm_remaining_ = len > 0 ? len - 1 : 0;
    return true;
  }
  return false;
}

int FaultySocketOps::connect_tcp_fd(std::uint16_t port) noexcept {
  {
    std::lock_guard lock(mutex_);
    if (plan_.fire(FaultClass::kLatency)) base_.sleep_ms(plan_.latency_ms());
    if (plan_.fire(FaultClass::kConnectRefused)) return -ECONNREFUSED;
  }
  return base_.connect_tcp_fd(port);
}

std::int64_t FaultySocketOps::send(int fd, const std::uint8_t* data,
                                   std::size_t len) noexcept {
  std::unique_lock lock(mutex_);
  if (plan_.fire(FaultClass::kLatency)) base_.sleep_ms(plan_.latency_ms());
  if (plan_.fire(FaultClass::kEagain)) return -EAGAIN;
  if (plan_.fire(FaultClass::kDisconnect)) {
    // Model a connection cut mid-frame: the peer receives a strict prefix of
    // the buffer, the sender sees a reset. Best-effort delivery of the
    // prefix; the error is what matters to the caller.
    if (len > 1) base_.send(fd, data, len / 2);
    return -ECONNRESET;
  }
  if (plan_.fire(FaultClass::kCorrupt)) {
    // Flip one deterministic bit, deliver the damaged bytes in full, then
    // report an I/O error so the sender knows this frame needs resending.
    // The receiver sees a CRC-invalid frame followed by a retransmission —
    // exactly the double-delivery the (session, seq) dedup exists for.
    std::vector<std::uint8_t> damaged(data, data + len);
    const std::size_t bit = (len * 8) / 2;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    std::size_t sent = 0;
    while (sent < damaged.size()) {
      const std::int64_t n = base_.send(fd, damaged.data() + sent, damaged.size() - sent);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    return -EIO;
  }
  if (plan_.fire(FaultClass::kShortWrite) && len > 1) {
    return base_.send(fd, data, 1 + len / 2);
  }
  lock.unlock();
  return base_.send(fd, data, len);
}

std::int64_t FaultySocketOps::recv(int fd, std::uint8_t* data, std::size_t len) noexcept {
  std::unique_lock lock(mutex_);
  if (plan_.fire(FaultClass::kLatency)) base_.sleep_ms(plan_.latency_ms());
  if (plan_.fire(FaultClass::kEagain)) return -EAGAIN;
  if (storm_step_locked()) return -EAGAIN;
  if (plan_.fire(FaultClass::kShortRead) && len > 1) {
    return base_.recv(fd, data, 1 + len / 2);
  }
  lock.unlock();
  return base_.recv(fd, data, len);
}

void FaultySocketOps::sleep_ms(std::uint32_t ms) noexcept {
  double scaled;
  {
    std::lock_guard lock(mutex_);
    slept_ms_ += ms;
    scaled = static_cast<double>(ms) * sleep_scale_;
  }
  base_.sleep_ms(static_cast<std::uint32_t>(std::lround(scaled)));
}

int FaultySocketOps::accept4_fd(int listen_fd) noexcept {
  {
    std::lock_guard lock(mutex_);
    if (plan_.fire(FaultClass::kEagain)) return -EAGAIN;
    if (storm_step_locked()) return -EAGAIN;
    if (plan_.fire(FaultClass::kConnectRefused)) return -ECONNABORTED;
  }
  return base_.accept4_fd(listen_fd);
}

int FaultySocketOps::epoll_wait(int epoll_fd, struct epoll_event* events, int max_events,
                                int timeout_ms) noexcept {
  {
    std::lock_guard lock(mutex_);
    // A storm at the wait site models spurious wakeups: report "nothing
    // ready" (0) without consuming the real readiness, so the loop must
    // tolerate wakeups that deliver no events.
    if (storm_step_locked()) return 0;
  }
  return base_.epoll_wait(epoll_fd, events, max_events, timeout_ms);
}

int FaultySocketOps::recvmmsg(int fd, struct mmsghdr* msgs, unsigned count) noexcept {
  {
    std::lock_guard lock(mutex_);
    if (plan_.fire(FaultClass::kLatency)) base_.sleep_ms(plan_.latency_ms());
    if (plan_.fire(FaultClass::kEagain)) return -EAGAIN;
    if (storm_step_locked()) return -EAGAIN;
  }
  const int n = base_.recvmmsg(fd, msgs, count);
  if (n <= 0) return n;
  std::lock_guard lock(mutex_);
  for (int i = 0; i < n; ++i) {
    auto& msg = msgs[static_cast<unsigned>(i)];
    const std::size_t len = msg.msg_len;
    if (len == 0 || msg.msg_hdr.msg_iovlen == 0) continue;
    auto* bytes = static_cast<std::uint8_t*>(msg.msg_hdr.msg_iov[0].iov_base);
    if (plan_.fire(FaultClass::kCorrupt)) {
      const std::size_t bit = (len * 8) / 2;
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    if (plan_.fire(FaultClass::kShortRead) && len > 1) {
      msg.msg_len = static_cast<unsigned>(1 + len / 2);
    }
  }
  return n;
}

int FaultySocketOps::sendmmsg(int fd, struct mmsghdr* msgs, unsigned count) noexcept {
  {
    std::lock_guard lock(mutex_);
    if (plan_.fire(FaultClass::kLatency)) base_.sleep_ms(plan_.latency_ms());
    if (plan_.fire(FaultClass::kEagain)) return -EAGAIN;
    if (plan_.fire(FaultClass::kShortWrite) && count > 1) {
      // Partial batch: only the first half of the datagrams reach the wire
      // this call; the caller's resume loop must send the rest.
      count = count / 2;
    }
    if (plan_.fire(FaultClass::kCorrupt) && count > 0 &&
        msgs[0].msg_hdr.msg_iovlen > 0 && msgs[0].msg_hdr.msg_iov[0].iov_len > 0) {
      // Flip one bit in the first datagram of the batch before it ships:
      // the receiver CRC-rejects it, turning the datagram into accounted
      // loss (or a gap filled by a retransmit pass).
      auto* bytes = static_cast<std::uint8_t*>(msgs[0].msg_hdr.msg_iov[0].iov_base);
      const std::size_t len = msgs[0].msg_hdr.msg_iov[0].iov_len;
      const std::size_t bit = (len * 8) / 2;
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }
  return base_.sendmmsg(fd, msgs, count);
}

}  // namespace autosens::net
