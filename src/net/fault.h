// Deterministic fault-injection layer for the net pipeline.
//
// Telemetry loss biases the biased PDF B exactly the way the measurement
// literature warns (silently dropped beacons skew client-side latency
// telemetry), so the emitter/collector recovery paths are not optional —
// and recovery code that is only exercised by timing luck is recovery code
// that does not work. This layer makes every failure mode reproducible from
// a seed: a FaultPlan decides, per operation index, whether to refuse a
// connect, cut the connection mid-frame, shorten a read/write, stall with
// EAGAIN, delay, or flip bits in flight. The decision for operation k of
// fault class c is a pure function of (seed, c, k) via the same
// counter-seeded substream discipline as core/parallel — never of wall
// clock or scheduling — so a fault-matrix test that passes once passes
// always.
//
// One FaultPlan (via one FaultySocketOps) serves one connection/emitter;
// per-plan operation counters are what make the sequence deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "net/socket.h"

namespace autosens::net {

/// The injectable failure modes, each gating a specific syscall site.
enum class FaultClass : std::uint8_t {
  kConnectRefused = 0,  ///< connect_tcp_fd returns -ECONNREFUSED.
  kDisconnect,          ///< send delivers a partial frame, then -ECONNRESET.
  kShortWrite,          ///< send delivers a strict prefix (loop must resume).
  kShortRead,           ///< recv returns fewer bytes than asked.
  kEagain,              ///< send/recv returns -EAGAIN (stall).
  kLatency,             ///< send/recv delayed by latency_ms first.
  kCorrupt,             ///< send flips one bit on the wire, then -EIO, so the
                        ///< sender knows to retransmit; the receiver must
                        ///< CRC-reject and resync past the damaged frame.
  kEagainStorm,         ///< A burst of consecutive -EAGAINs from recv /
                        ///< recvmmsg / epoll_wait. Edge-triggered loops that
                        ///< trust a single EAGAIN as "drained" lose the edge
                        ///< and stall; the shard's bounded re-poll list is
                        ///< what this class exists to exercise.
};
inline constexpr std::size_t kFaultClassCount = 8;

/// When and how often one fault class fires. `probability` is evaluated
/// against a counter-seeded draw per eligible operation, so "0.25" means a
/// deterministic, seed-chosen 25% of that class's operation indices.
struct FaultSpec {
  FaultClass fault = FaultClass::kEagain;
  double probability = 1.0;
  std::size_t skip_ops = 0;  ///< Eligible ops to leave untouched first.
  std::size_t max_injections = std::numeric_limits<std::size_t>::max();
  std::uint32_t latency_ms = 0;  ///< kLatency only.
  std::size_t storm_len = 4;     ///< kEagainStorm: consecutive EAGAINs per burst.
};

/// Seeded schedule of faults. fire() is the only mutator; it advances the
/// per-class operation counter and reports whether the fault triggers at
/// this index. Copyable so a test can replay the identical schedule.
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs);

  /// Should fault `fault` fire for its next eligible operation?
  /// Deterministic in (seed, fault, call index).
  bool fire(FaultClass fault) noexcept;

  /// Latency to inject when kLatency fires (0 when unconfigured).
  std::uint32_t latency_ms() const noexcept;

  /// Burst length when kEagainStorm fires (0 when unconfigured).
  std::size_t storm_len() const noexcept;

  std::size_t injected(FaultClass fault) const noexcept {
    return injected_[static_cast<std::size_t>(fault)];
  }
  std::size_t total_injected() const noexcept;

 private:
  struct ClassState {
    bool configured = false;
    double probability = 0.0;
    std::size_t skip_ops = 0;
    std::size_t max_injections = 0;
    std::uint32_t latency_ms = 0;
    std::size_t storm_len = 0;
    std::size_t ops_seen = 0;
  };

  std::uint64_t seed_ = 0;
  std::array<ClassState, kFaultClassCount> classes_{};
  std::array<std::size_t, kFaultClassCount> injected_{};
};

/// SocketOps decorator that consults a FaultPlan before forwarding to the
/// real syscalls. `sleep_scale` compresses backoff waits (0 disables real
/// sleeping entirely) while still accounting them in slept_ms(), so retry
/// tests assert exponential backoff without paying for it in wall clock.
///
/// Thread-safe: one FaultySocketOps may serve all shards of a sharded
/// collector, so the plan state is guarded by an internal mutex. The fired
/// *set* of (class, op index) decisions stays a pure function of the seed;
/// which shard's operation lands on which index depends on scheduling —
/// recovery must be exact under any placement, which is the point.
class FaultySocketOps final : public SocketOps {
 public:
  explicit FaultySocketOps(FaultPlan plan, SocketOps& base = real_socket_ops(),
                           double sleep_scale = 1.0) noexcept
      : plan_(std::move(plan)), base_(base), sleep_scale_(sleep_scale) {}

  int connect_tcp_fd(std::uint16_t port) noexcept override;
  std::int64_t send(int fd, const std::uint8_t* data, std::size_t len) noexcept override;
  std::int64_t recv(int fd, std::uint8_t* data, std::size_t len) noexcept override;
  void sleep_ms(std::uint32_t ms) noexcept override;
  int accept4_fd(int listen_fd) noexcept override;
  int epoll_wait(int epoll_fd, struct epoll_event* events, int max_events,
                 int timeout_ms) noexcept override;
  /// Per received datagram: kCorrupt flips one bit, kShortRead truncates —
  /// both turn the datagram into CRC-rejected garbage the decoder must
  /// account. kEagain/kEagainStorm stall the whole call.
  int recvmmsg(int fd, struct mmsghdr* msgs, unsigned count) noexcept override;
  /// kEagain stalls; kDisconnect/kCorrupt/kShortWrite drop a prefix of the
  /// batch (sendmmsg's partial-send contract), modelling datagram loss.
  int sendmmsg(int fd, struct mmsghdr* msgs, unsigned count) noexcept override;

  const FaultPlan& plan() const noexcept { return plan_; }
  /// Total milliseconds callers asked to sleep (before sleep_scale).
  std::uint64_t slept_ms() const noexcept { return slept_ms_; }

 private:
  /// True while an EAGAIN burst is in flight (consumes one storm step).
  /// Caller must hold mutex_.
  bool storm_step_locked() noexcept;

  mutable std::mutex mutex_;  ///< Guards plan_, storm_remaining_, slept_ms_.
  FaultPlan plan_;
  SocketOps& base_;
  double sleep_scale_;
  std::uint64_t slept_ms_ = 0;
  std::size_t storm_remaining_ = 0;
};

}  // namespace autosens::net
