// The original single-threaded poll()-driven collector, preserved verbatim
// when `Collector` (net/collector.h) became the sharded epoll implementation.
// Two reasons to keep it alive:
//   1. Benchmark baseline — BM_Net* measures the sharded loop against this
//      loop on identical workloads, so the speedup claim is reproducible.
//   2. Correctness oracle — the fault-matrix tests assert the sharded
//      collector's dataset is byte-identical to this one's under every
//      injected failure class.
// Same CollectorOptions / CollectorStats as the sharded collector (sharding
// fields are ignored). Health component name is "poll-collector:PORT" so the
// two can coexist in one process without colliding in /healthz.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/collector.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "telemetry/dataset.h"

namespace autosens::net {

/// Synchronous collector over an already-listening socket. Serves any number
/// of concurrent emitter connections with a single poll() loop — reads may
/// interleave arbitrarily across clients; frames are reassembled per
/// connection (wire::FrameDecoder).
class PollCollector {
 public:
  explicit PollCollector(std::uint16_t port = 0)
      : PollCollector(CollectorOptions{.port = port}) {}
  explicit PollCollector(const CollectorOptions& options);
  ~PollCollector();

  PollCollector(const PollCollector&) = delete;
  PollCollector& operator=(const PollCollector&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Serve until `expected_goodbyes` sessions (or sessionless connections)
  /// have sent kGoodbye, or until `timeout_ms` elapses with no socket
  /// activity at all (whichever first). Returns true if all goodbyes
  /// arrived.
  bool serve_until_goodbye(std::size_t expected_goodbyes, int timeout_ms = 5000);

  const telemetry::Dataset& dataset() const noexcept { return dataset_; }
  telemetry::Dataset take_dataset();
  /// Persist a time-sorted copy of what has been collected so far.
  std::size_t checkpoint(const std::string& path) const;
  /// Snapshot of the counters; safe concurrently with the serving thread.
  CollectorStats stats() const noexcept;

 private:
  struct Connection;
  /// Per-session state, stable across that session's reconnects.
  struct Session {
    std::uint32_t last_seq = 0;  ///< Highest frame seq applied.
    bool said_goodbye = false;
    std::size_t connections_seen = 0;
    std::uint64_t trace_span = 0;  ///< Emitter connect span from the hello.
  };

  /// The live counters behind stats(). RawCounter (not registry Counter):
  /// these are functional collector state, counted even when the obs layer
  /// is disabled; the registry mirrors them via global gated counters.
  struct AtomicStats {
    obs::RawCounter connections;
    obs::RawCounter frames;
    obs::RawCounter records;
    obs::RawCounter flushes;
    obs::RawCounter dropped_connections;
    obs::RawCounter bytes;
    obs::RawCounter backpressure_reads;
    obs::RawCounter resyncs;
    obs::RawCounter resync_bytes;
    obs::RawCounter duplicate_frames;
    obs::RawCounter sessions;
    obs::RawCounter sessions_closed;  ///< Sessions whose goodbye was credited.
    obs::RawCounter session_reconnects;
    obs::RawCounter deadline_drops;
    obs::RawCounter interrupted_connections;
  };

  /// Drain complete frames from one connection; returns the number of
  /// newly-credited goodbye frames (0 or 1).
  std::size_t drain_frames(Connection& connection);

  /// The JSON value of this collector's /statusz section.
  std::string status_json() const;

  Socket listener_;
  std::uint16_t port_ = 0;
  CollectorOptions options_;
  SocketOps* ops_ = nullptr;
  telemetry::Dataset dataset_;
  /// Guards sessions_: the serve thread mutates it in drain_frames while
  /// the obs HTTP thread reads it through the /statusz section provider.
  mutable std::mutex sessions_mutex_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  AtomicStats stats_;
  std::uint64_t status_section_id_ = 0;
  std::string health_name_;
};

/// Runs a PollCollector on a background thread; join() returns the dataset.
class PollCollectorThread {
 public:
  explicit PollCollectorThread(std::size_t expected_goodbyes, std::uint16_t port = 0)
      : PollCollectorThread(expected_goodbyes, CollectorOptions{.port = port}) {}
  PollCollectorThread(std::size_t expected_goodbyes, const CollectorOptions& options,
                      int timeout_ms = 30'000);
  ~PollCollectorThread();

  PollCollectorThread(const PollCollectorThread&) = delete;
  PollCollectorThread& operator=(const PollCollectorThread&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Wait for the collector to finish and take its dataset + stats.
  telemetry::Dataset join();
  CollectorStats stats() const;
  /// True when serve_until_goodbye saw every expected goodbye (valid after
  /// join()).
  bool complete() const noexcept { return complete_.load(std::memory_order_acquire); }

 private:
  PollCollector collector_;
  std::uint16_t port_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  std::atomic<bool> complete_{false};
  mutable std::mutex mutex_;
};

}  // namespace autosens::net
