// RAII socket primitives for the telemetry collection pipeline. The paper's
// latency is measured at the client and conveyed to the server where it is
// logged (§3.1); `collector` and `emitter` reproduce that path over loopback
// TCP. This header provides the owning fd wrapper, the small set of TCP
// operations they need, and the SocketOps seam that lets the deterministic
// fault-injection layer (net/fault.h) stand in for the raw syscalls.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

struct epoll_event;
struct mmsghdr;

namespace autosens::net {

/// Owning file-descriptor handle. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  /// Release ownership without closing.
  int release() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Thrown by socket operations on unrecoverable errors; carries errno text
/// and, where the caller knows it, the peer address.
class SocketError : public std::exception {
 public:
  SocketError(std::string what, int saved_errno);
  const char* what() const noexcept override { return message_.c_str(); }
  int saved_errno() const noexcept { return errno_; }

 private:
  std::string message_;
  int errno_;
};

/// "127.0.0.1:port" of the connected peer of `fd`, or "unknown-peer" when
/// getpeername fails (e.g. the socket was never connected). Used to build
/// SocketError messages that identify which connection failed.
std::string peer_address(int fd) noexcept;

/// The syscall surface the emitter/collector I/O paths go through. The
/// default implementation (real_socket_ops) forwards to the kernel; the
/// fault-injection layer (net/fault.h) wraps it to force connect refusals,
/// short reads/writes, EAGAIN stalls, disconnects, injected latency, and
/// bit corruption at seed-chosen operation indices.
///
/// Error convention: send/recv return the syscall result with errno already
/// folded in as a negative value (-EAGAIN, -ECONNRESET, ...), so injected
/// errors need no thread-local errno games. connect_tcp_fd returns a
/// connected fd >= 0 or -errno.
class SocketOps {
 public:
  virtual ~SocketOps() = default;

  /// Create a TCP socket and connect it to 127.0.0.1:port.
  /// Returns the fd, or -errno on failure.
  virtual int connect_tcp_fd(std::uint16_t port) noexcept;

  /// send(2) with MSG_NOSIGNAL. Returns bytes written or -errno.
  virtual std::int64_t send(int fd, const std::uint8_t* data, std::size_t len) noexcept;

  /// recv(2). Returns bytes read (0 = EOF) or -errno.
  virtual std::int64_t recv(int fd, std::uint8_t* data, std::size_t len) noexcept;

  /// Sleep used by retry backoff; overridable so tests can compress or
  /// record the waits instead of paying them in wall-clock time.
  virtual void sleep_ms(std::uint32_t ms) noexcept;

  // --- Nonblocking / batched surface used by the sharded collector and the
  // --- UDP transport. All go through the seam so FaultySocketOps can drive
  // --- the edge-triggered event loops through every failure mode.

  /// accept4(2) with SOCK_NONBLOCK. Returns the accepted fd or -errno
  /// (-EAGAIN when no connection is pending on a nonblocking listener).
  virtual int accept4_fd(int listen_fd) noexcept;

  /// epoll_wait(2). Returns the ready count (0 = timeout) or -errno.
  virtual int epoll_wait(int epoll_fd, struct epoll_event* events, int max_events,
                         int timeout_ms) noexcept;

  /// recvmmsg(2) with MSG_DONTWAIT. Returns datagrams received or -errno
  /// (-EAGAIN when the socket is drained).
  virtual int recvmmsg(int fd, struct mmsghdr* msgs, unsigned count) noexcept;

  /// sendmmsg(2). Returns datagrams sent (possibly fewer than `count`) or
  /// -errno.
  virtual int sendmmsg(int fd, struct mmsghdr* msgs, unsigned count) noexcept;

  /// setsockopt(2) for int-valued options (SO_RCVBUF, SO_SNDBUF, ...).
  /// Returns 0 or -errno.
  virtual int setsockopt_int(int fd, int level, int option, int value) noexcept;
};

/// The pass-through SocketOps singleton (plain syscalls).
SocketOps& real_socket_ops() noexcept;

/// Create a TCP listener bound to 127.0.0.1:port (port 0 = ephemeral).
/// Returns the socket; the bound port is written to `bound_port`.
/// The backlog matches listen_tcp_reuseport's: under the saturation bench's
/// 64-way connect bursts a small backlog overflows and every overflowed
/// connect stalls on a ~1s SYN retransmit, so the bench would measure kernel
/// timers instead of the serving loop.
Socket listen_tcp(std::uint16_t port, std::uint16_t& bound_port, int backlog = 128);

/// Like listen_tcp, but nonblocking and with SO_REUSEPORT, so N collector
/// shards can each own a listener on the same port and let the kernel shard
/// the accept queue. Throws SocketError if SO_REUSEPORT is unsupported
/// (callers fall back to shared-accept handoff).
Socket listen_tcp_reuseport(std::uint16_t port, std::uint16_t& bound_port,
                            int backlog = 128);

/// Create a nonblocking UDP socket bound to 127.0.0.1:port (0 = ephemeral),
/// with SO_REUSEPORT when `reuseport` so several shards can share the port.
Socket bind_udp(std::uint16_t port, std::uint16_t& bound_port, bool reuseport = false);

/// Create an unbound (ephemeral source port) UDP socket "connected" to
/// 127.0.0.1:port so plain send(2)/sendmmsg(2) address it implicitly.
Socket connect_udp(std::uint16_t port);

/// Set O_NONBLOCK on an fd. Throws SocketError on failure.
void set_nonblocking(int fd);

/// Blocking connect to 127.0.0.1:port through `ops`.
Socket connect_tcp(std::uint16_t port, SocketOps& ops = real_socket_ops());

/// Accept one connection, waiting up to timeout_ms (-1 = forever).
/// Returns nullopt on timeout.
std::optional<Socket> accept_with_timeout(const Socket& listener, int timeout_ms);

/// Write the whole buffer through `ops`, retrying on partial writes, EINTR,
/// and EAGAIN. Throws SocketError (with the peer address) on failure.
void write_all(const Socket& socket, std::span<const std::uint8_t> data,
               SocketOps& ops = real_socket_ops());

/// Read exactly data.size() bytes through `ops`. Returns false on clean EOF
/// at a message boundary (no bytes read); throws SocketError (with the peer
/// address) on mid-message EOF or error.
bool read_exact(const Socket& socket, std::span<std::uint8_t> data,
                SocketOps& ops = real_socket_ops());

}  // namespace autosens::net
