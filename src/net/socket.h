// RAII socket primitives for the telemetry collection pipeline. The paper's
// latency is measured at the client and conveyed to the server where it is
// logged (§3.1); `collector` and `emitter` reproduce that path over loopback
// TCP. This header provides the owning fd wrapper and the small set of TCP
// operations they need — nothing more.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace autosens::net {

/// Owning file-descriptor handle. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  /// Release ownership without closing.
  int release() noexcept;
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Thrown by socket operations on unrecoverable errors; carries errno text.
class SocketError : public std::exception {
 public:
  SocketError(std::string what, int saved_errno);
  const char* what() const noexcept override { return message_.c_str(); }
  int saved_errno() const noexcept { return errno_; }

 private:
  std::string message_;
  int errno_;
};

/// Create a TCP listener bound to 127.0.0.1:port (port 0 = ephemeral).
/// Returns the socket; the bound port is written to `bound_port`.
Socket listen_tcp(std::uint16_t port, std::uint16_t& bound_port, int backlog = 16);

/// Blocking connect to 127.0.0.1:port.
Socket connect_tcp(std::uint16_t port);

/// Accept one connection, waiting up to timeout_ms (-1 = forever).
/// Returns nullopt on timeout.
std::optional<Socket> accept_with_timeout(const Socket& listener, int timeout_ms);

/// Write the whole buffer, retrying on partial writes / EINTR.
/// Throws SocketError on failure (including peer reset).
void write_all(const Socket& socket, std::span<const std::uint8_t> data);

/// Read exactly data.size() bytes. Returns false on clean EOF at a message
/// boundary (no bytes read); throws SocketError on mid-message EOF or error.
bool read_exact(const Socket& socket, std::span<std::uint8_t> data);

}  // namespace autosens::net
