// Telemetry collector: the "server side" of the paper's measurement path.
// Accepts loopback TCP connections from emitters, decodes record frames, and
// accumulates them into a Dataset (the analysis input). Single-threaded,
// poll()-driven; runs either inline (serve_until_goodbye) or on a background
// thread via CollectorThread.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "obs/metrics.h"
#include "telemetry/dataset.h"

namespace autosens::net {

/// Collection statistics: a plain snapshot taken from the collector's
/// atomic counters, safe to read while the collector is serving on another
/// thread (CollectorThread::stats()).
struct CollectorStats {
  std::size_t connections = 0;
  std::size_t frames = 0;
  std::size_t records = 0;
  std::size_t flushes = 0;
  std::size_t dropped_connections = 0;  ///< Closed on protocol/transport error.
  std::size_t bytes = 0;                ///< Payload bytes received.
  std::size_t backpressure_reads = 0;   ///< recv() filled the whole buffer.
};

/// Synchronous collector over an already-listening socket. Serves any number
/// of concurrent emitter connections with a single poll() loop — reads may
/// interleave arbitrarily across clients; frames are reassembled per
/// connection (wire::FrameDecoder).
class Collector {
 public:
  /// Binds 127.0.0.1:port (0 = ephemeral).
  explicit Collector(std::uint16_t port = 0);

  std::uint16_t port() const noexcept { return port_; }

  /// Serve until `expected_goodbyes` clients have sent kGoodbye, or until
  /// `timeout_ms` elapses with no socket activity at all (whichever first).
  /// Returns true if all goodbyes arrived. Malformed or error-ing
  /// connections are dropped (their already-decoded records are kept) and
  /// counted in stats().dropped_connections.
  bool serve_until_goodbye(std::size_t expected_goodbyes, int timeout_ms = 5000);

  const telemetry::Dataset& dataset() const noexcept { return dataset_; }
  telemetry::Dataset take_dataset();
  /// Snapshot of the counters. Safe concurrently with the serving thread:
  /// every cell is an ungated relaxed atomic (obs::RawCounter).
  CollectorStats stats() const noexcept;

 private:
  struct Connection;

  /// The live counters behind stats(). RawCounter (not registry Counter):
  /// these are functional collector state, counted even when the obs layer
  /// is disabled; the registry mirrors them via global gated counters.
  struct AtomicStats {
    obs::RawCounter connections;
    obs::RawCounter frames;
    obs::RawCounter records;
    obs::RawCounter flushes;
    obs::RawCounter dropped_connections;
    obs::RawCounter bytes;
    obs::RawCounter backpressure_reads;
  };

  /// Drain complete frames from one connection; returns the number of
  /// goodbye frames seen (0 or 1).
  std::size_t drain_frames(Connection& connection);

  Socket listener_;
  std::uint16_t port_ = 0;
  telemetry::Dataset dataset_;
  AtomicStats stats_;
};

/// Runs a Collector on a background thread; join() returns the dataset.
class CollectorThread {
 public:
  explicit CollectorThread(std::size_t expected_goodbyes, std::uint16_t port = 0);
  ~CollectorThread();

  CollectorThread(const CollectorThread&) = delete;
  CollectorThread& operator=(const CollectorThread&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Wait for the collector to finish and take its dataset + stats.
  telemetry::Dataset join();
  CollectorStats stats() const;

 private:
  Collector collector_;
  std::uint16_t port_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  mutable std::mutex mutex_;
};

}  // namespace autosens::net
