// Telemetry collector: the "server side" of the paper's measurement path.
// Accepts loopback TCP connections from emitters, decodes record frames, and
// accumulates them into a Dataset (the analysis input). Single-threaded,
// poll()-driven; runs either inline (serve_until_goodbye) or on a background
// thread via CollectorThread.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "telemetry/dataset.h"

namespace autosens::net {

/// Collection statistics.
struct CollectorStats {
  std::size_t connections = 0;
  std::size_t frames = 0;
  std::size_t records = 0;
  std::size_t flushes = 0;
  std::size_t dropped_connections = 0;  ///< Closed on protocol/transport error.
};

/// Synchronous collector over an already-listening socket. Serves any number
/// of concurrent emitter connections with a single poll() loop — reads may
/// interleave arbitrarily across clients; frames are reassembled per
/// connection (wire::FrameDecoder).
class Collector {
 public:
  /// Binds 127.0.0.1:port (0 = ephemeral).
  explicit Collector(std::uint16_t port = 0);

  std::uint16_t port() const noexcept { return port_; }

  /// Serve until `expected_goodbyes` clients have sent kGoodbye, or until
  /// `timeout_ms` elapses with no socket activity at all (whichever first).
  /// Returns true if all goodbyes arrived. Malformed or error-ing
  /// connections are dropped (their already-decoded records are kept) and
  /// counted in stats().dropped_connections.
  bool serve_until_goodbye(std::size_t expected_goodbyes, int timeout_ms = 5000);

  const telemetry::Dataset& dataset() const noexcept { return dataset_; }
  telemetry::Dataset take_dataset();
  const CollectorStats& stats() const noexcept { return stats_; }

 private:
  struct Connection;

  /// Drain complete frames from one connection; returns the number of
  /// goodbye frames seen (0 or 1).
  std::size_t drain_frames(Connection& connection);

  Socket listener_;
  std::uint16_t port_ = 0;
  telemetry::Dataset dataset_;
  CollectorStats stats_;
};

/// Runs a Collector on a background thread; join() returns the dataset.
class CollectorThread {
 public:
  explicit CollectorThread(std::size_t expected_goodbyes, std::uint16_t port = 0);
  ~CollectorThread();

  CollectorThread(const CollectorThread&) = delete;
  CollectorThread& operator=(const CollectorThread&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Wait for the collector to finish and take its dataset + stats.
  telemetry::Dataset join();
  CollectorStats stats() const;

 private:
  Collector collector_;
  std::uint16_t port_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  mutable std::mutex mutex_;
};

}  // namespace autosens::net
