// Telemetry collector: the "server side" of the paper's measurement path.
// Accepts loopback TCP connections from emitters, decodes record frames, and
// accumulates them into a Dataset (the analysis input). Single-threaded,
// poll()-driven; runs either inline (serve_until_goodbye) or on a background
// thread via CollectorThread.
//
// Resilience: per-connection errors never kill the serve loop. Damaged
// bytes are scanned past to the next valid frame (FrameDecoder resync,
// bounded by max_resync_bytes); retransmitted frames are dropped by
// (session, seq) so emitter retries stay exactly-once; reconnects of the
// same session are folded into one logical stream (with bounded
// accounting); silent connections can be cut by a per-connection read
// deadline; and an idle timeout ends the loop with the partial Dataset
// intact plus counters that say exactly what was lost on the way.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "obs/metrics.h"
#include "telemetry/dataset.h"

namespace autosens::net {

/// Collection statistics: a plain snapshot taken from the collector's
/// atomic counters, safe to read while the collector is serving on another
/// thread (CollectorThread::stats()).
struct CollectorStats {
  std::size_t connections = 0;
  std::size_t frames = 0;
  std::size_t records = 0;
  std::size_t flushes = 0;
  std::size_t dropped_connections = 0;  ///< Closed on protocol/transport error.
  std::size_t bytes = 0;                ///< Payload bytes received.
  std::size_t backpressure_reads = 0;   ///< recv() filled the whole buffer.
  std::size_t resyncs = 0;              ///< Damaged runs scanned past.
  std::size_t resync_bytes = 0;         ///< Garbage bytes discarded by resync.
  std::size_t duplicate_frames = 0;     ///< Retransmissions deduped by seq.
  std::size_t sessions = 0;             ///< Distinct hello session ids seen.
  std::size_t sessions_active = 0;      ///< Sessions seen minus sessions that said goodbye.
  std::size_t session_reconnects = 0;   ///< Hellos for an already-seen session.
  std::size_t deadline_drops = 0;       ///< Connections cut by read deadline.
  std::size_t interrupted_connections = 0;  ///< Session EOF without goodbye.
};

/// Collector configuration beyond the bind port; all defaults reproduce the
/// permissive seed-era behaviour.
struct CollectorOptions {
  std::uint16_t port = 0;     ///< 0 = ephemeral.
  int read_deadline_ms = -1;  ///< Drop a connection silent this long (-1 = never).
  /// Drop a connection once resync has discarded this much garbage.
  std::size_t max_resync_bytes = 1 << 20;
  /// Reconnect budget per session; beyond it new hellos are refused.
  std::size_t max_session_reconnects = 1024;
  /// Syscall surface for reads; nullptr = real syscalls (fault injection).
  SocketOps* ops = nullptr;
};

/// Synchronous collector over an already-listening socket. Serves any number
/// of concurrent emitter connections with a single poll() loop — reads may
/// interleave arbitrarily across clients; frames are reassembled per
/// connection (wire::FrameDecoder).
class Collector {
 public:
  /// Binds 127.0.0.1:port (0 = ephemeral). Registers itself with the obs
  /// health registry and publishes a per-session /statusz section; both are
  /// withdrawn on destruction.
  explicit Collector(std::uint16_t port = 0) : Collector(CollectorOptions{.port = port}) {}
  explicit Collector(const CollectorOptions& options);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Serve until `expected_goodbyes` sessions (or sessionless connections)
  /// have sent kGoodbye, or until `timeout_ms` elapses with no socket
  /// activity at all (whichever first). Returns true if all goodbyes
  /// arrived. Malformed or error-ing connections are dropped (their
  /// already-decoded records are kept) and counted in
  /// stats().dropped_connections; the idle-timeout outcome is exported as
  /// the autosens_collector_idle_timeout_outcome gauge.
  bool serve_until_goodbye(std::size_t expected_goodbyes, int timeout_ms = 5000);

  const telemetry::Dataset& dataset() const noexcept { return dataset_; }
  telemetry::Dataset take_dataset();
  /// Graceful degradation: persist a time-sorted copy of whatever has been
  /// collected so far as a binary log (without consuming the dataset).
  /// Returns the number of records written.
  std::size_t checkpoint(const std::string& path) const;
  /// Snapshot of the counters. Safe concurrently with the serving thread:
  /// every cell is an ungated relaxed atomic (obs::RawCounter).
  CollectorStats stats() const noexcept;

 private:
  struct Connection;
  /// Per-session state, stable across that session's reconnects.
  struct Session {
    std::uint32_t last_seq = 0;  ///< Highest frame seq applied.
    bool said_goodbye = false;
    std::size_t connections_seen = 0;
    std::uint64_t trace_span = 0;  ///< Emitter connect span from the hello.
  };

  /// The live counters behind stats(). RawCounter (not registry Counter):
  /// these are functional collector state, counted even when the obs layer
  /// is disabled; the registry mirrors them via global gated counters.
  struct AtomicStats {
    obs::RawCounter connections;
    obs::RawCounter frames;
    obs::RawCounter records;
    obs::RawCounter flushes;
    obs::RawCounter dropped_connections;
    obs::RawCounter bytes;
    obs::RawCounter backpressure_reads;
    obs::RawCounter resyncs;
    obs::RawCounter resync_bytes;
    obs::RawCounter duplicate_frames;
    obs::RawCounter sessions;
    obs::RawCounter sessions_closed;  ///< Sessions whose goodbye was credited.
    obs::RawCounter session_reconnects;
    obs::RawCounter deadline_drops;
    obs::RawCounter interrupted_connections;
  };

  /// Drain complete frames from one connection; returns the number of
  /// newly-credited goodbye frames (0 or 1). Sets connection.malformed
  /// when the stream must be dropped (undecodable payload, resync budget
  /// exhausted, reconnect budget exhausted).
  std::size_t drain_frames(Connection& connection);

  /// The JSON value of this collector's /statusz section (port, counters,
  /// per-session state). Takes sessions_mutex_.
  std::string status_json() const;

  Socket listener_;
  std::uint16_t port_ = 0;
  CollectorOptions options_;
  SocketOps* ops_ = nullptr;
  telemetry::Dataset dataset_;
  /// Guards sessions_: the serve thread mutates it in drain_frames while
  /// the obs HTTP thread reads it through the /statusz section provider.
  mutable std::mutex sessions_mutex_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  AtomicStats stats_;
  std::uint64_t status_section_id_ = 0;
  std::string health_name_;
};

/// Runs a Collector on a background thread; join() returns the dataset.
class CollectorThread {
 public:
  explicit CollectorThread(std::size_t expected_goodbyes, std::uint16_t port = 0)
      : CollectorThread(expected_goodbyes, CollectorOptions{.port = port}) {}
  CollectorThread(std::size_t expected_goodbyes, const CollectorOptions& options,
                  int timeout_ms = 30'000);
  ~CollectorThread();

  CollectorThread(const CollectorThread&) = delete;
  CollectorThread& operator=(const CollectorThread&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Wait for the collector to finish and take its dataset + stats.
  telemetry::Dataset join();
  CollectorStats stats() const;
  /// True when serve_until_goodbye saw every expected goodbye (valid after
  /// join()).
  bool complete() const noexcept { return complete_.load(std::memory_order_acquire); }

 private:
  Collector collector_;
  std::uint16_t port_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  std::atomic<bool> complete_{false};
  mutable std::mutex mutex_;
};

}  // namespace autosens::net
