// Telemetry collector: the "server side" of the paper's measurement path.
// Million-emitter fan-in edition: ingestion is split across N CollectorShard
// event loops (edge-triggered epoll over nonblocking sockets, one shard per
// core), each feeding decoded frame batches over a lock-free SPSC queue to a
// single spine thread — the caller of serve_until_goodbye — which owns every
// cross-connection decision: session binding, exactly-once (session, seq)
// dedup, record decode, Dataset splice, goodbye credit. Accept load is
// sharded by the kernel via SO_REUSEPORT listeners (one per shard); when
// reuseport_accept is off, shard 0 owns the only listener and deals accepted
// fds round-robin to its siblings.
//
// Transports: TCP (stream framing, per-connection FrameDecoder reassembly)
// or UDP (wire-v2 frames packed into datagrams, each opening with a kHello
// whose seq is the per-session datagram number; recvmmsg-batched ingest).
// UDP delivery is lossy by contract, so the dedup state doubles as loss
// accounting: per-session gap tracking (highest seq + bounded missing set)
// accepts late/reordered arrivals exactly once, and whatever is still
// missing when the session finalizes is exported as
// autosens_net_udp_lost_total — exact, per-session loss.
//
// Resilience semantics are inherited from the poll-era collector (preserved
// as net/collector_poll.h, which doubles as the benchmark baseline and the
// fault-matrix oracle): per-connection errors never kill the serve loop,
// damaged bytes are resynced past with bounded budgets, retransmits dedup,
// reconnects fold into one logical session stream regardless of which shard
// they land on, silent connections are cut by the shard's event-loop timer,
// and an idle timeout ends the loop with the partial Dataset intact.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/spsc.h"
#include "net/shard.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "telemetry/dataset.h"

namespace autosens::net {

/// Collection statistics: a plain snapshot taken from the collector's
/// atomic counters, safe to read while the collector is serving on another
/// thread (CollectorThread::stats()).
struct CollectorStats {
  std::size_t connections = 0;
  std::size_t frames = 0;
  std::size_t records = 0;
  std::size_t flushes = 0;
  std::size_t dropped_connections = 0;  ///< Closed on protocol/transport error.
  std::size_t bytes = 0;                ///< Payload bytes received.
  std::size_t backpressure_reads = 0;   ///< recv() filled the whole buffer.
  std::size_t resyncs = 0;              ///< Damaged runs scanned past.
  std::size_t resync_bytes = 0;         ///< Garbage bytes discarded by resync.
  std::size_t duplicate_frames = 0;     ///< Retransmissions deduped by seq.
  std::size_t sessions = 0;             ///< Distinct hello session ids seen.
  std::size_t sessions_active = 0;      ///< Sessions seen minus sessions that said goodbye.
  std::size_t session_reconnects = 0;   ///< Hellos for an already-seen session.
  std::size_t deadline_drops = 0;       ///< Connections cut by read deadline.
  std::size_t interrupted_connections = 0;  ///< Session EOF without goodbye.
  // UDP transport only:
  std::size_t udp_datagrams = 0;            ///< Datagrams accepted (valid hello).
  std::size_t udp_rejected = 0;             ///< Datagrams discarded whole.
  std::size_t udp_duplicate_datagrams = 0;  ///< Datagram-seq dedup hits.
  std::size_t udp_lost = 0;  ///< Datagram gaps still open at session finalize.
};

/// Collector configuration beyond the bind port; all defaults reproduce the
/// permissive seed-era behaviour with a single shard.
struct CollectorOptions {
  std::uint16_t port = 0;     ///< 0 = ephemeral.
  int read_deadline_ms = -1;  ///< Drop a connection silent this long (-1 = never).
  /// Drop a connection once resync has discarded this much garbage.
  std::size_t max_resync_bytes = 1 << 20;
  /// Reconnect budget per session; beyond it new hellos are refused.
  std::size_t max_session_reconnects = 1024;
  /// Syscall surface for reads; nullptr = real syscalls (fault injection).
  SocketOps* ops = nullptr;
  /// Ingest event loops. Each shard is one thread with its own epoll set.
  std::size_t shards = 1;
  Transport transport = Transport::kTcp;
  /// TCP accept sharding: true = one SO_REUSEPORT listener per shard
  /// (kernel load balancing); false = shard 0 accepts and hands fds
  /// round-robin to the others (portable fallback).
  bool reuseport_accept = true;
  /// SO_RCVBUF for UDP sockets (0 = kernel default). Loopback bursts at
  /// 10k-session fan-in overflow default buffers, which shows up as loss.
  int rcvbuf_bytes = 0;
  std::size_t recvmmsg_batch = 32;  ///< Datagrams per recvmmsg call.
  /// Per-session cap on tracked sequence gaps (frame- and datagram-level).
  /// Gaps past the cap are treated as permanently lost.
  std::size_t max_tracked_gaps = 4096;
};

/// Sharded collector. The public surface (and the semantics the tests pin)
/// is unchanged from the poll era: construct, let emitters connect, call
/// serve_until_goodbye, take the dataset.
class Collector {
 public:
  /// Binds listeners and starts the shard threads (ingest begins
  /// immediately; events buffer in the shard queues until
  /// serve_until_goodbye drains them). Registers itself with the obs health
  /// registry and publishes a /statusz section (counters, per-session
  /// state, per-shard state); both are withdrawn on destruction.
  explicit Collector(std::uint16_t port = 0) : Collector(CollectorOptions{.port = port}) {}
  explicit Collector(const CollectorOptions& options);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Run the spine until `expected_goodbyes` sessions (or sessionless
  /// connections) have sent kGoodbye, or until `timeout_ms` elapses with no
  /// ingest activity at all (whichever first). Returns true if all
  /// goodbyes arrived. On return, UDP sessions are finalized: outstanding
  /// datagram gaps are counted into autosens_net_udp_lost_total.
  bool serve_until_goodbye(std::size_t expected_goodbyes, int timeout_ms = 5000);

  const telemetry::Dataset& dataset() const noexcept { return dataset_; }
  telemetry::Dataset take_dataset();
  /// Graceful degradation: persist a time-sorted copy of whatever has been
  /// collected so far as a binary log (without consuming the dataset).
  /// Logs per-session open gap counts. Returns the records written.
  std::size_t checkpoint(const std::string& path) const;
  /// Snapshot of the counters. Safe concurrently with the serving thread:
  /// every cell is an ungated relaxed atomic (obs::RawCounter).
  CollectorStats stats() const noexcept;
  /// Per-shard counters (index == shard number).
  std::vector<ShardStats> shard_stats() const;

 private:
  /// Per-session spine state, stable across reconnects and shard moves.
  struct Session {
    std::uint32_t last_seq = 0;       ///< Highest frame seq applied.
    std::set<std::uint32_t> missing;  ///< Frame seqs below last_seq not yet seen.
    std::size_t gap_overflow = 0;     ///< Gaps dropped past max_tracked_gaps.
    std::uint32_t dg_last = 0;        ///< Highest datagram seq accepted (UDP).
    std::set<std::uint32_t> dg_missing;  ///< Datagram gaps (UDP loss-to-be).
    std::size_t dg_overflow = 0;
    bool said_goodbye = false;
    bool finalized = false;  ///< Loss already counted for this session.
    std::size_t connections_seen = 0;
    std::uint64_t trace_span = 0;  ///< Emitter connect span from the hello.
  };

  /// Spine-side view of one shard connection stream.
  struct ConnState {
    std::uint64_t session_id = 0;
    bool saw_goodbye = false;
    bool received_bytes = false;
    bool dead = false;  ///< Malformed: ignore all further frames.
  };

  /// The live counters behind stats(). RawCounter (not registry Counter):
  /// these are functional collector state, counted even when the obs layer
  /// is disabled; the registry mirrors them via global gated counters.
  struct AtomicStats {
    obs::RawCounter connections;
    obs::RawCounter frames;
    obs::RawCounter records;
    obs::RawCounter flushes;
    obs::RawCounter dropped_connections;
    obs::RawCounter bytes;
    obs::RawCounter backpressure_reads;
    obs::RawCounter resyncs;
    obs::RawCounter resync_bytes;
    obs::RawCounter duplicate_frames;
    obs::RawCounter sessions;
    obs::RawCounter sessions_closed;  ///< Sessions whose goodbye was credited.
    obs::RawCounter session_reconnects;
    obs::RawCounter deadline_drops;
    obs::RawCounter interrupted_connections;
    obs::RawCounter udp_datagrams;
    obs::RawCounter udp_rejected;
    obs::RawCounter udp_duplicate_datagrams;
    obs::RawCounter udp_lost;
  };

  /// Apply one shard event on the spine; returns newly-credited goodbyes.
  std::size_t apply_event(ShardEvent& event);
  std::size_t apply_tcp_frames(ShardEvent& event);
  std::size_t apply_udp_frames(ShardEvent& event);
  /// Frame-seq dedup with gap tracking. Returns true when the frame is new
  /// (apply it); false for duplicates. Caller holds sessions_mutex_.
  bool accept_seq(Session& session, std::uint32_t seq);
  /// One data/flush/goodbye frame against its session; returns goodbyes
  /// credited (0/1). Sets *dead when the stream must be dropped.
  std::size_t apply_frame(const Frame& frame, Session* session,
                          std::uint64_t session_id, bool& saw_goodbye, bool* dead);
  /// Count outstanding datagram gaps of every unfinalized session.
  void finalize_udp_sessions();

  std::string status_json() const;

  CollectorOptions options_;
  std::uint16_t port_ = 0;
  telemetry::Dataset dataset_;

  /// One queue per shard: each stays single-producer (the shard thread) /
  /// single-consumer (the spine).
  std::vector<std::unique_ptr<SpscQueue<ShardEvent>>> event_queues_;
  std::vector<std::unique_ptr<CollectorShard>> shards_;
  std::vector<obs::Counter*> shard_records_metrics_;  ///< {shard="i"} mirrors.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  /// Guards sessions_: the spine mutates it while the obs HTTP thread
  /// reads it through the /statusz section provider.
  mutable std::mutex sessions_mutex_;
  std::unordered_map<std::uint64_t, Session> sessions_;
  /// Keyed by (shard << 32 | conn serial); spine-thread only.
  std::unordered_map<std::uint64_t, ConnState> conns_;
  AtomicStats stats_;
  std::uint64_t status_section_id_ = 0;
  std::string health_name_;
};

/// Runs a Collector on a background thread; join() returns the dataset.
class CollectorThread {
 public:
  explicit CollectorThread(std::size_t expected_goodbyes, std::uint16_t port = 0)
      : CollectorThread(expected_goodbyes, CollectorOptions{.port = port}) {}
  CollectorThread(std::size_t expected_goodbyes, const CollectorOptions& options,
                  int timeout_ms = 30'000);
  ~CollectorThread();

  CollectorThread(const CollectorThread&) = delete;
  CollectorThread& operator=(const CollectorThread&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Wait for the collector to finish and take its dataset + stats.
  telemetry::Dataset join();
  CollectorStats stats() const;
  /// True when serve_until_goodbye saw every expected goodbye (valid after
  /// join()).
  bool complete() const noexcept { return complete_.load(std::memory_order_acquire); }

 private:
  Collector collector_;
  std::uint16_t port_;
  std::thread thread_;
  std::atomic<bool> done_{false};
  std::atomic<bool> complete_{false};
  mutable std::mutex mutex_;
};

}  // namespace autosens::net
