// UdpEmitter: batched UDP transport for the telemetry path, reusing wire-v2
// framing. Where the TCP emitter owns a stream, this one owns datagrams:
//
//   datagram := hello-frame(seq = per-session datagram number)
//              [data / flush / goodbye frames ...]     (≤ max_datagram_bytes)
//
// Every datagram is self-describing — the leading kHello carries the session
// id, so the collector needs no per-source state and a reconnect/rebind
// costs nothing. The hello's seq gives the collector datagram-level
// exactly-once AND exact loss accounting: gaps still open when the session
// finalizes are the datagrams that never arrived (autosens_net_udp_lost_total).
// Frames inside carry the session-wide frame seqs, so frame-level dedup
// keeps close-time retransmits idempotent.
//
// Reliability contract (UDP is lossy by design):
//  - close() optionally re-sends every data frame once more in fresh
//    datagrams (final_retransmit, on by default): datagram loss then shows
//    up in the loss counter but not in the Dataset, as long as not both
//    copies die. Duplicates are deduped by frame seq.
//  - goodbye ships goodbye_copies times as the *same* datagram bytes (same
//    datagram seq): copies collapse in the datagram dedup.
//  - drop_datagrams is a seeded drop plan for tests: listed datagram
//    numbers are silently never sent, producing exact, predictable loss.
//
// Datagrams are queued and shipped in sendmmsg batches; -EAGAIN and partial
// batches resume. All syscalls go through the SocketOps seam.
#pragma once

#include <cstdint>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "telemetry/record.h"

namespace autosens::net {

struct UdpEmitterOptions {
  std::size_t batch_size = 128;  ///< Records per data frame (must fit a datagram;
                                 ///< oversized frames are split automatically).
  std::size_t max_datagram_bytes = 8192;
  std::size_t sendmmsg_batch = 32;  ///< Datagrams per sendmmsg call.
  int sndbuf_bytes = 0;             ///< SO_SNDBUF (0 = kernel default).
  bool final_retransmit = true;     ///< Re-send all data frames at close().
  std::size_t goodbye_copies = 3;   ///< Same goodbye datagram, sent N times.
  SocketOps* ops = nullptr;         ///< nullptr = real syscalls.
  std::uint64_t session_id = 0;     ///< 0 = derive a process-unique one.
  /// Seeded drop plan: per-session datagram numbers never handed to the
  /// kernel. Deterministic loss injection for exact-accounting tests.
  std::vector<std::uint32_t> drop_datagrams;
};

class UdpEmitter {
 public:
  explicit UdpEmitter(std::uint16_t port, UdpEmitterOptions options = {});
  ~UdpEmitter();

  UdpEmitter(const UdpEmitter&) = delete;
  UdpEmitter& operator=(const UdpEmitter&) = delete;

  /// Buffer one record; packs a data frame when the batch fills.
  void record(const telemetry::ActionRecord& record);

  /// Pack any buffered records, add a flush marker, and ship everything
  /// queued so far.
  void flush();

  /// Flush, run the final retransmit pass, send goodbye; further record()
  /// calls throw. Idempotent.
  void close();

  std::size_t sent_records() const noexcept { return sent_records_; }
  std::size_t sent_frames() const noexcept { return sent_frames_; }
  /// Datagrams handed to the kernel (excludes planned drops).
  std::size_t sent_datagrams() const noexcept { return sent_datagrams_; }
  /// Datagrams suppressed by the drop plan.
  std::size_t planned_drops() const noexcept { return planned_drops_; }
  std::uint64_t session_id() const noexcept { return session_id_; }

 private:
  /// Encode records into data frame(s), splitting batches that would not
  /// fit a datagram.
  void pack_records(const telemetry::ActionRecord* records, std::size_t count);
  /// Append one encoded frame to the open datagram (starting a new one if
  /// it would overflow); remembers data frames for the retransmit pass.
  void queue_frame(const Frame& frame, bool remember);
  void append_bytes(const std::vector<std::uint8_t>& encoded);
  /// Seal the open datagram into the outbox (or the drop plan's bin).
  void seal_datagram();
  /// sendmmsg the outbox; resumes partial batches and EAGAIN stalls.
  void ship();

  SocketOps& ops_;
  Socket socket_;
  UdpEmitterOptions options_;
  std::uint64_t session_id_ = 0;
  std::uint32_t next_seq_ = 1;      ///< Frame sequence (session-wide).
  std::uint32_t next_datagram_ = 1; ///< Datagram sequence (session-wide).
  std::vector<std::uint8_t> current_;         ///< Open datagram bytes.
  std::uint32_t current_datagram_seq_ = 0;
  std::vector<std::vector<std::uint8_t>> outbox_;
  std::vector<std::vector<std::uint8_t>> retransmit_;  ///< Encoded data frames.
  std::vector<telemetry::ActionRecord> pending_;
  std::size_t sent_records_ = 0;
  std::size_t sent_frames_ = 0;
  std::size_t sent_datagrams_ = 0;
  std::size_t planned_drops_ = 0;
  bool closed_ = false;
};

}  // namespace autosens::net
