#include "net/wire.h"

#include <array>
#include <stdexcept>

#include "telemetry/binlog.h"

namespace autosens::net {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t read_u32(std::span<const std::uint8_t, 4> bytes) {
  return static_cast<std::uint32_t>(bytes[0]) | (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

bool valid_type(std::uint8_t raw) noexcept {
  const std::uint8_t base = raw & static_cast<std::uint8_t>(~kFrameTraceFlag);
  return base >= 1 && base <= 4;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

std::uint64_t read_u64(const std::uint8_t* bytes) noexcept {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | bytes[i];
  return value;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  const bool traced = frame.span_id != 0;
  std::vector<std::uint8_t> out;
  out.reserve(frame.payload.size() + kFrameOverheadBytes +
              (traced ? kFrameSpanIdBytes : 0));
  out.push_back(kFrameMagic0);
  out.push_back(kFrameMagic1);
  out.push_back(static_cast<std::uint8_t>(static_cast<std::uint8_t>(frame.type) |
                                          (traced ? kFrameTraceFlag : 0)));
  put_u32(out, frame.seq);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  if (traced) put_u64(out, frame.span_id);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  // CRC over type..payload: a flipped length, sequence, or span-id byte
  // fails the check the same way a flipped payload byte does.
  put_u32(out, telemetry::codec::crc32(
                   std::span<const std::uint8_t>(out.data() + 2, out.size() - 2)));
  return out;
}

Frame make_hello(std::uint64_t session_id) {
  Frame frame{.type = FrameType::kHello, .seq = 0, .span_id = 0, .payload = {}};
  frame.payload.reserve(8);
  put_u64(frame.payload, session_id);
  return frame;
}

Frame make_hello(std::uint64_t session_id, const WireTraceContext& trace) {
  Frame frame = make_hello(session_id);
  frame.payload.reserve(24);
  put_u64(frame.payload, trace.trace_id);
  put_u64(frame.payload, trace.span_id);
  return frame;
}

std::optional<std::uint64_t> parse_hello(std::span<const std::uint8_t> payload) noexcept {
  if (payload.size() != 8 && payload.size() != 24) return std::nullopt;
  return read_u64(payload.data());
}

std::optional<WireTraceContext> parse_hello_trace(
    std::span<const std::uint8_t> payload) noexcept {
  if (payload.size() != 24) return std::nullopt;
  return WireTraceContext{.trace_id = read_u64(payload.data() + 8),
                          .span_id = read_u64(payload.data() + 16)};
}

void send_frame(const Socket& socket, const Frame& frame, SocketOps& ops) {
  const auto bytes = encode_frame(frame);
  write_all(socket, bytes, ops);
}

void send_records(const Socket& socket, std::span<const telemetry::ActionRecord> records) {
  Frame frame{.type = FrameType::kData,
              .seq = 0,
              .payload = telemetry::codec::encode_batch(records)};
  send_frame(socket, frame);
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  // Compact occasionally so the buffer does not grow without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  while (buffer_.size() - consumed_ >= kFrameHeaderBytes) {
    const std::uint8_t* at = buffer_.data() + consumed_;
    const std::size_t available = buffer_.size() - consumed_;

    // Candidate frame at the current offset? Anything that fails a header
    // check is definitively not a frame start: skip one byte and rescan.
    if (at[0] != kFrameMagic0 || at[1] != kFrameMagic1 || !valid_type(at[2])) {
      ++consumed_;
      ++skipped_bytes_;
      skipping_ = true;
      continue;
    }
    const std::uint32_t len = read_u32(std::span<const std::uint8_t, 4>(at + 7, 4));
    if (len > max_payload_) {
      ++consumed_;
      ++skipped_bytes_;
      skipping_ = true;
      continue;
    }
    const std::size_t ext = (at[2] & kFrameTraceFlag) != 0 ? kFrameSpanIdBytes : 0;
    const std::size_t total = kFrameOverheadBytes + ext + static_cast<std::size_t>(len);
    if (available < total) return std::nullopt;  // plausible frame, need more bytes

    const std::uint32_t crc = read_u32(
        std::span<const std::uint8_t, 4>(at + kFrameHeaderBytes + ext + len, 4));
    if (crc != telemetry::codec::crc32(std::span<const std::uint8_t>(
                   at + 2, kFrameHeaderBytes - 2 + ext + len))) {
      ++consumed_;
      ++skipped_bytes_;
      skipping_ = true;
      continue;
    }

    Frame frame;
    frame.type = static_cast<FrameType>(at[2] & ~kFrameTraceFlag);
    frame.seq = read_u32(std::span<const std::uint8_t, 4>(at + 3, 4));
    if (ext != 0) frame.span_id = read_u64(at + kFrameHeaderBytes);
    frame.payload.assign(at + kFrameHeaderBytes + ext,
                         at + kFrameHeaderBytes + ext + len);
    consumed_ += total;
    if (skipping_) {
      ++resyncs_;
      skipping_ = false;
    }
    return frame;
  }
  return std::nullopt;
}

std::optional<Frame> recv_frame(const Socket& socket, std::size_t max_payload) {
  std::array<std::uint8_t, kFrameHeaderBytes> header{};
  if (!read_exact(socket, header)) return std::nullopt;
  if (header[0] != kFrameMagic0 || header[1] != kFrameMagic1) {
    throw std::runtime_error("recv_frame: bad frame magic");
  }
  if (!valid_type(header[2])) throw std::runtime_error("recv_frame: unknown frame type");
  const std::uint32_t len =
      read_u32(std::span<const std::uint8_t, 4>(header.data() + 7, 4));
  if (len > max_payload) throw std::runtime_error("recv_frame: payload exceeds limit");
  const std::size_t ext =
      (header[2] & kFrameTraceFlag) != 0 ? kFrameSpanIdBytes : 0;

  // The CRC covers type..[span id..]payload; rebuild that region
  // contiguously so the check runs over one span (this blocking path is
  // tests/tools only — the collector's FrameDecoder checks in place without
  // the copy).
  std::vector<std::uint8_t> checked(kFrameHeaderBytes - 2 + ext + len);
  std::copy(header.begin() + 2, header.end(), checked.begin());
  if (ext + len > 0 &&
      !read_exact(socket, std::span<std::uint8_t>(checked.data() + kFrameHeaderBytes - 2,
                                                  ext + len))) {
    throw std::runtime_error("recv_frame: truncated payload");
  }
  std::array<std::uint8_t, 4> crc_bytes{};
  if (!read_exact(socket, crc_bytes)) throw std::runtime_error("recv_frame: truncated crc");
  const std::uint32_t crc = read_u32(std::span<const std::uint8_t, 4>(crc_bytes));
  if (crc != telemetry::codec::crc32(checked)) {
    throw std::runtime_error("recv_frame: crc mismatch");
  }

  Frame frame;
  frame.type = static_cast<FrameType>(header[2] & ~kFrameTraceFlag);
  frame.seq = read_u32(std::span<const std::uint8_t, 4>(header.data() + 3, 4));
  if (ext != 0) frame.span_id = read_u64(checked.data() + kFrameHeaderBytes - 2);
  frame.payload.assign(checked.begin() + kFrameHeaderBytes - 2 + static_cast<std::ptrdiff_t>(ext),
                       checked.end());
  return frame;
}

}  // namespace autosens::net
