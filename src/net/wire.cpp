#include "net/wire.h"

#include <array>
#include <stdexcept>

#include "telemetry/binlog.h"

namespace autosens::net {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t read_u32(std::span<const std::uint8_t, 4> bytes) {
  return static_cast<std::uint32_t>(bytes[0]) | (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame.payload.size() + 9);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  put_u32(out, telemetry::codec::crc32(frame.payload));
  return out;
}

void send_frame(const Socket& socket, const Frame& frame) {
  const auto bytes = encode_frame(frame);
  write_all(socket, bytes);
}

void send_records(const Socket& socket, std::span<const telemetry::ActionRecord> records) {
  Frame frame{.type = FrameType::kData, .payload = telemetry::codec::encode_batch(records)};
  send_frame(socket, frame);
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  // Compact occasionally so the buffer does not grow without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 5) return std::nullopt;
  const std::uint8_t raw_type = buffer_[consumed_];
  if (raw_type < 1 || raw_type > 3) {
    throw std::runtime_error("FrameDecoder: unknown frame type");
  }
  const std::uint32_t len = read_u32(
      std::span<const std::uint8_t, 4>(buffer_.data() + consumed_ + 1, 4));
  if (len > max_payload_) throw std::runtime_error("FrameDecoder: payload exceeds limit");
  const std::size_t total = 5 + static_cast<std::size_t>(len) + 4;
  if (available < total) return std::nullopt;

  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 5),
                       buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_ + 5 + len));
  const std::uint32_t crc = read_u32(
      std::span<const std::uint8_t, 4>(buffer_.data() + consumed_ + 5 + len, 4));
  if (crc != telemetry::codec::crc32(frame.payload)) {
    throw std::runtime_error("FrameDecoder: crc mismatch");
  }
  consumed_ += total;
  return frame;
}

std::optional<Frame> recv_frame(const Socket& socket, std::size_t max_payload) {
  std::array<std::uint8_t, 5> header{};
  if (!read_exact(socket, header)) return std::nullopt;
  const auto raw_type = header[0];
  if (raw_type < 1 || raw_type > 3) {
    throw std::runtime_error("recv_frame: unknown frame type");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  const std::uint32_t len = read_u32(std::span<const std::uint8_t, 4>(header.data() + 1, 4));
  if (len > max_payload) throw std::runtime_error("recv_frame: payload exceeds limit");
  frame.payload.resize(len);
  if (len > 0 && !read_exact(socket, frame.payload)) {
    throw std::runtime_error("recv_frame: truncated payload");
  }
  std::array<std::uint8_t, 4> crc_bytes{};
  if (!read_exact(socket, crc_bytes)) throw std::runtime_error("recv_frame: truncated crc");
  const std::uint32_t crc = read_u32(std::span<const std::uint8_t, 4>(crc_bytes));
  if (crc != telemetry::codec::crc32(frame.payload)) {
    throw std::runtime_error("recv_frame: crc mismatch");
  }
  return frame;
}

}  // namespace autosens::net
