#include "net/emitter.h"

#include <stdexcept>

#include "net/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace autosens::net {
namespace {

obs::Counter& emitted_records_counter() {
  static obs::Counter& counter = obs::registry().counter(
      "autosens_emitter_records_total", "Records shipped by emitters");
  return counter;
}

}  // namespace

Emitter::Emitter(std::uint16_t port, EmitterOptions options)
    : socket_(connect_tcp(port)), options_(options) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("Emitter: batch_size must be nonzero");
  }
  pending_.reserve(options_.batch_size);
  obs::log_debug("emitter.connect", {{"port", port}, {"batch", options_.batch_size}});
}

Emitter::~Emitter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an unreachable collector at teardown is
    // not recoverable here.
  }
}

void Emitter::record(const telemetry::ActionRecord& record) {
  if (closed_) throw std::logic_error("Emitter::record: emitter already closed");
  pending_.push_back(record);
  if (pending_.size() >= options_.batch_size) send_pending();
}

void Emitter::send_pending() {
  if (pending_.empty()) return;
  send_records(socket_, pending_);
  sent_records_ += pending_.size();
  ++sent_frames_;
  emitted_records_counter().inc(pending_.size());
  pending_.clear();
}

void Emitter::flush() {
  if (closed_) throw std::logic_error("Emitter::flush: emitter already closed");
  send_pending();
  send_frame(socket_, Frame{.type = FrameType::kFlush, .payload = {}});
  ++sent_frames_;
}

void Emitter::close() {
  if (closed_) return;
  send_pending();
  send_frame(socket_, Frame{.type = FrameType::kGoodbye, .payload = {}});
  ++sent_frames_;
  closed_ = true;
  socket_.close();
  obs::log_debug("emitter.close",
                 {{"records", sent_records_}, {"frames", sent_frames_}});
}

}  // namespace autosens::net
