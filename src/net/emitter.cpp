#include "net/emitter.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/rng.h"
#include "telemetry/binlog.h"

namespace autosens::net {
namespace {

/// Global registry mirrors of the emitter-side resilience counters, so a
/// process-wide metrics snapshot sees retry pressure without a handle on
/// any particular Emitter.
struct EmitterMetrics {
  obs::Counter& records = obs::registry().counter(
      "autosens_emitter_records_total", "Records shipped by emitters");
  obs::Counter& retries = obs::registry().counter(
      "autosens_net_retries_total", "Frame send/connect attempts that were retried");
  obs::Counter& reconnects = obs::registry().counter(
      "autosens_net_reconnects_total", "Emitter reconnects after a dropped connection");
  obs::Counter& degraded_drops = obs::registry().counter(
      "autosens_net_degraded_drops_total",
      "Records abandoned after retry exhaustion (declared loss)");
  obs::Gauge& backoff_last = obs::registry().gauge(
      "autosens_net_backoff_ms", "Most recent retry backoff delay");
  obs::Gauge& backoff_total = obs::registry().gauge(
      "autosens_net_backoff_total_ms", "Cumulative retry backoff requested");
};

EmitterMetrics& emitter_metrics() {
  static EmitterMetrics handles;
  return handles;
}

std::uint64_t derive_session_id() {
  // Process-unique, deterministic order: mix a monotonic counter so ids are
  // well-spread and never 0 (0 marks a sessionless legacy sender).
  static std::atomic<std::uint64_t> next{1};
  const std::uint64_t id =
      stats::SplitMix64(0xa575e55'1d5eedULL + next.fetch_add(1)).next();
  return id != 0 ? id : 1;
}

}  // namespace

Emitter::Emitter(std::uint16_t port, EmitterOptions options)
    : ops_(options.ops != nullptr ? *options.ops : real_socket_ops()),
      port_(port),
      options_(options),
      session_id_(options.session_id != 0 ? options.session_id : derive_session_id()),
      jitter_state_(0) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("Emitter: batch_size must be nonzero");
  }
  pending_.reserve(options_.batch_size);
  // Eager connect under the retry policy, so construction fails fast (or
  // degrades explicitly) instead of deferring the error to the first batch.
  const std::size_t attempts = std::max<std::size_t>(1, options_.retry.max_attempts);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      emitter_metrics().retries.inc();
      backoff_sleep(attempt - 1);
    }
    try {
      ensure_connected();
      break;
    } catch (const SocketError&) {
      socket_.close();
      connected_ = false;
      if (attempt + 1 == attempts && options_.on_give_up == EmitterOptions::GiveUp::kThrow) {
        throw;
      }
    }
  }
  obs::log_debug("emitter.connect", {{"port", port},
                                     {"batch", options_.batch_size},
                                     {"session", session_id_},
                                     {"connected", connected_}});
}

Emitter::~Emitter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an unreachable collector at teardown is
    // not recoverable here.
  }
}

void Emitter::ensure_connected() {
  if (connected_) return;
  obs::Span span("net.connect");
  socket_ = connect_tcp(port_, ops_);
  // A hello opens every connection: the stable session id is what lets the
  // collector fold reconnects into one logical stream and dedup resends.
  // With tracing on, the hello also carries the trace context (trace id +
  // this connect span) so the collector joins the same distributed trace.
  Frame hello = make_hello(session_id_);
  if (span.active()) {
    hello = make_hello(session_id_,
                       WireTraceContext{.trace_id = obs::Tracer::global().ensure_trace_id(),
                                        .span_id = span.id()});
    hello.span_id = span.id();
  }
  write_all(socket_, encode_frame(hello), ops_);
  connected_ = true;
  if (ever_connected_) {
    ++stats_.reconnects;
    emitter_metrics().reconnects.inc();
    obs::log_debug("emitter.reconnect", {{"session", session_id_}});
  }
  ever_connected_ = true;
}

void Emitter::backoff_sleep(std::size_t attempt) {
  const auto& retry = options_.retry;
  double delay = static_cast<double>(retry.backoff_initial_ms) *
                 std::pow(retry.backoff_multiplier, static_cast<double>(attempt));
  delay = std::min(delay, static_cast<double>(retry.backoff_max_ms));
  if (retry.jitter > 0.0) {
    // Counter-seeded draw: jitter depends on (seed, draw index) only, so a
    // rerun with the same seed waits the same schedule.
    stats::Random draw(stats::substream_seed(retry.seed, jitter_state_++));
    delay *= 1.0 - retry.jitter * draw.uniform();
  }
  const auto delay_ms = static_cast<std::uint32_t>(std::lround(std::max(delay, 0.0)));
  stats_.backoff_ms += delay_ms;
  emitter_metrics().backoff_last.set(static_cast<double>(delay_ms));
  emitter_metrics().backoff_total.add(static_cast<double>(delay_ms));
  ops_.sleep_ms(delay_ms);
}

bool Emitter::send_frame_with_retry(Frame frame, std::size_t record_count) {
  obs::Span span("net.send_frame");
  if (span.active()) {
    span.attr("seq", static_cast<std::int64_t>(frame.seq));
    span.attr("records", static_cast<std::int64_t>(record_count));
    // Stamp before encoding: every retransmit of this frame carries the
    // same span id and stays byte-identical for the collector's dedup.
    frame.span_id = span.id();
  }
  const auto bytes = encode_frame(frame);
  const std::size_t attempts = std::max<std::size_t>(1, options_.retry.max_attempts);
  std::exception_ptr last_error;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      emitter_metrics().retries.inc();
      obs::Span backoff_span("net.backoff");
      backoff_span.attr("attempt", static_cast<std::int64_t>(attempt));
      backoff_sleep(attempt - 1);
    }
    try {
      ensure_connected();
      write_all(socket_, bytes, ops_);
      return true;
    } catch (const SocketError& error) {
      last_error = std::current_exception();
      socket_.close();
      connected_ = false;
      obs::log_debug("emitter.send_failed", {{"session", session_id_},
                                             {"seq", frame.seq},
                                             {"attempt", attempt + 1},
                                             {"error", error.what()}});
    }
  }
  if (options_.on_give_up == EmitterOptions::GiveUp::kThrow) {
    std::rethrow_exception(last_error);
  }
  ++stats_.dropped_frames;
  stats_.dropped_records += record_count;
  emitter_metrics().degraded_drops.inc(record_count);
  obs::log_info("emitter.degraded_drop", {{"session", session_id_},
                                          {"seq", frame.seq},
                                          {"records", record_count}});
  return false;
}

void Emitter::record(const telemetry::ActionRecord& record) {
  if (closed_) throw std::logic_error("Emitter::record: emitter already closed");
  pending_.push_back(record);
  if (pending_.size() >= options_.batch_size) send_pending();
}

void Emitter::send_pending() {
  if (pending_.empty()) return;
  Frame frame{.type = FrameType::kData,
              .seq = next_seq_++,
              .payload = telemetry::codec::encode_batch(pending_)};
  if (send_frame_with_retry(frame, pending_.size())) {
    sent_records_ += pending_.size();
    ++sent_frames_;
    emitter_metrics().records.inc(pending_.size());
  }
  pending_.clear();
}

void Emitter::flush() {
  if (closed_) throw std::logic_error("Emitter::flush: emitter already closed");
  send_pending();
  if (send_frame_with_retry(
          Frame{.type = FrameType::kFlush, .seq = next_seq_++, .payload = {}}, 0)) {
    ++sent_frames_;
  }
}

void Emitter::close() {
  if (closed_) return;
  send_pending();
  if (send_frame_with_retry(
          Frame{.type = FrameType::kGoodbye, .seq = next_seq_++, .payload = {}}, 0)) {
    ++sent_frames_;
  }
  closed_ = true;
  socket_.close();
  connected_ = false;
  obs::log_debug("emitter.close", {{"records", sent_records_},
                                   {"frames", sent_frames_},
                                   {"retries", stats_.retries},
                                   {"dropped_records", stats_.dropped_records}});
}

}  // namespace autosens::net
