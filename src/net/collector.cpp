#include "net/collector.h"

#include <poll.h>
#include <sys/socket.h>

#include <array>
#include <cerrno>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "telemetry/binlog.h"

namespace autosens::net {

struct Collector::Connection {
  Socket socket;
  FrameDecoder decoder;
  bool saw_goodbye = false;
};

Collector::Collector(std::uint16_t port) { listener_ = listen_tcp(port, port_); }

std::size_t Collector::drain_frames(Connection& connection) {
  std::size_t goodbyes = 0;
  while (auto frame = connection.decoder.next()) {
    ++stats_.frames;
    switch (frame->type) {
      case FrameType::kData: {
        const auto records = telemetry::codec::decode_batch(frame->payload);
        stats_.records += records.size();
        for (const auto& r : records) dataset_.add(r);
        break;
      }
      case FrameType::kFlush:
        ++stats_.flushes;
        break;
      case FrameType::kGoodbye:
        connection.saw_goodbye = true;
        ++goodbyes;
        break;
    }
  }
  return goodbyes;
}

bool Collector::serve_until_goodbye(std::size_t expected_goodbyes, int timeout_ms) {
  std::vector<Connection> connections;
  std::size_t goodbyes = 0;

  while (goodbyes < expected_goodbyes) {
    std::vector<pollfd> fds;
    fds.reserve(connections.size() + 1);
    fds.push_back({.fd = listener_.fd(), .events = POLLIN, .revents = 0});
    for (const auto& connection : connections) {
      fds.push_back({.fd = connection.socket.fd(), .events = POLLIN, .revents = 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SocketError("poll()", errno);
    }
    if (ready == 0) return false;  // idle timeout

    // New connection?
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd >= 0) {
        connections.push_back({Socket(fd), FrameDecoder{}, false});
        ++stats_.connections;
      } else if (errno != EINTR && errno != EAGAIN) {
        throw SocketError("accept()", errno);
      }
    }

    // Data on existing connections. Iterate over the snapshot taken before
    // the accept; indices into `fds` are connection index + 1.
    std::vector<std::size_t> to_close;
    const std::size_t polled = fds.size() - 1;
    for (std::size_t i = 0; i < polled; ++i) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      auto& connection = connections[i];
      std::array<std::uint8_t, 16384> buffer;
      const ssize_t n = ::recv(connection.socket.fd(), buffer.data(), buffer.size(), 0);
      if (n > 0) {
        connection.decoder.feed(
            std::span<const std::uint8_t>(buffer.data(), static_cast<std::size_t>(n)));
        try {
          goodbyes += drain_frames(connection);
        } catch (const std::runtime_error&) {
          // Malformed stream: drop the connection, keep decoded records.
          ++stats_.dropped_connections;
          to_close.push_back(i);
          continue;
        }
        if (connection.saw_goodbye) to_close.push_back(i);
      } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
        // Peer closed (with or without goodbye) or hard error.
        if (n < 0) ++stats_.dropped_connections;
        to_close.push_back(i);
      }
    }
    // Close back-to-front so indices stay valid.
    for (auto it = to_close.rbegin(); it != to_close.rend(); ++it) {
      connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(*it));
    }
  }
  return true;
}

telemetry::Dataset Collector::take_dataset() {
  dataset_.sort_by_time();
  return std::exchange(dataset_, telemetry::Dataset{});
}

CollectorThread::CollectorThread(std::size_t expected_goodbyes, std::uint16_t port)
    : collector_(port), port_(collector_.port()) {
  thread_ = std::thread([this, expected_goodbyes] {
    collector_.serve_until_goodbye(expected_goodbyes, /*timeout_ms=*/30'000);
    done_.store(true, std::memory_order_release);
  });
}

CollectorThread::~CollectorThread() {
  if (thread_.joinable()) thread_.join();
}

telemetry::Dataset CollectorThread::join() {
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mutex_);
  return collector_.take_dataset();
}

CollectorStats CollectorThread::stats() const {
  std::lock_guard lock(mutex_);
  return collector_.stats();
}

}  // namespace autosens::net
