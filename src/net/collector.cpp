#include "net/collector.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <sstream>
#include <utility>

#include "net/collector_metrics.h"
#include "net/wire.h"
#include "obs/health.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "telemetry/binlog.h"

namespace autosens::net {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_between(Clock::time_point earlier, Clock::time_point later) noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(later - earlier).count();
}

/// Spine key for one shard connection stream.
std::uint64_t conn_key(std::uint32_t shard, std::uint64_t serial) noexcept {
  return (static_cast<std::uint64_t>(shard) << 48) ^ serial;
}

}  // namespace

Collector::Collector(const CollectorOptions& options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  const auto shard_count = static_cast<std::uint32_t>(options_.shards);
  SocketOps& ops = options_.ops != nullptr ? *options_.ops : real_socket_ops();

  event_queues_.reserve(shard_count);
  shards_.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    event_queues_.push_back(std::make_unique<SpscQueue<ShardEvent>>(4096));
    ShardOptions shard_options{
        .index = i,
        .total = shard_count,
        .transport = options_.transport,
        .read_deadline_ms = options_.read_deadline_ms,
        .max_resync_bytes = options_.max_resync_bytes,
        .recvmmsg_batch = options_.recvmmsg_batch,
        .ops = options_.ops,
    };
    shards_.push_back(std::make_unique<CollectorShard>(
        shard_options, *event_queues_.back(), [this] { wake_cv_.notify_one(); }));
    shard_records_metrics_.push_back(&obs::registry().counter(
        "autosens_net_shard_records_total{shard=\"" + std::to_string(i) + "\"}",
        "Records ingested via this shard's connections"));
  }

  if (options_.transport == Transport::kTcp) {
    if (options_.reuseport_accept) {
      // One SO_REUSEPORT listener per shard: the kernel shards the accept
      // queue, no handoff needed. Shard 0 resolves the ephemeral port.
      for (std::uint32_t i = 0; i < shard_count; ++i) {
        std::uint16_t bound = 0;
        shards_[i]->set_tcp_listener(
            listen_tcp_reuseport(i == 0 ? options_.port : port_, bound));
        if (i == 0) port_ = bound;
      }
    } else {
      // Portable fallback: shard 0 owns the only (nonblocking) listener and
      // deals accepted fds round-robin to its siblings.
      Socket listener = listen_tcp(options_.port, port_, 128);
      set_nonblocking(listener.fd());
      shards_[0]->set_tcp_listener(std::move(listener));
      shards_[0]->set_handoff(
          [this](std::uint32_t target, int fd) { shards_[target]->adopt_fd(fd); });
    }
  } else {
    // UDP: one SO_REUSEPORT-grouped socket per shard. A connected sender's
    // 4-tuple hashes to one socket, so per-source datagram order is
    // preserved within a shard.
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      std::uint16_t bound = 0;
      Socket socket =
          bind_udp(i == 0 ? options_.port : port_, bound, /*reuseport=*/shard_count > 1);
      if (i == 0) port_ = bound;
      if (options_.rcvbuf_bytes > 0) {
        ops.setsockopt_int(socket.fd(), SOL_SOCKET, SO_RCVBUF, options_.rcvbuf_bytes);
      }
      shards_[i]->set_udp_socket(std::move(socket));
    }
  }

  health_name_ = "collector:" + std::to_string(port_);
  obs::Health::global().set_component(
      health_name_, true, "listening on 127.0.0.1:" + std::to_string(port_));
  status_section_id_ = obs::StatusRegistry::global().add_section(
      health_name_, [this] { return status_json(); });
  obs::log_debug("collector.listen",
                 {{"port", port_},
                  {"shards", shard_count},
                  {"transport", options_.transport == Transport::kUdp ? "udp" : "tcp"}});

  for (auto& shard : shards_) shard->start();
}

Collector::~Collector() {
  // Stop the shard threads before any member they touch (queues, the wake
  // cv through notify_) is destroyed.
  for (auto& shard : shards_) shard->stop();
  obs::StatusRegistry::global().remove_section(status_section_id_);
  obs::Health::global().remove_component(health_name_);
}

CollectorStats Collector::stats() const noexcept {
  return CollectorStats{
      .connections = static_cast<std::size_t>(stats_.connections.get()),
      .frames = static_cast<std::size_t>(stats_.frames.get()),
      .records = static_cast<std::size_t>(stats_.records.get()),
      .flushes = static_cast<std::size_t>(stats_.flushes.get()),
      .dropped_connections = static_cast<std::size_t>(stats_.dropped_connections.get()),
      .bytes = static_cast<std::size_t>(stats_.bytes.get()),
      .backpressure_reads = static_cast<std::size_t>(stats_.backpressure_reads.get()),
      .resyncs = static_cast<std::size_t>(stats_.resyncs.get()),
      .resync_bytes = static_cast<std::size_t>(stats_.resync_bytes.get()),
      .duplicate_frames = static_cast<std::size_t>(stats_.duplicate_frames.get()),
      .sessions = static_cast<std::size_t>(stats_.sessions.get()),
      .sessions_active = static_cast<std::size_t>(stats_.sessions.get() -
                                                  stats_.sessions_closed.get()),
      .session_reconnects = static_cast<std::size_t>(stats_.session_reconnects.get()),
      .deadline_drops = static_cast<std::size_t>(stats_.deadline_drops.get()),
      .interrupted_connections =
          static_cast<std::size_t>(stats_.interrupted_connections.get()),
      .udp_datagrams = static_cast<std::size_t>(stats_.udp_datagrams.get()),
      .udp_rejected = static_cast<std::size_t>(stats_.udp_rejected.get()),
      .udp_duplicate_datagrams =
          static_cast<std::size_t>(stats_.udp_duplicate_datagrams.get()),
      .udp_lost = static_cast<std::size_t>(stats_.udp_lost.get()),
  };
}

std::vector<ShardStats> Collector::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->stats());
  return out;
}

std::string Collector::status_json() const {
  const CollectorStats s = stats();
  std::ostringstream out;
  out << "{\"port\": " << port_
      << ", \"transport\": \""
      << (options_.transport == Transport::kUdp ? "udp" : "tcp") << "\""
      << ", \"records\": " << s.records << ", \"frames\": " << s.frames
      << ", \"bytes\": " << s.bytes << ", \"dedup_hits\": " << s.duplicate_frames
      << ", \"resyncs\": " << s.resyncs << ", \"resync_bytes\": " << s.resync_bytes
      << ", \"dropped_connections\": " << s.dropped_connections
      << ", \"sessions_active\": " << s.sessions_active
      << ", \"udp_lost\": " << s.udp_lost << ", \"shards\": [";
  const auto per_shard = shard_stats();
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    const auto& sh = per_shard[i];
    if (i != 0) out << ", ";
    out << "{\"shard\": " << i << ", \"connections\": " << sh.connections
        << ", \"epoll_wakeups\": " << sh.epoll_wakeups
        << ", \"eagain_retries\": " << sh.eagain_retries
        << ", \"spsc_stalls\": " << sh.spsc_stalls
        << ", \"queue_depth\": " << sh.queue_depth
        << ", \"udp_datagrams\": " << sh.udp_datagrams << "}";
  }
  out << "], \"sessions\": {";
  std::lock_guard lock(sessions_mutex_);
  bool first = true;
  for (const auto& [id, session] : sessions_) {
    if (!first) out << ", ";
    first = false;
    // Session ids can exceed 2^53: emit as strings to stay JSON-exact.
    out << "\"" << id << "\": {\"last_seq\": " << session.last_seq
        << ", \"goodbye\": " << (session.said_goodbye ? "true" : "false")
        << ", \"connections\": " << session.connections_seen
        << ", \"gaps\": " << (session.missing.size() + session.dg_missing.size()) << "}";
  }
  out << "}}";
  return out.str();
}

bool Collector::accept_seq(Session& session, std::uint32_t seq) {
  if (seq > session.last_seq) {
    std::uint64_t gaps = static_cast<std::uint64_t>(seq) - session.last_seq - 1;
    std::uint32_t gap = session.last_seq + 1;
    while (gaps > 0 && session.missing.size() < options_.max_tracked_gaps) {
      session.missing.insert(gap++);
      --gaps;
    }
    session.gap_overflow += gaps;
    session.last_seq = seq;
    return true;
  }
  const auto it = session.missing.find(seq);
  if (it != session.missing.end()) {
    // A gap filled late: reordered or retransmitted delivery of a frame
    // that never arrived the first time. Apply it exactly once.
    session.missing.erase(it);
    return true;
  }
  return false;
}

std::size_t Collector::apply_frame(const Frame& frame, Session* session,
                                   std::uint64_t session_id, bool& saw_goodbye,
                                   bool* dead) {
  if (session != nullptr && frame.seq != 0) {
    if (!accept_seq(*session, frame.seq)) {
      // A retransmission of a frame that did arrive the first time: the
      // emitter could not know, the dedup is what makes its retry safe.
      stats_.duplicate_frames.add();
      collector_metrics().dedup_hits.inc();
      obs::Span dedup_span("net.dedup_drop");
      dedup_span.link_parent(frame.span_id != 0 ? frame.span_id : session->trace_span);
      dedup_span.attr("seq", static_cast<std::int64_t>(frame.seq));
      if (frame.type == FrameType::kGoodbye) saw_goodbye = true;
      return 0;
    }
  }

  switch (frame.type) {
    case FrameType::kData: {
      // Decode span parented on the emitter-side send span carried by the
      // frame (falling back to the session's connect span): the stitch
      // that makes the replay|collect Chrome trace one connected tree.
      obs::Span decode_span("net.decode_frame");
      decode_span.link_parent(frame.span_id != 0
                                  ? frame.span_id
                                  : (session != nullptr ? session->trace_span : 0));
      decode_span.attr("seq", static_cast<std::int64_t>(frame.seq));
      try {
        const auto records = telemetry::codec::decode_batch(frame.payload);
        stats_.records.add(records.size());
        collector_metrics().records.inc(records.size());
        decode_span.attr("records", static_cast<std::int64_t>(records.size()));
        for (const auto& r : records) dataset_.add(r);
      } catch (const std::runtime_error& error) {
        // CRC-valid but undecodable payload: a sender bug, not line noise.
        // Resync cannot help; drop the stream.
        obs::log_info("collector.drop_connection",
                      {{"reason", "bad_payload"}, {"error", error.what()}});
        *dead = true;
      }
      break;
    }
    case FrameType::kFlush:
      stats_.flushes.add();
      collector_metrics().flushes.inc();
      break;
    case FrameType::kGoodbye:
      saw_goodbye = true;
      if (session != nullptr) {
        if (!session->said_goodbye) {
          session->said_goodbye = true;
          stats_.sessions_closed.add();
          collector_metrics().sessions_active.add(-1.0);
          return 1;
        }
      } else {
        (void)session_id;
        return 1;  // sessionless stream: credit per goodbye, as the poll era did
      }
      break;
    case FrameType::kHello:
      break;  // handled by the caller
  }
  return 0;
}

std::size_t Collector::apply_tcp_frames(ShardEvent& event) {
  auto& conn = conns_[conn_key(event.shard, event.conn)];
  if (event.received_bytes) conn.received_bytes = true;
  if (conn.dead) return 0;

  std::lock_guard lock(sessions_mutex_);
  std::size_t goodbyes = 0;
  for (auto& frame : event.frames) {
    stats_.frames.add();
    collector_metrics().frames.inc();

    if (frame.type == FrameType::kHello) {
      const auto id = parse_hello(frame.payload);
      if (!id || *id == 0) {
        obs::log_info("collector.drop_connection", {{"reason", "bad_hello"}});
        conn.dead = true;
        break;
      }
      conn.session_id = *id;
      auto& session = sessions_[*id];
      ++session.connections_seen;
      if (session.connections_seen == 1) {
        stats_.sessions.add();
        collector_metrics().sessions.inc();
        collector_metrics().sessions_active.add(1.0);
      } else {
        stats_.session_reconnects.add();
        collector_metrics().session_reconnects.inc();
        if (session.connections_seen > options_.max_session_reconnects + 1) {
          obs::log_info("collector.drop_connection",
                        {{"reason", "reconnect_budget"}, {"session", *id}});
          conn.dead = true;
          break;
        }
        obs::log_debug("collector.session_reconnect",
                       {{"session", *id}, {"count", session.connections_seen - 1}});
      }
      // Extended hello: adopt the emitter's trace context so this
      // collector's spans join the same distributed trace.
      if (const auto trace = parse_hello_trace(frame.payload)) {
        session.trace_span = trace->span_id;
        if (trace->trace_id != 0) obs::Tracer::global().set_trace_id(trace->trace_id);
        obs::Span hello_span("net.hello");
        hello_span.link_parent(trace->span_id);
        hello_span.attr("reconnect",
                        static_cast<std::int64_t>(session.connections_seen - 1));
      }
      continue;
    }

    Session* session = conn.session_id != 0 ? &sessions_[conn.session_id] : nullptr;
    bool dead = false;
    goodbyes += apply_frame(frame, session, conn.session_id, conn.saw_goodbye, &dead);
    if (dead) {
      conn.dead = true;
      break;
    }
  }

  if (conn.dead) {
    // The stream is poisoned: drop everything after the offending frame
    // (this event and all later ones) and have the owning shard close it.
    stats_.dropped_connections.add();
    collector_metrics().drops.inc();
    shards_[event.shard]->request_close(event.conn);
  } else if (conn.saw_goodbye) {
    shards_[event.shard]->request_close(event.conn);
  }
  return goodbyes;
}

std::size_t Collector::apply_udp_frames(ShardEvent& event) {
  std::lock_guard lock(sessions_mutex_);
  std::size_t goodbyes = 0;
  Session* session = nullptr;
  std::uint64_t session_id = 0;
  bool accepting = false;

  for (auto& frame : event.frames) {
    if (frame.type == FrameType::kHello) {
      stats_.frames.add();
      collector_metrics().frames.inc();
      const auto id = parse_hello(frame.payload);
      if (!id || *id == 0) {  // shard pre-validates; defensive
        accepting = false;
        session = nullptr;
        continue;
      }
      auto& s = sessions_[*id];
      if (s.connections_seen == 0) {
        s.connections_seen = 1;
        stats_.sessions.add();
        collector_metrics().sessions.inc();
        collector_metrics().sessions_active.add(1.0);
        if (const auto trace = parse_hello_trace(frame.payload)) {
          s.trace_span = trace->span_id;
          if (trace->trace_id != 0) obs::Tracer::global().set_trace_id(trace->trace_id);
        }
      }
      // Datagram-level exactly-once: the hello's seq is the per-session
      // datagram number. A duplicate datagram is skipped whole; a fresh
      // one (including one filling an old gap) is applied.
      bool fresh = true;
      if (frame.seq != 0) {
        if (frame.seq > s.dg_last) {
          std::uint64_t gaps = static_cast<std::uint64_t>(frame.seq) - s.dg_last - 1;
          std::uint32_t gap = s.dg_last + 1;
          while (gaps > 0 && s.dg_missing.size() < options_.max_tracked_gaps) {
            s.dg_missing.insert(gap++);
            --gaps;
          }
          s.dg_overflow += gaps;
          s.dg_last = frame.seq;
        } else if (const auto it = s.dg_missing.find(frame.seq);
                   it != s.dg_missing.end()) {
          s.dg_missing.erase(it);
        } else {
          fresh = false;
        }
      }
      if (!fresh) {
        stats_.udp_duplicate_datagrams.add();
        collector_metrics().dedup_hits.inc();
        accepting = false;
        session = nullptr;
        continue;
      }
      session = &s;
      session_id = *id;
      accepting = true;
      continue;
    }

    if (!accepting || session == nullptr) continue;
    stats_.frames.add();
    collector_metrics().frames.inc();
    bool saw_goodbye = false;
    bool dead = false;
    goodbyes += apply_frame(frame, session, session_id, saw_goodbye, &dead);
    if (dead) {
      // Undecodable payload inside a datagram: skip the datagram's
      // remainder; there is no connection to drop.
      accepting = false;
    }
  }
  return goodbyes;
}

std::size_t Collector::apply_event(ShardEvent& event) {
  if (event.bytes_delta > 0) {
    stats_.bytes.add(event.bytes_delta);
    collector_metrics().bytes.inc(event.bytes_delta);
  }
  if (event.backpressure_delta > 0) {
    stats_.backpressure_reads.add(event.backpressure_delta);
    collector_metrics().backpressure.inc(event.backpressure_delta);
  }
  if (event.resyncs_delta > 0) {
    stats_.resyncs.add(event.resyncs_delta);
    collector_metrics().resyncs.inc(event.resyncs_delta);
  }
  if (event.skipped_delta > 0) {
    stats_.resync_bytes.add(event.skipped_delta);
    collector_metrics().resync_bytes.inc(event.skipped_delta);
  }
  if (event.udp_datagrams_delta > 0) {
    stats_.udp_datagrams.add(event.udp_datagrams_delta);
    collector_metrics().udp_datagrams.inc(event.udp_datagrams_delta);
  }
  if (event.udp_rejected_delta > 0) stats_.udp_rejected.add(event.udp_rejected_delta);

  switch (event.kind) {
    case ShardEvent::Kind::kSync:
      return 0;  // barrier ack; consumed by serve_until_goodbye

    case ShardEvent::Kind::kOpen:
      stats_.connections.add();
      collector_metrics().connections.inc();
      conns_[conn_key(event.shard, event.conn)] = ConnState{};
      return 0;

    case ShardEvent::Kind::kFrames: {
      const auto records_before = stats_.records.get();
      const std::size_t goodbyes = event.transport == Transport::kUdp
                                       ? apply_udp_frames(event)
                                       : apply_tcp_frames(event);
      const auto delta = stats_.records.get() - records_before;
      if (delta > 0 && event.shard < shard_records_metrics_.size()) {
        shard_records_metrics_[event.shard]->inc(delta);
      }
      return goodbyes;
    }

    case ShardEvent::Kind::kEof: {
      const auto key = conn_key(event.shard, event.conn);
      auto it = conns_.find(key);
      ConnState conn = it != conns_.end() ? it->second : ConnState{};
      if (it != conns_.end()) conns_.erase(it);
      if (conn.dead) return 0;  // already accounted when poisoned
      if (event.received_bytes) conn.received_bytes = true;

      switch (event.reason) {
        case ShardEvent::EofReason::kDeadline:
          stats_.deadline_drops.add();
          collector_metrics().deadline_drops.inc();
          stats_.dropped_connections.add();
          collector_metrics().drops.inc();
          obs::log_info("collector.drop_connection",
                        {{"reason", "read_deadline"},
                         {"session", conn.session_id},
                         {"deadline_ms", options_.read_deadline_ms}});
          break;
        case ShardEvent::EofReason::kTransport:
          stats_.dropped_connections.add();
          collector_metrics().drops.inc();
          obs::log_info("collector.drop_connection",
                        {{"reason", "transport"}, {"errno", event.err}});
          break;
        case ShardEvent::EofReason::kResyncBudget:
          stats_.dropped_connections.add();
          collector_metrics().drops.inc();
          obs::log_info("collector.drop_connection", {{"reason", "resync_budget"}});
          break;
        case ShardEvent::EofReason::kClean: {
          // Peer closed. Clean after a goodbye; a session that vanishes
          // without one may yet resume on a reconnect (counted
          // interrupted); a sessionless stream that sent bytes but never
          // finished a goodbye is a protocol failure.
          std::lock_guard lock(sessions_mutex_);
          if (!conn.saw_goodbye) {
            if (conn.session_id != 0 && !sessions_[conn.session_id].said_goodbye) {
              stats_.interrupted_connections.add();
              collector_metrics().interrupted.inc();
              obs::log_debug("collector.interrupted",
                             {{"session", conn.session_id},
                              {"pending_bytes", event.pending_bytes}});
            } else if (conn.session_id == 0 && conn.received_bytes) {
              stats_.dropped_connections.add();
              collector_metrics().drops.inc();
              obs::log_info("collector.drop_connection", {{"reason", "no_goodbye"}});
            }
          }
          break;
        }
      }
      return 0;
    }
  }
  return 0;
}

void Collector::finalize_udp_sessions() {
  if (options_.transport != Transport::kUdp) return;
  std::lock_guard lock(sessions_mutex_);
  for (auto& [id, session] : sessions_) {
    if (session.finalized) continue;
    session.finalized = true;
    const std::size_t lost = session.dg_missing.size() + session.dg_overflow;
    if (lost > 0) {
      stats_.udp_lost.add(lost);
      collector_metrics().udp_lost.inc(lost);
      obs::log_info("collector.udp_loss", {{"session", id}, {"lost_datagrams", lost}});
    }
  }
}

bool Collector::serve_until_goodbye(std::size_t expected_goodbyes, int timeout_ms) {
  std::size_t goodbyes = 0;
  auto last_activity = Clock::now();
  collector_metrics().idle_timeout_outcome.set(0.0);

  ShardEvent event;
  while (goodbyes < expected_goodbyes) {
    bool any = false;
    for (auto& queue : event_queues_) {
      while (queue->try_pop(event)) {
        any = true;
        goodbyes += apply_event(event);
        if (goodbyes >= expected_goodbyes) break;
      }
      if (goodbyes >= expected_goodbyes) break;
    }
    if (any) {
      last_activity = Clock::now();
      continue;
    }
    if (timeout_ms >= 0 && ms_between(last_activity, Clock::now()) >= timeout_ms) {
      collector_metrics().idle_timeout_outcome.set(1.0);
      obs::log_info("collector.idle_timeout", {{"timeout_ms", timeout_ms},
                                               {"goodbyes", goodbyes},
                                               {"expected", expected_goodbyes}});
      finalize_udp_sessions();
      return false;  // idle timeout
    }
    std::unique_lock lock(wake_mutex_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }

  // Goal reached — settle barrier before declaring success. Per-socket
  // ordering guarantees every byte sent before a session's goodbye is
  // already in some shard's kernel buffer, but not that the owning shard
  // has read it (a reconnect's earlier connection may sit on a different
  // shard). The poll baseline got this for free by draining every ready fd
  // in the same loop iteration; here each shard drains directly and acks
  // with a kSync ordered after everything it ingested.
  std::size_t pending_syncs = shards_.size();
  for (auto& shard : shards_) shard->request_sync();
  const auto settle_start = Clock::now();
  while (pending_syncs > 0) {
    bool any = false;
    for (auto& queue : event_queues_) {
      while (queue->try_pop(event)) {
        any = true;
        if (event.kind == ShardEvent::Kind::kSync) {
          --pending_syncs;
          continue;
        }
        apply_event(event);
      }
    }
    if (pending_syncs == 0) break;
    if (!any) {
      if (timeout_ms >= 0 && ms_between(settle_start, Clock::now()) >= timeout_ms) {
        break;  // defensive: never outwait the idle budget on the barrier
      }
      std::unique_lock lock(wake_mutex_);
      wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

  // One final sweep picks up anything queued behind the acks before loss
  // finalizes.
  for (auto& queue : event_queues_) {
    while (queue->try_pop(event)) apply_event(event);
  }
  finalize_udp_sessions();
  return true;
}

telemetry::Dataset Collector::take_dataset() {
  dataset_.sort_by_time();
  return std::exchange(dataset_, telemetry::Dataset{});
}

std::size_t Collector::checkpoint(const std::string& path) const {
  telemetry::Dataset copy = dataset_;
  copy.sort_by_time();
  telemetry::write_binlog_file(path, copy);
  std::size_t open_gaps = 0;
  {
    std::lock_guard lock(sessions_mutex_);
    for (const auto& [id, session] : sessions_) {
      const std::size_t gaps = session.missing.size() + session.dg_missing.size();
      if (gaps > 0) {
        obs::log_info("collector.checkpoint_gaps", {{"session", id}, {"gaps", gaps}});
        open_gaps += gaps;
      }
    }
  }
  obs::log_info("collector.checkpoint",
                {{"path", path}, {"records", copy.size()}, {"open_gaps", open_gaps}});
  return copy.size();
}

CollectorThread::CollectorThread(std::size_t expected_goodbyes,
                                 const CollectorOptions& options, int timeout_ms)
    : collector_(options), port_(collector_.port()) {
  thread_ = std::thread([this, expected_goodbyes, timeout_ms] {
    const bool complete = collector_.serve_until_goodbye(expected_goodbyes, timeout_ms);
    complete_.store(complete, std::memory_order_release);
    done_.store(true, std::memory_order_release);
  });
}

CollectorThread::~CollectorThread() {
  if (thread_.joinable()) thread_.join();
}

telemetry::Dataset CollectorThread::join() {
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mutex_);
  return collector_.take_dataset();
}

CollectorStats CollectorThread::stats() const {
  // No lock needed: Collector::stats() reads relaxed atomics, which is the
  // point of the migration — this is safe while the serve loop is live.
  return collector_.stats();
}

}  // namespace autosens::net
