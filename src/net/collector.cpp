#include "net/collector.h"

#include <poll.h>
#include <sys/socket.h>

#include <array>
#include <cerrno>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "obs/log.h"
#include "telemetry/binlog.h"

namespace autosens::net {
namespace {

/// Global registry mirrors of the per-instance collector counters, so a
/// process-wide metrics snapshot sees the ingest path without holding a
/// reference to any particular Collector.
struct CollectorMetrics {
  obs::Counter& connections = obs::registry().counter(
      "autosens_collector_connections_total", "Emitter connections accepted");
  obs::Counter& frames = obs::registry().counter(
      "autosens_collector_frames_total", "Wire frames decoded");
  obs::Counter& records = obs::registry().counter(
      "autosens_collector_records_total", "Telemetry records ingested");
  obs::Counter& flushes = obs::registry().counter(
      "autosens_collector_flushes_total", "Flush markers received");
  obs::Counter& drops = obs::registry().counter(
      "autosens_collector_dropped_connections_total",
      "Connections dropped on protocol or transport error");
  obs::Counter& bytes = obs::registry().counter(
      "autosens_collector_bytes_total", "Payload bytes received");
  obs::Counter& backpressure = obs::registry().counter(
      "autosens_collector_backpressure_reads_total",
      "recv() calls that filled the whole buffer (ingest running behind)");
};

CollectorMetrics& collector_metrics() {
  static CollectorMetrics handles;
  return handles;
}

}  // namespace

struct Collector::Connection {
  Socket socket;
  FrameDecoder decoder;
  bool saw_goodbye = false;
};

Collector::Collector(std::uint16_t port) {
  listener_ = listen_tcp(port, port_);
  obs::log_debug("collector.listen", {{"port", port_}});
}

CollectorStats Collector::stats() const noexcept {
  return CollectorStats{
      .connections = static_cast<std::size_t>(stats_.connections.get()),
      .frames = static_cast<std::size_t>(stats_.frames.get()),
      .records = static_cast<std::size_t>(stats_.records.get()),
      .flushes = static_cast<std::size_t>(stats_.flushes.get()),
      .dropped_connections = static_cast<std::size_t>(stats_.dropped_connections.get()),
      .bytes = static_cast<std::size_t>(stats_.bytes.get()),
      .backpressure_reads = static_cast<std::size_t>(stats_.backpressure_reads.get()),
  };
}

std::size_t Collector::drain_frames(Connection& connection) {
  std::size_t goodbyes = 0;
  while (auto frame = connection.decoder.next()) {
    stats_.frames.add();
    collector_metrics().frames.inc();
    switch (frame->type) {
      case FrameType::kData: {
        const auto records = telemetry::codec::decode_batch(frame->payload);
        stats_.records.add(records.size());
        collector_metrics().records.inc(records.size());
        for (const auto& r : records) dataset_.add(r);
        break;
      }
      case FrameType::kFlush:
        stats_.flushes.add();
        collector_metrics().flushes.inc();
        break;
      case FrameType::kGoodbye:
        connection.saw_goodbye = true;
        ++goodbyes;
        break;
    }
  }
  return goodbyes;
}

bool Collector::serve_until_goodbye(std::size_t expected_goodbyes, int timeout_ms) {
  std::vector<Connection> connections;
  std::size_t goodbyes = 0;

  while (goodbyes < expected_goodbyes) {
    std::vector<pollfd> fds;
    fds.reserve(connections.size() + 1);
    fds.push_back({.fd = listener_.fd(), .events = POLLIN, .revents = 0});
    for (const auto& connection : connections) {
      fds.push_back({.fd = connection.socket.fd(), .events = POLLIN, .revents = 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SocketError("poll()", errno);
    }
    if (ready == 0) {
      obs::log_debug("collector.idle_timeout", {{"timeout_ms", timeout_ms},
                                                {"goodbyes", goodbyes}});
      return false;  // idle timeout
    }

    // New connection?
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd >= 0) {
        connections.push_back({Socket(fd), FrameDecoder{}, false});
        stats_.connections.add();
        collector_metrics().connections.inc();
        obs::log_debug("collector.accept", {{"fd", fd}});
      } else if (errno != EINTR && errno != EAGAIN) {
        throw SocketError("accept()", errno);
      }
    }

    // Data on existing connections. Iterate over the snapshot taken before
    // the accept; indices into `fds` are connection index + 1.
    std::vector<std::size_t> to_close;
    const std::size_t polled = fds.size() - 1;
    for (std::size_t i = 0; i < polled; ++i) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      auto& connection = connections[i];
      std::array<std::uint8_t, 16384> buffer;
      const ssize_t n = ::recv(connection.socket.fd(), buffer.data(), buffer.size(), 0);
      if (n > 0) {
        stats_.bytes.add(static_cast<std::uint64_t>(n));
        collector_metrics().bytes.inc(static_cast<std::uint64_t>(n));
        if (static_cast<std::size_t>(n) == buffer.size()) {
          // A full buffer means the kernel queue still holds data — the
          // ingest loop is running behind the emitters.
          stats_.backpressure_reads.add();
          collector_metrics().backpressure.inc();
        }
        connection.decoder.feed(
            std::span<const std::uint8_t>(buffer.data(), static_cast<std::size_t>(n)));
        try {
          goodbyes += drain_frames(connection);
        } catch (const std::runtime_error& error) {
          // Malformed stream: drop the connection, keep decoded records.
          stats_.dropped_connections.add();
          collector_metrics().drops.inc();
          obs::log_info("collector.drop_connection",
                        {{"reason", "malformed"}, {"error", error.what()}});
          to_close.push_back(i);
          continue;
        }
        if (connection.saw_goodbye) to_close.push_back(i);
      } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
        // Peer closed (with or without goodbye) or hard error.
        if (n < 0) {
          stats_.dropped_connections.add();
          collector_metrics().drops.inc();
          obs::log_info("collector.drop_connection",
                        {{"reason", "transport"}, {"errno", errno}});
        }
        to_close.push_back(i);
      }
    }
    // Close back-to-front so indices stay valid.
    for (auto it = to_close.rbegin(); it != to_close.rend(); ++it) {
      connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(*it));
    }
  }
  return true;
}

telemetry::Dataset Collector::take_dataset() {
  dataset_.sort_by_time();
  return std::exchange(dataset_, telemetry::Dataset{});
}

CollectorThread::CollectorThread(std::size_t expected_goodbyes, std::uint16_t port)
    : collector_(port), port_(collector_.port()) {
  thread_ = std::thread([this, expected_goodbyes] {
    collector_.serve_until_goodbye(expected_goodbyes, /*timeout_ms=*/30'000);
    done_.store(true, std::memory_order_release);
  });
}

CollectorThread::~CollectorThread() {
  if (thread_.joinable()) thread_.join();
}

telemetry::Dataset CollectorThread::join() {
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mutex_);
  return collector_.take_dataset();
}

CollectorStats CollectorThread::stats() const {
  // No lock needed: Collector::stats() reads relaxed atomics, which is the
  // point of the migration — this is safe while the serve loop is live.
  return collector_.stats();
}

}  // namespace autosens::net
