// Telemetry emitter: the "client side" of the measurement path. Buffers
// ActionRecords and ships them to a Collector in batched frames, mirroring
// how a web client batches beacons back to the service (§3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "net/socket.h"
#include "telemetry/record.h"

namespace autosens::net {

struct EmitterOptions {
  std::size_t batch_size = 1024;  ///< Records per data frame.
};

class Emitter {
 public:
  /// Connects to a collector on 127.0.0.1:port.
  explicit Emitter(std::uint16_t port, EmitterOptions options = {});
  ~Emitter();

  Emitter(const Emitter&) = delete;
  Emitter& operator=(const Emitter&) = delete;

  /// Buffer one record; sends a frame when the batch fills.
  void record(const telemetry::ActionRecord& record);

  /// Send any buffered records immediately, followed by a flush marker.
  void flush();

  /// Flush and send goodbye; further record() calls throw. Idempotent.
  void close();

  std::size_t sent_records() const noexcept { return sent_records_; }
  std::size_t sent_frames() const noexcept { return sent_frames_; }

 private:
  void send_pending();

  Socket socket_;
  EmitterOptions options_;
  std::vector<telemetry::ActionRecord> pending_;
  std::size_t sent_records_ = 0;
  std::size_t sent_frames_ = 0;
  bool closed_ = false;
};

}  // namespace autosens::net
