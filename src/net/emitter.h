// Telemetry emitter: the "client side" of the measurement path. Buffers
// ActionRecords and ships them to a Collector in batched frames, mirroring
// how a web client batches beacons back to the service (§3.1).
//
// Resilience: every frame send (and the connect behind it) runs under a
// deterministic retry policy — exponential backoff with seeded jitter,
// capped attempts. Each connection opens with a kHello carrying a session
// id that is stable across reconnects, and every frame carries a sequence
// number, so a retransmitted frame (sent because the emitter cannot know
// whether a failed send was delivered) is dropped as a duplicate by the
// collector rather than double-counted. When attempts are exhausted the
// emitter either throws (kThrow) or — the graceful-degradation contract —
// drops the frame, counts every lost record in dropped_records() and the
// autosens_net_degraded_drops_total counter, and keeps going (kDropFrame).
#pragma once

#include <cstdint>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "telemetry/record.h"

namespace autosens::net {

/// Deterministic retry schedule for connects and sends. Attempt k (0-based)
/// waits min(backoff_initial_ms * multiplier^k, backoff_max_ms), scaled by
/// a seeded jitter draw in [1 - jitter, 1]. With max_attempts = 1 every
/// failure is terminal (the seed-era behaviour).
struct RetryPolicy {
  std::size_t max_attempts = 5;
  std::uint32_t backoff_initial_ms = 1;
  std::uint32_t backoff_max_ms = 1000;
  double backoff_multiplier = 2.0;
  double jitter = 0.5;           ///< Fraction of the delay randomized away.
  std::uint64_t seed = 0x5eed;   ///< Jitter RNG seed (per-emitter stream).
};

struct EmitterOptions {
  std::size_t batch_size = 1024;  ///< Records per data frame.
  RetryPolicy retry{};
  /// What to do with a frame once retries are exhausted.
  enum class GiveUp { kThrow, kDropFrame };
  GiveUp on_give_up = GiveUp::kThrow;
  /// Syscall surface; nullptr = real syscalls. A FaultySocketOps here is
  /// how tests drive every failure mode deterministically.
  SocketOps* ops = nullptr;
  /// Session id sent in kHello; 0 = derive a process-unique one.
  std::uint64_t session_id = 0;
};

/// Functional (always-on) emitter-side resilience counters; mirrored into
/// the obs registry when instrumentation is enabled.
struct EmitterStats {
  std::size_t retries = 0;          ///< Failed attempts that were retried.
  std::size_t reconnects = 0;       ///< Successful connects after the first.
  std::size_t dropped_frames = 0;   ///< Frames abandoned after exhaustion.
  std::size_t dropped_records = 0;  ///< Records inside abandoned data frames.
  std::uint64_t backoff_ms = 0;     ///< Total backoff wall-clock requested.
};

class Emitter {
 public:
  /// Connects to a collector on 127.0.0.1:port (with the retry policy).
  explicit Emitter(std::uint16_t port, EmitterOptions options = {});
  ~Emitter();

  Emitter(const Emitter&) = delete;
  Emitter& operator=(const Emitter&) = delete;

  /// Buffer one record; sends a frame when the batch fills.
  void record(const telemetry::ActionRecord& record);

  /// Send any buffered records immediately, followed by a flush marker.
  void flush();

  /// Flush and send goodbye; further record() calls throw. Idempotent.
  void close();

  std::size_t sent_records() const noexcept { return sent_records_; }
  std::size_t sent_frames() const noexcept { return sent_frames_; }
  /// Records lost to exhausted retries under GiveUp::kDropFrame.
  std::size_t dropped_records() const noexcept { return stats_.dropped_records; }
  std::uint64_t session_id() const noexcept { return session_id_; }
  const EmitterStats& stats() const noexcept { return stats_; }

 private:
  void send_pending();
  /// Encode + send under the retry policy. `record_count` is the loss to
  /// declare if the frame is abandoned. Returns false when dropped. When
  /// tracing is on the frame is stamped with the send span's id before
  /// encoding, so retransmits stay byte-identical and the collector can
  /// parent its decode span on the emitter-side send span.
  bool send_frame_with_retry(Frame frame, std::size_t record_count);
  void ensure_connected();
  void backoff_sleep(std::size_t attempt);

  SocketOps& ops_;
  Socket socket_;
  bool connected_ = false;
  bool ever_connected_ = false;
  std::uint16_t port_ = 0;
  EmitterOptions options_;
  std::uint64_t session_id_ = 0;
  std::uint32_t next_seq_ = 1;
  std::uint64_t jitter_state_;  ///< Counter-seeded jitter stream position.
  std::vector<telemetry::ActionRecord> pending_;
  std::size_t sent_records_ = 0;
  std::size_t sent_frames_ = 0;
  EmitterStats stats_;
  bool closed_ = false;
};

}  // namespace autosens::net
