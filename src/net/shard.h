// CollectorShard: one per-core ingest event loop of the sharded collector.
//
// Each shard owns an edge-triggered epoll loop over nonblocking sockets —
// its own SO_REUSEPORT TCP listener (kernel accept sharding) or adopted fds
// handed off round-robin from shard 0 (shared-accept fallback), plus an
// optional SO_REUSEPORT UDP socket drained with recvmmsg. Shards do the
// byte-level work only: accept, read until EAGAIN, reassemble frames with a
// per-connection FrameDecoder, enforce the resync-garbage budget and the
// read deadline. Everything with cross-connection meaning — session
// binding, (session, seq) dedup, record decode, goodbye credit — happens on
// the single spine thread, which consumes decoded-frame batches from each
// shard over a lock-free SPSC queue. A reconnecting session can land on a
// different shard, which is exactly why dedup cannot live here.
//
// Edge-triggered pitfalls this loop defends against:
//  - EAGAIN storms (net/fault.h kEagainStorm): an injected EAGAIN while the
//    kernel still holds bytes would lose the edge forever. Any fd whose
//    drain round ends in EAGAIN without progress goes on a bounded re-poll
//    retry list and is re-read on subsequent wakeups until it makes
//    progress or the budget (kRetryRounds) is spent.
//  - Spurious wakeups (epoll_wait returning 0 under injection): every
//    iteration re-processes the retry list, control queues, and deadlines,
//    so a wakeup that delivers no events still makes progress.
//
// Read deadlines are enforced by the loop's timer, not only on read
// returns: connections sit on an intrusive list ordered by last activity
// (all connections share one deadline duration, so least-recently-active
// order IS expiry order), and the epoll timeout is clamped to the head's
// expiry. A silent connection is cut even if no byte ever arrives again.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/spsc.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace autosens::net {

using core::SpscQueue;

/// Which transport a collector ingests.
enum class Transport : std::uint8_t { kTcp = 0, kUdp = 1 };

/// One message from a shard to the spine. Frames are decoded but not yet
/// interpreted; `conn` identifies the originating connection stream
/// (shard-unique serial; the spine keys on (shard, conn)). UDP events use
/// conn 0 — datagrams are self-describing (each starts with a kHello), so
/// there is no per-connection stream state to key.
struct ShardEvent {
  enum class Kind : std::uint8_t {
    kOpen,    ///< TCP connection accepted.
    kFrames,  ///< Decoded frames (order preserved within the stream).
    kEof,     ///< Connection ended; `reason` says how.
    kSync,    ///< Ack of request_sync(): everything readable at request
              ///< time has been drained and queued ahead of this event.
  };
  enum class EofReason : std::uint8_t {
    kClean,        ///< Peer closed (EOF).
    kDeadline,     ///< Cut by the read deadline.
    kTransport,    ///< recv error (`err` holds errno).
    kResyncBudget  ///< Cut after skipping more than max_resync_bytes.
  };

  Kind kind = Kind::kFrames;
  std::uint32_t shard = 0;
  std::uint64_t conn = 0;
  Transport transport = Transport::kTcp;
  EofReason reason = EofReason::kClean;
  int err = 0;
  bool received_bytes = false;    ///< kEof: stream delivered payload bytes.
  std::size_t pending_bytes = 0;  ///< kEof: undecoded bytes left behind.
  std::vector<Frame> frames;
  // Stat deltas accumulated on the shard thread but applied by the spine,
  // so every CollectorStats cell has a single writer.
  std::size_t bytes_delta = 0;          ///< Payload bytes read.
  std::size_t backpressure_delta = 0;   ///< Reads that filled the whole buffer.
  std::size_t resyncs_delta = 0;        ///< Decoder resyncs since last event.
  std::size_t skipped_delta = 0;        ///< Garbage bytes discarded by resync.
  std::size_t udp_datagrams_delta = 0;  ///< Datagrams with a valid leading hello.
  std::size_t udp_rejected_delta = 0;   ///< Datagrams discarded whole.
};

/// Per-shard counters snapshot for /statusz and tests.
struct ShardStats {
  std::size_t connections = 0;
  std::size_t epoll_wakeups = 0;
  std::size_t eagain_retries = 0;   ///< Re-poll attempts from the retry list.
  std::size_t spsc_stalls = 0;      ///< Pushes that found the queue full.
  std::size_t queue_depth = 0;      ///< Events queued right now (approx).
  std::size_t udp_datagrams = 0;    ///< Datagrams with a decodable leading hello.
  std::size_t udp_rejected = 0;     ///< Datagrams discarded (no valid hello).
};

struct ShardOptions {
  std::uint32_t index = 0;       ///< This shard's number (metric label).
  std::uint32_t total = 1;       ///< Shard count (for handoff round-robin).
  Transport transport = Transport::kTcp;
  int read_deadline_ms = -1;     ///< TCP: cut connections silent this long.
  std::size_t max_resync_bytes = 1 << 20;
  std::size_t recvmmsg_batch = 32;  ///< Datagrams per recvmmsg call.
  SocketOps* ops = nullptr;      ///< nullptr = real syscalls.
};

class CollectorShard {
 public:
  /// `out` is the shard→spine event queue (this shard is its only
  /// producer); `notify` is invoked after each push so the spine can sleep
  /// on a condition variable instead of spinning.
  CollectorShard(const ShardOptions& options, SpscQueue<ShardEvent>& out,
                 std::function<void()> notify);
  ~CollectorShard();

  CollectorShard(const CollectorShard&) = delete;
  CollectorShard& operator=(const CollectorShard&) = delete;

  /// Install sockets before start(). The TCP listener is optional (absent
  /// on shards 1..N-1 in shared-accept fallback mode); the UDP socket is
  /// present only for Transport::kUdp.
  void set_tcp_listener(Socket listener);
  void set_udp_socket(Socket socket);
  /// Fallback accept sharding: shard 0 calls this to route accepted fds.
  /// handoff(target_index, fd) must enqueue the fd on the target shard.
  void set_handoff(std::function<void(std::uint32_t, int)> handoff);

  void start();
  void stop();  ///< Signal + join. Idempotent.

  /// Spine thread: ask this shard to close a connection it owns (malformed
  /// stream, goodbye received). Unknown serials are ignored (EOF raced).
  void request_close(std::uint64_t conn);
  /// Spine thread: settle barrier. The shard drains every connection and
  /// the UDP socket *directly* (not trusting epoll readiness, which
  /// injected spurious wakeups can mask), waits out any active EAGAIN
  /// retries, then acks with a kSync event ordered after everything it
  /// drained. Lets the spine guarantee bytes-before-goodbye are ingested
  /// before it declares the collection complete.
  void request_sync();
  /// Accepting shard's thread (fallback mode): hand a connected fd over.
  void adopt_fd(int fd);

  ShardStats stats() const noexcept;
  std::uint32_t index() const noexcept { return options_.index; }

 private:
  struct Connection {
    Socket socket;
    std::uint64_t serial = 0;
    FrameDecoder decoder;
    bool received_bytes = false;
    std::size_t reported_resyncs = 0;
    std::size_t reported_skipped = 0;
    std::size_t retry_rounds = 0;  ///< Consecutive no-progress re-polls.
    std::chrono::steady_clock::time_point last_activity;
    /// Position in deadline_order_ (least-recently-active first).
    std::list<std::uint64_t>::iterator deadline_pos;
  };

  /// Control messages into the shard thread. Close requests come from the
  /// spine; adoptions come from the accepting shard — one SPSC queue per
  /// producer so both stay single-producer/single-consumer.
  struct Control {
    enum class Kind : std::uint8_t { kClose, kAdopt, kSync };
    Kind kind = Kind::kClose;
    std::uint64_t conn = 0;
    int fd = -1;
  };

  void run();
  void handle_accept();
  void add_connection(int fd);
  /// Drain one connection to EAGAIN; returns false when it was closed.
  bool drain_connection(Connection& conn);
  void emit_frames(Connection& conn);
  void close_connection(std::uint64_t serial, ShardEvent::EofReason reason, int err,
                        bool emit_eof);
  void drain_udp();
  void process_controls();
  void reap_deadlines();
  void touch(Connection& conn);
  int loop_timeout_ms() const;
  void push_event(ShardEvent event);
  void wake();  ///< Kick the eventfd so a blocked epoll_wait returns.

  ShardOptions options_;
  SpscQueue<ShardEvent>& out_;
  std::function<void()> notify_;
  std::function<void(std::uint32_t, int)> handoff_;

  Socket tcp_listener_;
  Socket udp_socket_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  SpscQueue<Control> close_requests_;
  SpscQueue<Control> adoptions_;

  std::uint64_t next_serial_ = 1;
  std::uint32_t next_handoff_ = 0;
  std::unordered_map<std::uint64_t, Connection> connections_;
  /// Serials in last-activity order; front expires first (one shared
  /// deadline duration makes this list the whole timer wheel).
  std::list<std::uint64_t> deadline_order_;
  /// Serials to re-read despite EAGAIN (bounded edge-loss defense);
  /// 0 stands for the listener, 1-based otherwise. kUdpRetry stands for
  /// the UDP socket.
  std::vector<std::uint64_t> retry_list_;
  bool listener_retry_ = false;
  bool udp_retry_ = false;
  std::size_t sync_pending_ = 0;    ///< request_sync acks owed to the spine.
  bool sync_drain_needed_ = false;  ///< Direct drain-all not yet done.

  struct Counters {
    obs::RawCounter connections;
    obs::RawCounter epoll_wakeups;
    obs::RawCounter eagain_retries;
    obs::RawCounter spsc_stalls;
    obs::RawCounter udp_datagrams;
    obs::RawCounter udp_rejected;
  };
  Counters counters_;
  /// Registry mirrors, labelled {shard="i"}.
  obs::Counter* metric_connections_ = nullptr;
  obs::Counter* metric_wakeups_ = nullptr;
  obs::Gauge* metric_queue_depth_ = nullptr;
};

}  // namespace autosens::net
