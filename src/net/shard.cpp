#include "net/shard.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <utility>

#include "obs/log.h"

namespace autosens::net {
namespace {

using Clock = std::chrono::steady_clock;

/// epoll user-data tags for the shard's singleton fds. Connection serials
/// start at 1, so these cannot collide.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kEventFdTag = ~std::uint64_t{0};
constexpr std::uint64_t kUdpTag = ~std::uint64_t{0} - 1;

/// Consecutive no-progress re-polls before a connection falls off the
/// retry list. Bounds the cost of the edge-loss defense: an injected
/// EAGAIN burst shorter than this cannot permanently mask kernel bytes.
constexpr std::size_t kRetryRounds = 64;

/// Read size per recv: matches the poll-baseline collector so the
/// backpressure definition (a read that fills the whole buffer) compares.
constexpr std::size_t kReadBytes = 16384;

/// Per-datagram receive buffer; comfortably above the emitter's
/// max_datagram_bytes so datagrams are never truncated by the reader.
constexpr std::size_t kDatagramBufBytes = 9216;

std::int64_t ms_between(Clock::time_point earlier, Clock::time_point later) noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(later - earlier).count();
}

}  // namespace

CollectorShard::CollectorShard(const ShardOptions& options, SpscQueue<ShardEvent>& out,
                               std::function<void()> notify)
    : options_(options),
      out_(out),
      notify_(std::move(notify)),
      close_requests_(256),
      adoptions_(256) {
  if (options_.ops == nullptr) options_.ops = &real_socket_ops();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw SocketError("epoll_create1()", errno);
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd_ < 0) {
    const int saved = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw SocketError("eventfd()", saved);
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kEventFdTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
    throw SocketError("epoll_ctl(eventfd)", errno);
  }

  const std::string label = "{shard=\"" + std::to_string(options_.index) + "\"}";
  metric_connections_ = &obs::registry().counter(
      "autosens_net_shard_connections" + label,
      "TCP connections owned by this collector shard");
  metric_wakeups_ = &obs::registry().counter(
      "autosens_net_epoll_wakeups_total" + label,
      "epoll_wait returns (including timeouts and spurious wakeups)");
  metric_queue_depth_ = &obs::registry().gauge(
      "autosens_net_spsc_queue_depth" + label,
      "Shard-to-spine events queued (sampled at push)");
}

CollectorShard::~CollectorShard() {
  stop();
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void CollectorShard::set_tcp_listener(Socket listener) {
  tcp_listener_ = std::move(listener);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, tcp_listener_.fd(), &ev) < 0) {
    throw SocketError("epoll_ctl(listener)", errno);
  }
}

void CollectorShard::set_udp_socket(Socket socket) {
  udp_socket_ = std::move(socket);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = kUdpTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, udp_socket_.fd(), &ev) < 0) {
    throw SocketError("epoll_ctl(udp)", errno);
  }
}

void CollectorShard::set_handoff(std::function<void(std::uint32_t, int)> handoff) {
  handoff_ = std::move(handoff);
}

void CollectorShard::start() {
  if (started_.exchange(true)) return;
  thread_ = std::thread([this] { run(); });
}

void CollectorShard::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
}

void CollectorShard::wake() {
  if (event_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(event_fd_, &one, sizeof one);
  }
}

void CollectorShard::request_close(std::uint64_t conn) {
  Control control{.kind = Control::Kind::kClose, .conn = conn, .fd = -1};
  while (!close_requests_.try_push(std::move(control))) {
    if (stop_.load(std::memory_order_acquire)) return;
    std::this_thread::yield();
  }
  wake();
}

void CollectorShard::request_sync() {
  Control control{.kind = Control::Kind::kSync, .conn = 0, .fd = -1};
  while (!close_requests_.try_push(std::move(control))) {
    if (stop_.load(std::memory_order_acquire)) return;
    std::this_thread::yield();
  }
  wake();
}

void CollectorShard::adopt_fd(int fd) {
  Control control{.kind = Control::Kind::kAdopt, .conn = 0, .fd = fd};
  while (!adoptions_.try_push(std::move(control))) {
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    std::this_thread::yield();
  }
  wake();
}

ShardStats CollectorShard::stats() const noexcept {
  return ShardStats{
      .connections = static_cast<std::size_t>(counters_.connections.get()),
      .epoll_wakeups = static_cast<std::size_t>(counters_.epoll_wakeups.get()),
      .eagain_retries = static_cast<std::size_t>(counters_.eagain_retries.get()),
      .spsc_stalls = static_cast<std::size_t>(counters_.spsc_stalls.get()),
      .queue_depth = out_.size_approx(),
      .udp_datagrams = static_cast<std::size_t>(counters_.udp_datagrams.get()),
      .udp_rejected = static_cast<std::size_t>(counters_.udp_rejected.get()),
  };
}

int CollectorShard::loop_timeout_ms() const {
  int timeout = 50;  // upper bound: stop-flag and control-queue check cadence
  if (!retry_list_.empty()) return 1;
  if (options_.read_deadline_ms >= 0 && !deadline_order_.empty()) {
    const auto& head = connections_.at(deadline_order_.front());
    const std::int64_t remaining =
        options_.read_deadline_ms - ms_between(head.last_activity, Clock::now());
    timeout = static_cast<int>(std::clamp<std::int64_t>(remaining, 1, timeout));
  }
  return timeout;
}

void CollectorShard::push_event(ShardEvent event) {
  event.shard = options_.index;
  while (!out_.try_push(std::move(event))) {
    counters_.spsc_stalls.add();
    if (stop_.load(std::memory_order_acquire)) return;
    // Queue full: the spine is behind. Wake it and yield — dropping the
    // event is not an option, it carries decoded frames.
    notify_();
    std::this_thread::yield();
  }
  metric_queue_depth_->set(static_cast<double>(out_.size_approx()));
  notify_();
}

void CollectorShard::touch(Connection& conn) {
  conn.last_activity = Clock::now();
  deadline_order_.splice(deadline_order_.end(), deadline_order_, conn.deadline_pos);
}

void CollectorShard::add_connection(int fd) {
  const std::uint64_t serial = next_serial_++;
  Connection conn;
  conn.socket = Socket(fd);
  conn.serial = serial;
  conn.last_activity = Clock::now();
  deadline_order_.push_back(serial);
  conn.deadline_pos = std::prev(deadline_order_.end());
  auto [it, inserted] = connections_.emplace(serial, std::move(conn));

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  ev.data.u64 = serial;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    deadline_order_.erase(it->second.deadline_pos);
    connections_.erase(it);
    return;
  }
  counters_.connections.add();
  metric_connections_->inc();
  ShardEvent open_event;
  open_event.kind = ShardEvent::Kind::kOpen;
  open_event.conn = serial;
  push_event(std::move(open_event));
  // A freshly-accepted nonblocking socket may already hold bytes and its
  // edge predates the epoll registration: drain it once now.
  if (auto conn_it = connections_.find(serial); conn_it != connections_.end()) {
    drain_connection(conn_it->second);
  }
}

void CollectorShard::handle_accept() {
  if (!tcp_listener_.valid()) return;
  for (;;) {
    const int fd = options_.ops->accept4_fd(tcp_listener_.fd());
    if (fd >= 0) {
      if (handoff_ && options_.total > 1) {
        // Shared-accept fallback: this shard owns the only listener and
        // deals accepted fds round-robin across the fleet (itself included).
        const std::uint32_t target = next_handoff_++ % options_.total;
        if (target != options_.index) {
          handoff_(target, fd);
          continue;
        }
      }
      add_connection(fd);
      continue;
    }
    const int err = -fd;
    if (err == EINTR || err == ECONNABORTED) continue;
    // EAGAIN: accept queue drained (or an injected stall — the
    // unconditional re-accept each loop iteration is the defense).
    break;
  }
}

void CollectorShard::emit_frames(Connection& conn) {
  ShardEvent event;
  event.kind = ShardEvent::Kind::kFrames;
  event.conn = conn.serial;
  while (auto frame = conn.decoder.next()) event.frames.push_back(std::move(*frame));

  const std::size_t resyncs = conn.decoder.resyncs();
  if (resyncs > conn.reported_resyncs) {
    event.resyncs_delta = resyncs - conn.reported_resyncs;
    conn.reported_resyncs = resyncs;
  }
  const std::size_t skipped = conn.decoder.skipped_bytes();
  if (skipped > conn.reported_skipped) {
    event.skipped_delta = skipped - conn.reported_skipped;
    conn.reported_skipped = skipped;
  }
  if (!event.frames.empty() || event.resyncs_delta > 0 || event.skipped_delta > 0) {
    push_event(std::move(event));
  }
  if (skipped > options_.max_resync_bytes) {
    close_connection(conn.serial, ShardEvent::EofReason::kResyncBudget, 0, true);
  }
}

bool CollectorShard::drain_connection(Connection& conn) {
  std::size_t bytes = 0;
  std::size_t backpressure = 0;
  bool closed = false;
  ShardEvent::EofReason reason = ShardEvent::EofReason::kClean;
  int close_err = 0;

  for (;;) {
    std::array<std::uint8_t, kReadBytes> buffer;
    const std::int64_t n = options_.ops->recv(conn.socket.fd(), buffer.data(), buffer.size());
    if (n > 0) {
      bytes += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) == buffer.size()) ++backpressure;
      conn.received_bytes = true;
      conn.decoder.feed(
          std::span<const std::uint8_t>(buffer.data(), static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {
      closed = true;
      break;
    }
    const int err = static_cast<int>(-n);
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) break;
    closed = true;
    reason = ShardEvent::EofReason::kTransport;
    close_err = err;
    break;
  }

  if (bytes > 0) {
    touch(conn);
    conn.retry_rounds = 0;
    ShardEvent delta;
    delta.kind = ShardEvent::Kind::kFrames;
    delta.conn = conn.serial;
    delta.bytes_delta = bytes;
    delta.backpressure_delta = backpressure;
    delta.received_bytes = true;
    // Bytes and frames ride one event so the spine sees them atomically.
    while (auto frame = conn.decoder.next()) delta.frames.push_back(std::move(*frame));
    const std::size_t resyncs = conn.decoder.resyncs();
    if (resyncs > conn.reported_resyncs) {
      delta.resyncs_delta = resyncs - conn.reported_resyncs;
      conn.reported_resyncs = resyncs;
    }
    const std::size_t skipped = conn.decoder.skipped_bytes();
    if (skipped > conn.reported_skipped) {
      delta.skipped_delta = skipped - conn.reported_skipped;
      conn.reported_skipped = skipped;
    }
    push_event(std::move(delta));
    if (conn.decoder.skipped_bytes() > options_.max_resync_bytes) {
      close_connection(conn.serial, ShardEvent::EofReason::kResyncBudget, 0, true);
      return false;
    }
  }

  if (closed) {
    close_connection(conn.serial, reason, close_err, true);
    return false;
  }

  // Ended at EAGAIN. Under edge triggering a lying EAGAIN (fault injection)
  // would strand kernel bytes with no future edge, so the connection earns
  // a bounded number of re-polls; progress resets the budget above.
  if (bytes == 0) ++conn.retry_rounds;
  if (conn.retry_rounds < kRetryRounds &&
      std::find(retry_list_.begin(), retry_list_.end(), conn.serial) ==
          retry_list_.end()) {
    retry_list_.push_back(conn.serial);
  }
  return true;
}

void CollectorShard::close_connection(std::uint64_t serial, ShardEvent::EofReason reason,
                                      int err, bool emit_eof) {
  auto it = connections_.find(serial);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (emit_eof) {
    ShardEvent event;
    event.kind = ShardEvent::Kind::kEof;
    event.conn = serial;
    event.reason = reason;
    event.err = err;
    event.received_bytes = conn.received_bytes;
    event.pending_bytes = conn.decoder.pending_bytes();
    push_event(std::move(event));
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.socket.fd(), nullptr);
  deadline_order_.erase(conn.deadline_pos);
  connections_.erase(it);
}

void CollectorShard::reap_deadlines() {
  if (options_.read_deadline_ms < 0) return;
  const auto now = Clock::now();
  while (!deadline_order_.empty()) {
    auto it = connections_.find(deadline_order_.front());
    if (it == connections_.end()) {
      deadline_order_.pop_front();  // defensive; close keeps these in sync
      continue;
    }
    if (ms_between(it->second.last_activity, now) < options_.read_deadline_ms) break;
    // Flush whatever decoded before cutting, mirroring the poll baseline
    // (deadline drops keep already-decoded records).
    emit_frames(it->second);
    close_connection(it->first, ShardEvent::EofReason::kDeadline, 0, true);
  }
}

void CollectorShard::process_controls() {
  Control control;
  while (close_requests_.try_pop(control)) {
    if (control.kind == Control::Kind::kSync) {
      ++sync_pending_;
      sync_drain_needed_ = true;
      continue;
    }
    // Spine-initiated close (malformed stream or post-goodbye): the spine
    // already accounted for it, so no kEof echo. Unknown serial = the
    // connection EOF'd first; nothing to do.
    close_connection(control.conn, ShardEvent::EofReason::kClean, 0, false);
  }
  while (adoptions_.try_pop(control)) {
    add_connection(control.fd);
  }
}

void CollectorShard::drain_udp() {
  if (!udp_socket_.valid()) return;
  const std::size_t batch = std::clamp<std::size_t>(options_.recvmmsg_batch, 1, 64);
  std::vector<std::vector<std::uint8_t>> buffers(batch,
                                                 std::vector<std::uint8_t>(kDatagramBufBytes));
  std::vector<iovec> iovs(batch);
  std::vector<mmsghdr> msgs(batch);

  for (;;) {
    for (std::size_t i = 0; i < batch; ++i) {
      iovs[i] = {.iov_base = buffers[i].data(), .iov_len = buffers[i].size()};
      msgs[i] = {};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int n = options_.ops->recvmmsg(udp_socket_.fd(), msgs.data(),
                                         static_cast<unsigned>(batch));
    if (n < 0) {
      const int err = -n;
      if (err == EINTR) continue;
      break;  // EAGAIN (drained or injected stall; re-entered next iteration)
    }
    if (n == 0) break;

    ShardEvent event;
    event.kind = ShardEvent::Kind::kFrames;
    event.transport = Transport::kUdp;
    for (int i = 0; i < n; ++i) {
      const std::size_t len = msgs[static_cast<std::size_t>(i)].msg_len;
      if (len == 0) continue;
      event.bytes_delta += len;
      const std::span<const std::uint8_t> datagram(buffers[static_cast<std::size_t>(i)].data(),
                                                   len);
      // Fresh decoder per datagram: datagrams are independent framing
      // units, so damage never smears across datagram boundaries.
      FrameDecoder decoder(kDatagramBufBytes);
      decoder.feed(datagram);
      auto first = decoder.next();
      if (!first || first->type != FrameType::kHello || !parse_hello(first->payload)) {
        // No decodable leading hello (damaged or alien datagram): discard
        // whole. The datagram-seq gap it leaves is the loss accounting.
        ++event.udp_rejected_delta;
        counters_.udp_rejected.add();
        event.skipped_delta += len;
        continue;
      }
      ++event.udp_datagrams_delta;
      counters_.udp_datagrams.add();
      event.frames.push_back(std::move(*first));
      while (auto frame = decoder.next()) event.frames.push_back(std::move(*frame));
      event.resyncs_delta += decoder.resyncs();
      event.skipped_delta += decoder.skipped_bytes();
    }
    if (!event.frames.empty() || event.bytes_delta > 0) {
      event.received_bytes = true;
      push_event(std::move(event));
    }
  }
}

void CollectorShard::run() {
  std::array<epoll_event, 64> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = options_.ops->epoll_wait(epoll_fd_, events.data(),
                                           static_cast<int>(events.size()),
                                           loop_timeout_ms());
    counters_.epoll_wakeups.add();
    metric_wakeups_->inc();
    if (stop_.load(std::memory_order_acquire)) break;
    if (n < 0) {
      if (-n == EINTR) continue;
      obs::log_info("shard.epoll_error", {{"shard", options_.index}, {"errno", -n}});
      break;
    }

    bool event_fd_signaled = false;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[static_cast<std::size_t>(i)].data.u64;
      if (tag == kEventFdTag) {
        event_fd_signaled = true;
      } else if (tag == kListenerTag || tag == kUdpTag) {
        // Handled unconditionally below.
      } else if (auto it = connections_.find(tag); it != connections_.end()) {
        drain_connection(it->second);
      }
    }
    if (event_fd_signaled) {
      std::uint64_t drained = 0;
      [[maybe_unused]] const auto r = ::read(event_fd_, &drained, sizeof drained);
    }

    process_controls();
    // Accept and UDP drains run every iteration, not just on their edges:
    // both end at EAGAIN in a handful of syscalls, and the unconditional
    // retry is what makes injected EAGAIN storms on accept4/recvmmsg unable
    // to strand a pending connection or datagram.
    handle_accept();
    drain_udp();

    if (!retry_list_.empty()) {
      std::vector<std::uint64_t> retries = std::move(retry_list_);
      retry_list_.clear();
      counters_.eagain_retries.add(retries.size());
      for (const std::uint64_t serial : retries) {
        if (auto it = connections_.find(serial); it != connections_.end()) {
          drain_connection(it->second);
        }
      }
    }
    reap_deadlines();

    if (sync_pending_ > 0) {
      // Settle barrier. Any byte that reached this shard's kernel sockets
      // before the spine requested the sync is readable *now*, so one
      // direct drain of every connection (not gated on epoll readiness —
      // injected spurious wakeups can mask edges) plus the unconditional
      // drains above captures it. The ack is withheld while the EAGAIN
      // retry list is busy: an injected storm may still be masking bytes,
      // and the bounded re-polls must run dry first.
      if (sync_drain_needed_) {
        sync_drain_needed_ = false;
        std::vector<std::uint64_t> serials;
        serials.reserve(connections_.size());
        for (const auto& [serial, conn] : connections_) serials.push_back(serial);
        for (const std::uint64_t serial : serials) {
          if (auto it = connections_.find(serial); it != connections_.end()) {
            drain_connection(it->second);
          }
        }
        drain_udp();
      }
      if (retry_list_.empty()) {
        for (; sync_pending_ > 0; --sync_pending_) {
          ShardEvent sync;
          sync.kind = ShardEvent::Kind::kSync;
          push_event(std::move(sync));
        }
      }
    }
  }
}

}  // namespace autosens::net
