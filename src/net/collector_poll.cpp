#include "net/collector_poll.h"

#include <poll.h>
#include <sys/socket.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <sstream>
#include <utility>
#include <vector>

#include "net/collector_metrics.h"
#include "net/wire.h"
#include "obs/health.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "telemetry/binlog.h"

namespace autosens::net {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ms_between(Clock::time_point earlier, Clock::time_point later) noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(later - earlier).count();
}

}  // namespace

struct PollCollector::Connection {
  Socket socket;
  FrameDecoder decoder;
  std::uint64_t session_id = 0;  ///< 0 until (unless) a hello arrives.
  bool saw_goodbye = false;
  bool received_bytes = false;
  bool malformed = false;  ///< Drop decided inside drain_frames.
  std::size_t reported_resyncs = 0;
  std::size_t reported_skipped = 0;
  Clock::time_point last_activity;
};

PollCollector::PollCollector(const CollectorOptions& options)
    : options_(options), ops_(options.ops) {
  listener_ = listen_tcp(options.port, port_);
  // Introspection plane: /healthz readiness plus a /statusz section with
  // per-session state, keyed by port so concurrent collectors coexist.
  health_name_ = "poll-collector:" + std::to_string(port_);
  obs::Health::global().set_component(
      health_name_, true, "listening on 127.0.0.1:" + std::to_string(port_));
  status_section_id_ = obs::StatusRegistry::global().add_section(
      health_name_, [this] { return status_json(); });
  obs::log_debug("poll_collector.listen", {{"port", port_}});
}

PollCollector::~PollCollector() {
  obs::StatusRegistry::global().remove_section(status_section_id_);
  obs::Health::global().remove_component(health_name_);
}

std::string PollCollector::status_json() const {
  const CollectorStats s = stats();
  std::ostringstream out;
  out << "{\"port\": " << port_ << ", \"records\": " << s.records
      << ", \"frames\": " << s.frames << ", \"bytes\": " << s.bytes
      << ", \"dedup_hits\": " << s.duplicate_frames
      << ", \"resyncs\": " << s.resyncs
      << ", \"resync_bytes\": " << s.resync_bytes
      << ", \"dropped_connections\": " << s.dropped_connections
      << ", \"sessions_active\": " << s.sessions_active << ", \"sessions\": {";
  std::lock_guard lock(sessions_mutex_);
  bool first = true;
  for (const auto& [id, session] : sessions_) {
    if (!first) out << ", ";
    first = false;
    // Session ids can exceed 2^53: emit as strings to stay JSON-exact.
    out << "\"" << id << "\": {\"last_seq\": " << session.last_seq
        << ", \"goodbye\": " << (session.said_goodbye ? "true" : "false")
        << ", \"connections\": " << session.connections_seen << "}";
  }
  out << "}}";
  return out.str();
}

CollectorStats PollCollector::stats() const noexcept {
  return CollectorStats{
      .connections = static_cast<std::size_t>(stats_.connections.get()),
      .frames = static_cast<std::size_t>(stats_.frames.get()),
      .records = static_cast<std::size_t>(stats_.records.get()),
      .flushes = static_cast<std::size_t>(stats_.flushes.get()),
      .dropped_connections = static_cast<std::size_t>(stats_.dropped_connections.get()),
      .bytes = static_cast<std::size_t>(stats_.bytes.get()),
      .backpressure_reads = static_cast<std::size_t>(stats_.backpressure_reads.get()),
      .resyncs = static_cast<std::size_t>(stats_.resyncs.get()),
      .resync_bytes = static_cast<std::size_t>(stats_.resync_bytes.get()),
      .duplicate_frames = static_cast<std::size_t>(stats_.duplicate_frames.get()),
      .sessions = static_cast<std::size_t>(stats_.sessions.get()),
      .sessions_active = static_cast<std::size_t>(stats_.sessions.get() -
                                                  stats_.sessions_closed.get()),
      .session_reconnects = static_cast<std::size_t>(stats_.session_reconnects.get()),
      .deadline_drops = static_cast<std::size_t>(stats_.deadline_drops.get()),
      .interrupted_connections =
          static_cast<std::size_t>(stats_.interrupted_connections.get()),
  };
}

std::size_t PollCollector::drain_frames(Connection& connection) {
  // One serve thread mutates sessions_; the lock only orders it against the
  // /statusz provider reading from the obs HTTP thread, so it is
  // uncontended on the hot path.
  std::lock_guard sessions_lock(sessions_mutex_);
  std::size_t goodbyes = 0;
  while (auto frame = connection.decoder.next()) {
    stats_.frames.add();
    collector_metrics().frames.inc();

    if (frame->type == FrameType::kHello) {
      const auto id = parse_hello(frame->payload);
      if (!id || *id == 0) {
        obs::log_info("collector.drop_connection", {{"reason", "bad_hello"}});
        connection.malformed = true;
        return goodbyes;
      }
      connection.session_id = *id;
      auto& session = sessions_[*id];
      ++session.connections_seen;
      if (session.connections_seen == 1) {
        stats_.sessions.add();
        collector_metrics().sessions.inc();
        collector_metrics().sessions_active.add(1.0);
      } else {
        stats_.session_reconnects.add();
        collector_metrics().session_reconnects.inc();
        if (session.connections_seen > options_.max_session_reconnects + 1) {
          obs::log_info("collector.drop_connection",
                        {{"reason", "reconnect_budget"}, {"session", *id}});
          connection.malformed = true;
          return goodbyes;
        }
        obs::log_debug("collector.session_reconnect",
                       {{"session", *id}, {"count", session.connections_seen - 1}});
      }
      // Extended hello: adopt the emitter's trace context so this
      // collector's spans join the same distributed trace.
      if (const auto trace = parse_hello_trace(frame->payload)) {
        session.trace_span = trace->span_id;
        if (trace->trace_id != 0) {
          obs::Tracer::global().set_trace_id(trace->trace_id);
        }
        obs::Span hello_span("net.hello");
        hello_span.link_parent(trace->span_id);
        hello_span.attr("reconnect",
                        static_cast<std::int64_t>(session.connections_seen - 1));
      }
      continue;
    }

    Session* session =
        connection.session_id != 0 ? &sessions_[connection.session_id] : nullptr;
    if (session != nullptr && frame->seq != 0) {
      if (frame->seq <= session->last_seq) {
        // A retransmission of a frame that did arrive the first time: the
        // emitter could not know, the dedup is what makes its retry safe.
        stats_.duplicate_frames.add();
        collector_metrics().dedup_hits.inc();
        obs::Span dedup_span("net.dedup_drop");
        dedup_span.link_parent(frame->span_id != 0 ? frame->span_id
                                                   : session->trace_span);
        dedup_span.attr("seq", static_cast<std::int64_t>(frame->seq));
        if (frame->type == FrameType::kGoodbye) connection.saw_goodbye = true;
        continue;
      }
      session->last_seq = frame->seq;
    }

    switch (frame->type) {
      case FrameType::kData: {
        // Decode span parented on the emitter-side send span carried by the
        // frame (falling back to the session's connect span): the stitch
        // that makes the replay|collect Chrome trace one connected tree.
        obs::Span decode_span("net.decode_frame");
        decode_span.link_parent(frame->span_id != 0
                                    ? frame->span_id
                                    : (session != nullptr ? session->trace_span : 0));
        decode_span.attr("seq", static_cast<std::int64_t>(frame->seq));
        try {
          const auto records = telemetry::codec::decode_batch(frame->payload);
          stats_.records.add(records.size());
          collector_metrics().records.inc(records.size());
          decode_span.attr("records", static_cast<std::int64_t>(records.size()));
          for (const auto& r : records) dataset_.add(r);
        } catch (const std::runtime_error& error) {
          // CRC-valid but undecodable payload: a sender bug, not line
          // noise. Resync cannot help; drop the connection.
          obs::log_info("collector.drop_connection",
                        {{"reason", "bad_payload"}, {"error", error.what()}});
          connection.malformed = true;
          return goodbyes;
        }
        break;
      }
      case FrameType::kFlush:
        stats_.flushes.add();
        collector_metrics().flushes.inc();
        break;
      case FrameType::kGoodbye:
        connection.saw_goodbye = true;
        if (session != nullptr) {
          if (!session->said_goodbye) {
            session->said_goodbye = true;
            stats_.sessions_closed.add();
            collector_metrics().sessions_active.add(-1.0);
            ++goodbyes;
          }
        } else {
          ++goodbyes;
        }
        break;
      case FrameType::kHello:
        break;  // handled above
    }
  }

  // Resync accounting: export the decoder's deltas and enforce the garbage
  // budget — a peer streaming pure noise is cut off, not buffered forever.
  const std::size_t resyncs = connection.decoder.resyncs();
  if (resyncs > connection.reported_resyncs) {
    const auto delta = resyncs - connection.reported_resyncs;
    stats_.resyncs.add(delta);
    collector_metrics().resyncs.inc(delta);
    connection.reported_resyncs = resyncs;
  }
  const std::size_t skipped = connection.decoder.skipped_bytes();
  if (skipped > connection.reported_skipped) {
    const auto delta = skipped - connection.reported_skipped;
    stats_.resync_bytes.add(delta);
    collector_metrics().resync_bytes.inc(delta);
    connection.reported_skipped = skipped;
  }
  if (skipped > options_.max_resync_bytes) {
    obs::log_info("collector.drop_connection",
                  {{"reason", "resync_budget"}, {"skipped_bytes", skipped}});
    connection.malformed = true;
  }
  return goodbyes;
}

bool PollCollector::serve_until_goodbye(std::size_t expected_goodbyes, int timeout_ms) {
  SocketOps& ops = ops_ != nullptr ? *ops_ : real_socket_ops();
  std::vector<Connection> connections;
  std::size_t goodbyes = 0;
  auto last_any_activity = Clock::now();
  collector_metrics().idle_timeout_outcome.set(0.0);

  while (goodbyes < expected_goodbyes) {
    const auto now = Clock::now();

    // Per-connection read deadlines run off the poll clock: a connection
    // silent past the deadline is cut so one stalled emitter cannot hold
    // the collection open forever.
    if (options_.read_deadline_ms >= 0) {
      for (std::size_t i = connections.size(); i-- > 0;) {
        if (ms_between(connections[i].last_activity, now) >= options_.read_deadline_ms) {
          stats_.deadline_drops.add();
          collector_metrics().deadline_drops.inc();
          stats_.dropped_connections.add();
          collector_metrics().drops.inc();
          obs::log_info("collector.drop_connection",
                        {{"reason", "read_deadline"},
                         {"session", connections[i].session_id},
                         {"deadline_ms", options_.read_deadline_ms}});
          connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(i));
        }
      }
    }

    int poll_timeout = timeout_ms;
    if (timeout_ms >= 0) {
      const std::int64_t idle_ms = ms_between(last_any_activity, now);
      if (idle_ms >= timeout_ms) {
        collector_metrics().idle_timeout_outcome.set(1.0);
        obs::log_info("collector.idle_timeout", {{"timeout_ms", timeout_ms},
                                                 {"goodbyes", goodbyes},
                                                 {"expected", expected_goodbyes}});
        return false;  // idle timeout
      }
      poll_timeout = static_cast<int>(timeout_ms - idle_ms);
    }
    if (options_.read_deadline_ms >= 0 && !connections.empty()) {
      std::int64_t nearest = options_.read_deadline_ms;
      for (const auto& connection : connections) {
        nearest = std::min(
            nearest, options_.read_deadline_ms - ms_between(connection.last_activity, now));
      }
      const int wake = static_cast<int>(std::max<std::int64_t>(nearest, 1));
      poll_timeout = poll_timeout < 0 ? wake : std::min(poll_timeout, wake);
    }

    std::vector<pollfd> fds;
    fds.reserve(connections.size() + 1);
    fds.push_back({.fd = listener_.fd(), .events = POLLIN, .revents = 0});
    for (const auto& connection : connections) {
      fds.push_back({.fd = connection.socket.fd(), .events = POLLIN, .revents = 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), poll_timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SocketError("poll()", errno);
    }
    if (ready == 0) continue;  // re-evaluate deadlines and the idle timer
    last_any_activity = Clock::now();

    // New connection?
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd >= 0) {
        Connection connection;
        connection.socket = Socket(fd);
        connection.last_activity = last_any_activity;
        connections.push_back(std::move(connection));
        stats_.connections.add();
        collector_metrics().connections.inc();
        obs::log_debug("collector.accept", {{"fd", fd}});
      } else if (errno != EINTR && errno != EAGAIN) {
        throw SocketError("accept()", errno);
      }
    }

    // Data on existing connections. Iterate over the snapshot taken before
    // the accept; indices into `fds` are connection index + 1.
    std::vector<std::size_t> to_close;
    const std::size_t polled = fds.size() - 1;
    for (std::size_t i = 0; i < polled; ++i) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      auto& connection = connections[i];
      std::array<std::uint8_t, 16384> buffer;
      const std::int64_t n =
          ops.recv(connection.socket.fd(), buffer.data(), buffer.size());
      if (n > 0) {
        stats_.bytes.add(static_cast<std::uint64_t>(n));
        collector_metrics().bytes.inc(static_cast<std::uint64_t>(n));
        if (static_cast<std::size_t>(n) == buffer.size()) {
          // A full buffer means the kernel queue still holds data — the
          // ingest loop is running behind the emitters.
          stats_.backpressure_reads.add();
          collector_metrics().backpressure.inc();
        }
        connection.received_bytes = true;
        connection.last_activity = last_any_activity;
        connection.decoder.feed(
            std::span<const std::uint8_t>(buffer.data(), static_cast<std::size_t>(n)));
        goodbyes += drain_frames(connection);
        if (connection.malformed) {
          stats_.dropped_connections.add();
          collector_metrics().drops.inc();
          to_close.push_back(i);
        } else if (connection.saw_goodbye) {
          to_close.push_back(i);
        }
      } else if (n == 0) {
        // Peer closed. Clean after a goodbye; a session that vanishes
        // without one may yet resume on a reconnect (counted interrupted);
        // a sessionless stream that sent bytes but never finished a
        // goodbye is a protocol failure.
        std::lock_guard sessions_lock(sessions_mutex_);
        if (!connection.saw_goodbye) {
          if (connection.session_id != 0 &&
              !sessions_[connection.session_id].said_goodbye) {
            stats_.interrupted_connections.add();
            collector_metrics().interrupted.inc();
            obs::log_debug("collector.interrupted",
                           {{"session", connection.session_id},
                            {"pending_bytes", connection.decoder.pending_bytes()}});
          } else if (connection.session_id == 0 && connection.received_bytes) {
            stats_.dropped_connections.add();
            collector_metrics().drops.inc();
            obs::log_info("collector.drop_connection", {{"reason", "no_goodbye"}});
          }
        }
        to_close.push_back(i);
      } else {
        const int err = static_cast<int>(-n);
        if (err != EINTR && err != EAGAIN && err != EWOULDBLOCK) {
          stats_.dropped_connections.add();
          collector_metrics().drops.inc();
          obs::log_info("collector.drop_connection",
                        {{"reason", "transport"}, {"errno", err}});
          to_close.push_back(i);
        }
      }
    }
    // Close back-to-front so indices stay valid.
    for (auto it = to_close.rbegin(); it != to_close.rend(); ++it) {
      connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(*it));
    }
  }
  return true;
}

telemetry::Dataset PollCollector::take_dataset() {
  dataset_.sort_by_time();
  return std::exchange(dataset_, telemetry::Dataset{});
}

std::size_t PollCollector::checkpoint(const std::string& path) const {
  telemetry::Dataset copy = dataset_;
  copy.sort_by_time();
  telemetry::write_binlog_file(path, copy);
  obs::log_info("collector.checkpoint", {{"path", path}, {"records", copy.size()}});
  return copy.size();
}

PollCollectorThread::PollCollectorThread(std::size_t expected_goodbyes,
                                         const CollectorOptions& options, int timeout_ms)
    : collector_(options), port_(collector_.port()) {
  thread_ = std::thread([this, expected_goodbyes, timeout_ms] {
    const bool complete = collector_.serve_until_goodbye(expected_goodbyes, timeout_ms);
    complete_.store(complete, std::memory_order_release);
    done_.store(true, std::memory_order_release);
  });
}

PollCollectorThread::~PollCollectorThread() {
  if (thread_.joinable()) thread_.join();
}

telemetry::Dataset PollCollectorThread::join() {
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mutex_);
  return collector_.take_dataset();
}

CollectorStats PollCollectorThread::stats() const {
  // No lock needed: PollCollector::stats() reads relaxed atomics; this is
  // safe while the serve loop is live.
  return collector_.stats();
}

}  // namespace autosens::net
