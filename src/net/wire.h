// Wire protocol for the telemetry pipeline: length-prefixed, CRC-checked
// frames carrying batches of ActionRecords (the same batch payload format as
// the binary log, so collector output and on-disk logs are interchangeable).
//
// Frame layout (little-endian):
//   u8  type        (kData = 1, kFlush = 2, kGoodbye = 3)
//   u32 payload_len
//   payload (payload_len bytes; empty for kFlush / kGoodbye)
//   u32 crc32(payload)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/socket.h"
#include "telemetry/record.h"

namespace autosens::net {

enum class FrameType : std::uint8_t {
  kData = 1,     ///< Payload is an encoded record batch.
  kFlush = 2,    ///< Sender requests durability point (no payload).
  kGoodbye = 3,  ///< Orderly end of stream (no payload).
};

struct Frame {
  FrameType type = FrameType::kData;
  std::vector<std::uint8_t> payload;
};

/// Serialize a frame (computes the CRC).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Write one frame to the socket.
void send_frame(const Socket& socket, const Frame& frame);

/// Convenience: encode records into a kData frame and send.
void send_records(const Socket& socket, std::span<const telemetry::ActionRecord> records);

/// Read one frame. Returns std::nullopt on clean EOF before a frame starts.
/// Throws std::runtime_error on CRC mismatch / malformed frame, SocketError
/// on transport errors. `max_payload` bounds memory against corrupt lengths.
std::optional<Frame> recv_frame(const Socket& socket, std::size_t max_payload = 16 << 20);

/// Incremental frame decoder for non-blocking IO: feed() whatever bytes
/// arrived, then drain complete frames with next(). Used by the concurrent
/// collector, where a read may deliver half a frame or three of them.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = 16 << 20) : max_payload_(max_payload) {}

  /// Append received bytes to the internal buffer.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extract the next complete frame, if any. Throws std::runtime_error on
  /// malformed input (unknown type, oversized payload, CRC mismatch).
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by a complete frame.
  std::size_t pending_bytes() const noexcept { return buffer_.size() - consumed_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< Prefix of buffer_ already decoded.
};

}  // namespace autosens::net
