// Wire protocol for the telemetry pipeline: magic-prefixed, length-prefixed,
// CRC-checked, sequence-numbered frames carrying batches of ActionRecords
// (the same batch payload format as the binary log, so collector output and
// on-disk logs are interchangeable).
//
// Frame layout (little-endian), version 2:
//   u8  magic0 = 0xA5, u8 magic1 = 0x5E
//   u8  type        (kData = 1, kFlush = 2, kGoodbye = 3, kHello = 4;
//                    bit 7 = kFrameTraceFlag, see below)
//   u32 seq         (per-session frame sequence; 0 for unsequenced senders)
//   u32 payload_len
//   [u64 span_id]   (only when kFrameTraceFlag is set in type)
//   payload (payload_len bytes)
//   u32 crc32(type..payload)   — covers the header after the magic, so a
//                                 corrupted length or sequence number cannot
//                                 pass as a valid frame
//
// Trace-context extension: setting Frame::span_id stamps the sending span's
// id onto the frame (flagged by bit 7 of the type byte, an 8-byte insert
// between the header and the payload, covered by the CRC like everything
// after the magic). A kHello payload may additionally be 24 bytes — session
// id, then a WireTraceContext (trace id + emitter root span id) — so
// collector-side decode/dedup spans stitch into emitter-side send/retry
// spans under one trace id. Both extensions are optional; receivers accept
// plain v2 frames unchanged, and senders only emit them while tracing is on.
//
// The magic makes mid-stream recovery possible: after damage, a receiver
// scans forward to the next byte position where magic + type + bounded
// length + CRC all hold (FrameDecoder resync) instead of killing the
// connection. The sequence number makes retransmission idempotent: an
// emitter that cannot know whether a failed send was delivered resends the
// frame, and the collector drops the duplicate by (session, seq).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/socket.h"
#include "telemetry/record.h"

namespace autosens::net {

inline constexpr std::uint8_t kFrameMagic0 = 0xA5;
inline constexpr std::uint8_t kFrameMagic1 = 0x5E;
/// magic(2) + type(1) + seq(4) + len(4).
inline constexpr std::size_t kFrameHeaderBytes = 11;
/// Header + trailing CRC: the wire overhead of an empty frame.
inline constexpr std::size_t kFrameOverheadBytes = kFrameHeaderBytes + 4;
/// Bit 7 of the type byte: the frame carries a u64 span id between the
/// header and the payload.
inline constexpr std::uint8_t kFrameTraceFlag = 0x80;
inline constexpr std::size_t kFrameSpanIdBytes = 8;

enum class FrameType : std::uint8_t {
  kData = 1,     ///< Payload is an encoded record batch.
  kFlush = 2,    ///< Sender requests durability point (no payload).
  kGoodbye = 3,  ///< Orderly end of stream (no payload).
  kHello = 4,    ///< First frame of a connection: payload is a u64 session
                 ///< id, stable across the emitter's reconnects.
};

struct Frame {
  FrameType type = FrameType::kData;
  std::uint32_t seq = 0;
  /// Sending span's id (0 = no trace context). Nonzero values ride the wire
  /// via the kFrameTraceFlag extension; the collector parents its
  /// decode/dedup spans onto this id.
  std::uint64_t span_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Trace context carried by an extended (24-byte) kHello payload.
struct WireTraceContext {
  std::uint64_t trace_id = 0;  ///< Shared by every process of the trace.
  std::uint64_t span_id = 0;   ///< Emitter-side root span at connect time.
};

/// Serialize a frame (computes the CRC).
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// A kHello frame carrying `session_id`; the overload appends a
/// WireTraceContext (24-byte payload).
Frame make_hello(std::uint64_t session_id);
Frame make_hello(std::uint64_t session_id, const WireTraceContext& trace);

/// Extract the session id from a kHello payload (8- or 24-byte form);
/// nullopt if malformed.
std::optional<std::uint64_t> parse_hello(std::span<const std::uint8_t> payload) noexcept;

/// Extract the trace context from an extended kHello payload; nullopt for
/// the plain 8-byte form or malformed payloads.
std::optional<WireTraceContext> parse_hello_trace(
    std::span<const std::uint8_t> payload) noexcept;

/// Write one frame to the socket.
void send_frame(const Socket& socket, const Frame& frame,
                SocketOps& ops = real_socket_ops());

/// Convenience: encode records into a kData frame and send.
void send_records(const Socket& socket, std::span<const telemetry::ActionRecord> records);

/// Read one frame. Returns std::nullopt on clean EOF before a frame starts.
/// Throws std::runtime_error on bad magic / CRC mismatch / malformed frame,
/// SocketError on transport errors. `max_payload` bounds memory against
/// corrupt lengths. Strict (no resync): this is the simple blocking API;
/// stream recovery lives in FrameDecoder.
std::optional<Frame> recv_frame(const Socket& socket, std::size_t max_payload = 16 << 20);

/// Incremental frame decoder for non-blocking IO: feed() whatever bytes
/// arrived, then drain complete frames with next(). Used by the concurrent
/// collector, where a read may deliver half a frame or three of them.
///
/// Damage tolerance: next() never throws. Bytes that do not parse as a
/// valid frame (wrong magic, unknown type, oversized length, CRC mismatch)
/// are skipped one position at a time until the next byte offset where a
/// whole valid frame sits. Each contiguous skipped run that ends in a valid
/// frame counts as one resync; skipped_bytes() totals the garbage so the
/// caller can bound it (a peer streaming pure noise is cut off by the
/// collector's max_resync_bytes, not by unbounded buffering here).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = 16 << 20) : max_payload_(max_payload) {}

  /// Append received bytes to the internal buffer.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extract the next complete valid frame, if any.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by a complete frame.
  std::size_t pending_bytes() const noexcept { return buffer_.size() - consumed_; }
  /// Contiguous damaged runs skipped over (each ending in a valid frame).
  std::size_t resyncs() const noexcept { return resyncs_; }
  /// Total bytes discarded while scanning for valid frames.
  std::size_t skipped_bytes() const noexcept { return skipped_bytes_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< Prefix of buffer_ already decoded/rejected.
  std::size_t resyncs_ = 0;
  std::size_t skipped_bytes_ = 0;
  bool skipping_ = false;  ///< In the middle of a damaged run.
};

}  // namespace autosens::net
