#include "net/udp.h"

#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <stdexcept>

#include "obs/log.h"
#include "stats/rng.h"
#include "telemetry/binlog.h"

namespace autosens::net {
namespace {

std::uint64_t derive_udp_session_id() {
  // Process-unique, deterministic order; never 0 (0 marks sessionless).
  static std::atomic<std::uint64_t> next{1};
  const std::uint64_t id =
      stats::SplitMix64(0x0dd5e551'0d17aULL + next.fetch_add(1)).next();
  return id != 0 ? id : 1;
}

}  // namespace

UdpEmitter::UdpEmitter(std::uint16_t port, UdpEmitterOptions options)
    : ops_(options.ops != nullptr ? *options.ops : real_socket_ops()),
      options_(std::move(options)),
      session_id_(options_.session_id != 0 ? options_.session_id
                                           : derive_udp_session_id()) {
  if (options_.batch_size == 0) {
    throw std::invalid_argument("UdpEmitter: batch_size must be nonzero");
  }
  if (options_.max_datagram_bytes < 128) {
    throw std::invalid_argument("UdpEmitter: max_datagram_bytes too small");
  }
  socket_ = connect_udp(port);
  if (options_.sndbuf_bytes > 0) {
    ops_.setsockopt_int(socket_.fd(), SOL_SOCKET, SO_SNDBUF, options_.sndbuf_bytes);
  }
  std::sort(options_.drop_datagrams.begin(), options_.drop_datagrams.end());
  obs::log_debug("udp_emitter.open", {{"port", port},
                                      {"session", session_id_},
                                      {"batch", options_.batch_size},
                                      {"max_datagram", options_.max_datagram_bytes}});
}

UdpEmitter::~UdpEmitter() {
  try {
    close();
  } catch (...) {
    // Destructor close is best-effort; loss is accounted collector-side.
  }
}

void UdpEmitter::record(const telemetry::ActionRecord& record) {
  if (closed_) throw std::logic_error("UdpEmitter: record() after close()");
  pending_.push_back(record);
  if (pending_.size() >= options_.batch_size) {
    pack_records(pending_.data(), pending_.size());
    pending_.clear();
  }
}

void UdpEmitter::pack_records(const telemetry::ActionRecord* records,
                              std::size_t count) {
  if (count == 0) return;
  Frame frame;
  frame.type = FrameType::kData;
  frame.payload = telemetry::codec::encode_batch({records, count});
  // A frame that cannot share a datagram with its hello must be split:
  // datagrams are never fragmented across reads on the collector side.
  const std::size_t budget =
      options_.max_datagram_bytes - (kFrameOverheadBytes + 8 + 4);  // hello share
  if (count > 1 && frame.payload.size() + kFrameOverheadBytes > budget) {
    const std::size_t half = count / 2;
    pack_records(records, half);
    pack_records(records + half, count - half);
    return;
  }
  frame.seq = next_seq_++;
  queue_frame(frame, /*remember=*/true);
  sent_records_ += count;
}

void UdpEmitter::append_bytes(const std::vector<std::uint8_t>& encoded) {
  if (current_.empty()) {
    Frame hello = make_hello(session_id_);
    hello.seq = next_datagram_++;
    current_datagram_seq_ = hello.seq;
    const auto hello_bytes = encode_frame(hello);
    current_.insert(current_.end(), hello_bytes.begin(), hello_bytes.end());
    ++sent_frames_;
  } else if (current_.size() + encoded.size() > options_.max_datagram_bytes) {
    seal_datagram();
    append_bytes(encoded);
    return;
  }
  current_.insert(current_.end(), encoded.begin(), encoded.end());
  ++sent_frames_;
}

void UdpEmitter::queue_frame(const Frame& frame, bool remember) {
  auto encoded = encode_frame(frame);
  append_bytes(encoded);
  if (remember && options_.final_retransmit) retransmit_.push_back(std::move(encoded));
  if (outbox_.size() >= options_.sendmmsg_batch) ship();
}

void UdpEmitter::seal_datagram() {
  if (current_.empty()) return;
  const bool dropped = std::binary_search(options_.drop_datagrams.begin(),
                                          options_.drop_datagrams.end(),
                                          current_datagram_seq_);
  if (dropped) {
    // Planned loss: the datagram number is consumed but the bytes never
    // reach the kernel — the collector's gap tracker owes us exactly one
    // lost datagram for it.
    ++planned_drops_;
    obs::log_debug("udp_emitter.planned_drop",
                   {{"session", session_id_}, {"datagram", current_datagram_seq_}});
  } else {
    outbox_.push_back(std::move(current_));
  }
  current_.clear();
}

void UdpEmitter::ship() {
  seal_datagram();
  std::size_t offset = 0;
  while (offset < outbox_.size()) {
    const std::size_t batch =
        std::min(options_.sendmmsg_batch, outbox_.size() - offset);
    std::vector<iovec> iovs(batch);
    std::vector<mmsghdr> msgs(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      iovs[i] = {.iov_base = outbox_[offset + i].data(),
                 .iov_len = outbox_[offset + i].size()};
      msgs[i] = {};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int n = ops_.sendmmsg(socket_.fd(), msgs.data(), static_cast<unsigned>(batch));
    if (n < 0) {
      const int err = -n;
      if (err == EINTR) continue;
      if (err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS) {
        // Kernel buffers full (or an injected stall): wait and resume —
        // silently losing a whole batch here would be sender-side loss the
        // accounting could never see.
        ops_.sleep_ms(1);
        continue;
      }
      throw SocketError("sendmmsg()", err);
    }
    if (n == 0) {
      ops_.sleep_ms(1);
      continue;
    }
    sent_datagrams_ += static_cast<std::size_t>(n);
    offset += static_cast<std::size_t>(n);  // partial batch: resume the rest
  }
  outbox_.clear();
}

void UdpEmitter::flush() {
  if (closed_) return;
  if (!pending_.empty()) {
    pack_records(pending_.data(), pending_.size());
    pending_.clear();
  }
  Frame flush_marker;
  flush_marker.type = FrameType::kFlush;
  flush_marker.seq = next_seq_++;
  queue_frame(flush_marker, /*remember=*/false);
  ship();
}

void UdpEmitter::close() {
  if (closed_) return;
  flush();

  if (options_.final_retransmit && !retransmit_.empty()) {
    // Second delivery attempt for every data frame, in fresh datagrams
    // (new datagram numbers, original frame seqs): datagram loss on the
    // first pass becomes an accounted gap, not missing data — the
    // collector's frame dedup collapses the overlap.
    for (const auto& encoded : retransmit_) {
      append_bytes(encoded);
      if (outbox_.size() >= options_.sendmmsg_batch) ship();
    }
    ship();
  }

  Frame goodbye;
  goodbye.type = FrameType::kGoodbye;
  goodbye.seq = next_seq_++;
  queue_frame(goodbye, /*remember=*/false);
  seal_datagram();
  // The goodbye datagram ships goodbye_copies times byte-identically (same
  // datagram number): surviving any copy ends the session; extra copies
  // collapse in the datagram dedup.
  if (!outbox_.empty() && options_.goodbye_copies > 1) {
    const auto goodbye_datagram = outbox_.back();
    for (std::size_t i = 1; i < options_.goodbye_copies; ++i) {
      outbox_.push_back(goodbye_datagram);
    }
  }
  ship();
  closed_ = true;
  obs::log_debug("udp_emitter.close", {{"session", session_id_},
                                       {"records", sent_records_},
                                       {"datagrams", sent_datagrams_},
                                       {"planned_drops", planned_drops_}});
}

}  // namespace autosens::net
