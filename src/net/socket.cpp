#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace autosens::net {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

int Socket::release() noexcept { return std::exchange(fd_, -1); }

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SocketError::SocketError(std::string what, int saved_errno)
    : message_(std::move(what)), errno_(saved_errno) {
  message_ += ": ";
  message_ += std::strerror(saved_errno);
}

Socket listen_tcp(std::uint16_t port, std::uint16_t& bound_port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw SocketError("socket()", errno);

  const int enable = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable) < 0) {
    throw SocketError("setsockopt(SO_REUSEADDR)", errno);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw SocketError("bind()", errno);
  }
  if (::listen(sock.fd(), backlog) < 0) throw SocketError("listen()", errno);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw SocketError("getsockname()", errno);
  }
  bound_port = ntohs(bound.sin_port);
  return sock;
}

Socket connect_tcp(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw SocketError("socket()", errno);

  const int enable = 1;
  // Telemetry batches are small; disable Nagle so latency samples flush.
  if (::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable) < 0) {
    throw SocketError("setsockopt(TCP_NODELAY)", errno);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw SocketError("connect()", errno);
  }
  return sock;
}

std::optional<Socket> accept_with_timeout(const Socket& listener, int timeout_ms) {
  pollfd pfd{.fd = listener.fd(), .events = POLLIN, .revents = 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SocketError("poll()", errno);
    }
    if (ready == 0) return std::nullopt;
    break;
  }
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) throw SocketError("accept()", errno);
  return Socket(fd);
}

void write_all(const Socket& socket, std::span<const std::uint8_t> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::send(socket.fd(), data.data() + written, data.size() - written,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError("send()", errno);
    }
    written += static_cast<std::size_t>(n);
  }
}

bool read_exact(const Socket& socket, std::span<std::uint8_t> data) {
  std::size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::recv(socket.fd(), data.data() + got, data.size() - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError("recv()", errno);
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw SocketError("recv(): unexpected EOF mid-message", ECONNRESET);
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace autosens::net
