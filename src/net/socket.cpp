#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace autosens::net {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

int Socket::release() noexcept { return std::exchange(fd_, -1); }

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SocketError::SocketError(std::string what, int saved_errno)
    : message_(std::move(what)), errno_(saved_errno) {
  message_ += ": ";
  message_ += std::strerror(saved_errno);
}

std::string peer_address(int fd) noexcept {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0 ||
      addr.sin_family != AF_INET) {
    return "unknown-peer";
  }
  char ip[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip) == nullptr) return "unknown-peer";
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

int SocketOps::connect_tcp_fd(std::uint16_t port) noexcept {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -errno;

  const int enable = 1;
  // Telemetry batches are small; disable Nagle so latency samples flush.
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof enable) < 0) {
    const int saved = errno;
    ::close(fd);
    return -saved;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    return -saved;
  }
  return fd;
}

std::int64_t SocketOps::send(int fd, const std::uint8_t* data, std::size_t len) noexcept {
  const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
  return n >= 0 ? n : -static_cast<std::int64_t>(errno);
}

std::int64_t SocketOps::recv(int fd, std::uint8_t* data, std::size_t len) noexcept {
  const ssize_t n = ::recv(fd, data, len, 0);
  return n >= 0 ? n : -static_cast<std::int64_t>(errno);
}

void SocketOps::sleep_ms(std::uint32_t ms) noexcept {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

int SocketOps::accept4_fd(int listen_fd) noexcept {
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  return fd >= 0 ? fd : -errno;
}

int SocketOps::epoll_wait(int epoll_fd, struct epoll_event* events, int max_events,
                          int timeout_ms) noexcept {
  const int n = ::epoll_wait(epoll_fd, events, max_events, timeout_ms);
  return n >= 0 ? n : -errno;
}

int SocketOps::recvmmsg(int fd, struct mmsghdr* msgs, unsigned count) noexcept {
  const int n = ::recvmmsg(fd, msgs, count, MSG_DONTWAIT, nullptr);
  return n >= 0 ? n : -errno;
}

int SocketOps::sendmmsg(int fd, struct mmsghdr* msgs, unsigned count) noexcept {
  const int n = ::sendmmsg(fd, msgs, count, 0);
  return n >= 0 ? n : -errno;
}

int SocketOps::setsockopt_int(int fd, int level, int option, int value) noexcept {
  return ::setsockopt(fd, level, option, &value, sizeof value) == 0 ? 0 : -errno;
}

SocketOps& real_socket_ops() noexcept {
  static SocketOps ops;
  return ops;
}

Socket listen_tcp(std::uint16_t port, std::uint16_t& bound_port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw SocketError("socket()", errno);

  const int enable = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable) < 0) {
    throw SocketError("setsockopt(SO_REUSEADDR)", errno);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw SocketError("bind(127.0.0.1:" + std::to_string(port) + ")", errno);
  }
  if (::listen(sock.fd(), backlog) < 0) throw SocketError("listen()", errno);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw SocketError("getsockname()", errno);
  }
  bound_port = ntohs(bound.sin_port);
  return sock;
}

Socket listen_tcp_reuseport(std::uint16_t port, std::uint16_t& bound_port, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!sock.valid()) throw SocketError("socket()", errno);

  const int enable = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable) < 0) {
    throw SocketError("setsockopt(SO_REUSEADDR)", errno);
  }
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEPORT, &enable, sizeof enable) < 0) {
    throw SocketError("setsockopt(SO_REUSEPORT)", errno);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw SocketError("bind(127.0.0.1:" + std::to_string(port) + ", SO_REUSEPORT)",
                      errno);
  }
  if (::listen(sock.fd(), backlog) < 0) throw SocketError("listen()", errno);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw SocketError("getsockname()", errno);
  }
  bound_port = ntohs(bound.sin_port);
  return sock;
}

Socket bind_udp(std::uint16_t port, std::uint16_t& bound_port, bool reuseport) {
  Socket sock(::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!sock.valid()) throw SocketError("socket(SOCK_DGRAM)", errno);

  const int enable = 1;
  if (reuseport &&
      ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEPORT, &enable, sizeof enable) < 0) {
    throw SocketError("setsockopt(SO_REUSEPORT)", errno);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw SocketError("bind(udp 127.0.0.1:" + std::to_string(port) + ")", errno);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw SocketError("getsockname()", errno);
  }
  bound_port = ntohs(bound.sin_port);
  return sock;
}

Socket connect_udp(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) throw SocketError("socket(SOCK_DGRAM)", errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    throw SocketError("connect(udp 127.0.0.1:" + std::to_string(port) + ")", errno);
  }
  return sock;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw SocketError("fcntl(O_NONBLOCK)", errno);
  }
}

Socket connect_tcp(std::uint16_t port, SocketOps& ops) {
  const int fd = ops.connect_tcp_fd(port);
  if (fd < 0) {
    throw SocketError("connect(127.0.0.1:" + std::to_string(port) + ")",
                      static_cast<int>(-fd));
  }
  return Socket(fd);
}

std::optional<Socket> accept_with_timeout(const Socket& listener, int timeout_ms) {
  pollfd pfd{.fd = listener.fd(), .events = POLLIN, .revents = 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SocketError("poll()", errno);
    }
    if (ready == 0) return std::nullopt;
    break;
  }
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) throw SocketError("accept()", errno);
  return Socket(fd);
}

void write_all(const Socket& socket, std::span<const std::uint8_t> data, SocketOps& ops) {
  std::size_t written = 0;
  while (written < data.size()) {
    const std::int64_t n =
        ops.send(socket.fd(), data.data() + written, data.size() - written);
    if (n < 0) {
      const int err = static_cast<int>(-n);
      if (err == EINTR) continue;
      if (err == EAGAIN || err == EWOULDBLOCK) {
        // Blocking sockets only hit this under injected stalls or
        // SO_SNDTIMEO; yield briefly and retry rather than failing.
        ops.sleep_ms(1);
        continue;
      }
      throw SocketError("send() to " + peer_address(socket.fd()), err);
    }
    written += static_cast<std::size_t>(n);
  }
}

bool read_exact(const Socket& socket, std::span<std::uint8_t> data, SocketOps& ops) {
  std::size_t got = 0;
  while (got < data.size()) {
    const std::int64_t n = ops.recv(socket.fd(), data.data() + got, data.size() - got);
    if (n < 0) {
      const int err = static_cast<int>(-n);
      if (err == EINTR) continue;
      if (err == EAGAIN || err == EWOULDBLOCK) {
        ops.sleep_ms(1);
        continue;
      }
      throw SocketError("recv() from " + peer_address(socket.fd()), err);
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw SocketError(
          "recv() from " + peer_address(socket.fd()) + ": unexpected EOF mid-message",
          ECONNRESET);
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace autosens::net
