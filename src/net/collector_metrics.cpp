#include "net/collector_metrics.h"

namespace autosens::net {

CollectorMetrics& collector_metrics() {
  static CollectorMetrics handles;
  return handles;
}

}  // namespace autosens::net
