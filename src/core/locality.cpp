#include "core/locality.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace autosens::core {

LocalityReport analyze_locality(const telemetry::Dataset& dataset,
                                const LocalityOptions& options, stats::Random& random) {
  if (dataset.empty()) throw std::invalid_argument("analyze_locality: empty dataset");
  if (options.window_ms <= 0) throw std::invalid_argument("analyze_locality: bad window");

  LocalityReport report;
  report.samples = dataset.size();
  const auto latencies = dataset.latencies();
  report.msd_mad_actual = stats::msd_mad_ratio(latencies);

  // Shuffled baseline: expectation of the ratio under exchangeability.
  // (The shuffle and sort need owned copies; the span itself is read-only.)
  std::vector<double> shuffled(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (std::size_t s = 0; s < options.shuffles; ++s) {
    random.shuffle(std::span<double>(shuffled));
    sum += stats::msd_mad_ratio(shuffled);
  }
  report.msd_mad_shuffled = options.shuffles > 0 ? sum / static_cast<double>(options.shuffles)
                                                 : 0.0;

  // Sorted baseline: the most local arrangement possible.
  std::vector<double> sorted(latencies.begin(), latencies.end());
  std::sort(sorted.begin(), sorted.end());
  report.msd_mad_sorted = stats::msd_mad_ratio(sorted);

  // Density vs latency over fixed windows (§2.1, second prong).
  const auto times = dataset.times();
  const auto windows = stats::window_aggregate(times, latencies, dataset.begin_time(),
                                               dataset.end_time(), options.window_ms);
  const auto used = stats::nonempty_windows(windows, options.min_window_samples);
  report.windows_used = used.size();
  if (used.size() >= 2) {
    const auto counts = stats::window_counts(used);
    const auto means = stats::window_means(used);
    report.density_latency_correlation = stats::pearson(counts, means);

    // Detrend by hour-of-day: divide each window's count and latency by the
    // mean over all windows that fall in the same hour-of-day class.
    std::array<double, 24> count_sum{};
    std::array<double, 24> mean_sum{};
    std::array<std::size_t, 24> n{};
    std::vector<int> hour(used.size());
    for (std::size_t i = 0; i < used.size(); ++i) {
      hour[i] = telemetry::hour_of_day(used[i].window_begin);
      const auto h = static_cast<std::size_t>(hour[i]);
      count_sum[h] += counts[i];
      mean_sum[h] += means[i];
      ++n[h];
    }
    std::vector<double> det_counts;
    std::vector<double> det_means;
    det_counts.reserve(used.size());
    det_means.reserve(used.size());
    for (std::size_t i = 0; i < used.size(); ++i) {
      const auto h = static_cast<std::size_t>(hour[i]);
      const double c_base = count_sum[h] / static_cast<double>(n[h]);
      const double m_base = mean_sum[h] / static_cast<double>(n[h]);
      if (c_base <= 0.0 || m_base <= 0.0) continue;
      det_counts.push_back(counts[i] / c_base);
      det_means.push_back(means[i] / m_base);
    }
    if (det_counts.size() >= 2) {
      report.detrended_density_latency_correlation = stats::pearson(det_counts, det_means);
    }
  }
  return report;
}

ActivityLatencySeries activity_latency_series(const telemetry::Dataset& dataset,
                                              std::int64_t window_ms) {
  if (dataset.empty()) throw std::invalid_argument("activity_latency_series: empty dataset");
  const auto times = dataset.times();
  const auto latencies = dataset.latencies();
  const auto windows = stats::window_aggregate(times, latencies, dataset.begin_time(),
                                               dataset.end_time(), window_ms);
  ActivityLatencySeries series;
  series.window_begin_ms.reserve(windows.size());
  for (const auto& w : windows) series.window_begin_ms.push_back(w.window_begin);
  series.activity = stats::minmax_normalize(stats::window_counts(windows));
  series.latency = stats::minmax_normalize(stats::window_means(windows));
  return series;
}

}  // namespace autosens::core
