#include "core/sensitivity.h"

#include "core/biased.h"
#include "core/confounder_time.h"
#include "core/unbiased.h"
#include "stats/distance.h"

namespace autosens::core {

std::string_view to_string(SensitivityClass c) noexcept {
  switch (c) {
    case SensitivityClass::kInsensitive: return "insensitive";
    case SensitivityClass::kModerate: return "moderately sensitive";
    case SensitivityClass::kHigh: return "highly sensitive";
  }
  return "insensitive";
}

SensitivitySummary summarize(const PreferenceResult& preference) {
  SensitivitySummary summary;
  const auto drop_at = [&preference](double latency) {
    return preference.covers(latency) ? 1.0 - preference.at(latency) : 0.0;
  };
  summary.drop_at_500ms = drop_at(500.0);
  summary.drop_at_1000ms = drop_at(1000.0);
  summary.drop_at_2000ms = drop_at(2000.0);

  // Elasticity: secant slope from the reference to 1500 ms (or the end of
  // the supported range, whichever comes first).
  const double ref = preference.reference_latency_ms;
  double hi = 1500.0;
  if (!preference.covers(hi)) {
    hi = preference.latency_ms.empty() ? ref
                                       : preference.latency_ms[preference.support_end - 1];
  }
  if (preference.covers(ref) && preference.covers(hi) && hi > ref) {
    summary.slope_per_100ms =
        (preference.at(hi) - preference.at(ref)) / (hi - ref) * 100.0;
  }

  // First crossing below 0.8, scanned at bin resolution.
  for (std::size_t i = preference.support_begin; i < preference.support_end; ++i) {
    if (preference.latency_ms[i] >= ref && preference.normalized[i] < 0.8) {
      summary.latency_at_nlp_08 = preference.latency_ms[i];
      break;
    }
  }

  if (summary.drop_at_1000ms > 0.15) {
    summary.classification = SensitivityClass::kHigh;
  } else if (summary.drop_at_1000ms > 0.05) {
    summary.classification = SensitivityClass::kModerate;
  }
  return summary;
}

ScreeningReport screen(const telemetry::Dataset& dataset, const AutoSensOptions& options,
                       double min_distance) {
  // Honor the time-confounder setting: without α-normalization, the diurnal
  // activity/latency coupling largely cancels the divergence the preference
  // creates, and the screen would read "nothing here" on sensitive slices.
  auto biased = biased_histogram(dataset, options);
  if (options.normalize_time_confounder) {
    biased = TimeNormalizer(dataset, options).normalized_biased(dataset);
  }
  const auto unbiased = unbiased_histogram(dataset, options);
  ScreeningReport report;
  report.total_variation = stats::total_variation_distance(biased, unbiased);
  report.kolmogorov_smirnov = stats::ks_statistic(biased, unbiased);
  report.mean_shift_ms = stats::mean_shift(biased, unbiased);
  report.worth_analyzing = report.total_variation >= min_distance;
  return report;
}

}  // namespace autosens::core
