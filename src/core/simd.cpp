#include "core/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <vector>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define AUTOSENS_SIMD_X86 1
#endif

#include "obs/log.h"
#include "obs/metrics.h"

namespace autosens::core::simd {
namespace {

// bin_index_scalar (simd.h) is the reference the vector binning below must
// match bit-for-bit.

// ---------------------------------------------------------------------------
// Scalar paths (always compiled, always tested).

void scalar_bin_indices(const double* values, std::size_t n, double lo, double width,
                        std::size_t bins, std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(bin_index_scalar(values[i], lo, width, bins));
  }
}

void scalar_histogram_fill(const double* values, std::size_t n, double lo, double width,
                           std::size_t bins, double* counts) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    counts[bin_index_scalar(values[i], lo, width, bins)] += 1.0;
  }
}

void scalar_histogram_fill_const(const double* values, std::size_t n, double weight,
                                 double lo, double width, std::size_t bins,
                                 double* counts) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    counts[bin_index_scalar(values[i], lo, width, bins)] += weight;
  }
}

// Accumulates weights into bins in element order; the caller computes the
// weight total separately with sum_interleaved so the serial `added` chain
// does not bound the fill's throughput.
void scalar_histogram_fill_weighted(const double* values, const double* weights,
                                    std::size_t n, double lo, double width,
                                    std::size_t bins, double* counts) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    counts[bin_index_scalar(values[i], lo, width, bins)] += weights[i];
  }
}

void scalar_fir_convolve(const double* signal, std::size_t n_out, const double* kernel,
                         std::size_t window, double* out) noexcept {
  for (std::size_t i = 0; i < n_out; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < window; ++j) sum += kernel[j] * signal[i + j];
    out[i] = sum;
  }
}

void scalar_scale(double* values, std::size_t n, double factor) noexcept {
  for (std::size_t i = 0; i < n; ++i) values[i] *= factor;
}

void scalar_divide(double* values, std::size_t n, double divisor) noexcept {
  for (std::size_t i = 0; i < n; ++i) values[i] /= divisor;
}

void scalar_clamp_min(double* values, std::size_t n, double floor_value) noexcept {
  // `v < floor ? floor : v` (not std::max) so NaN passes through unchanged,
  // matching the AVX2 blend-on-compare.
  for (std::size_t i = 0; i < n; ++i) {
    if (values[i] < floor_value) values[i] = floor_value;
  }
}

void scalar_add_assign(double* dst, const double* src, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

MinMax scalar_minmax(const double* values, std::size_t n) noexcept {
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double v = values[i];
    if (std::isnan(v)) continue;
    if (v < mn) mn = v;
    if (v > mx) mx = v;
  }
  if (mn == std::numeric_limits<double>::infinity() &&
      mx == -std::numeric_limits<double>::infinity()) {
    return {std::nan(""), std::nan("")};  // every entry was NaN
  }
  return {mn, mx};
}

/// Fold the 4 interleaved lane accumulators then the serial tail — the
/// accumulation order both sum paths implement literally.
inline double fold_lanes_and_tail(double a0, double a1, double a2, double a3,
                                  const double* tail, std::size_t tail_n) noexcept {
  double sum = ((a0 + a1) + a2) + a3;
  for (std::size_t i = 0; i < tail_n; ++i) sum += tail[i];
  return sum;
}

double scalar_sum_interleaved(const double* values, std::size_t n) noexcept {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  const std::size_t m = n & ~std::size_t{3};
  for (std::size_t i = 0; i < m; i += 4) {
    a0 += values[i];
    a1 += values[i + 1];
    a2 += values[i + 2];
    a3 += values[i + 3];
  }
  return fold_lanes_and_tail(a0, a1, a2, a3, values + m, n - m);
}

double scalar_l1_prob_diff(const double* a, const double* b, std::size_t n,
                           double a_total, double b_total) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  const std::size_t m = n & ~std::size_t{3};
  for (std::size_t i = 0; i < m; i += 4) {
    s0 += std::fabs(a[i] / a_total - b[i] / b_total);
    s1 += std::fabs(a[i + 1] / a_total - b[i + 1] / b_total);
    s2 += std::fabs(a[i + 2] / a_total - b[i + 2] / b_total);
    s3 += std::fabs(a[i + 3] / a_total - b[i + 3] / b_total);
  }
  double sum = ((s0 + s1) + s2) + s3;
  for (std::size_t i = m; i < n; ++i) {
    sum += std::fabs(a[i] / a_total - b[i] / b_total);
  }
  return sum;
}

double scalar_bhattacharyya(const double* a, const double* b, std::size_t n,
                            double a_total, double b_total) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  const std::size_t m = n & ~std::size_t{3};
  for (std::size_t i = 0; i < m; i += 4) {
    s0 += std::sqrt((a[i] / a_total) * (b[i] / b_total));
    s1 += std::sqrt((a[i + 1] / a_total) * (b[i + 1] / b_total));
    s2 += std::sqrt((a[i + 2] / a_total) * (b[i + 2] / b_total));
    s3 += std::sqrt((a[i + 3] / a_total) * (b[i + 3] / b_total));
  }
  double sum = ((s0 + s1) + s2) + s3;
  for (std::size_t i = m; i < n; ++i) {
    sum += std::sqrt((a[i] / a_total) * (b[i] / b_total));
  }
  return sum;
}

/// Bin-index buffer size for the order-preserving fill paths: big enough to
/// amortize the vector pass, small enough to stay in L1.
constexpr std::size_t kIndexBlock = 1024;

// ---------------------------------------------------------------------------
// AVX2 paths. Compiled with per-function target attributes (no -mavx2 on the
// base build); selected at runtime via __builtin_cpu_supports.

#ifdef AUTOSENS_SIMD_X86

/// Clamped bin indices of 4 values; mirrors bin_index_scalar exactly: one
/// correctly-rounded division, NaN/negative offsets -> 0, >= bins -> bins-1.
__attribute__((target("avx2"), always_inline)) inline __m128i bin_index4(
    __m256d v, __m256d lo, __m256d width, __m256d bins_d, __m256d bins_m1_d) noexcept {
  __m256d off = _mm256_div_pd(_mm256_sub_pd(v, lo), width);
  // offset > 0 is false for NaN and non-positive offsets; AND with the mask
  // zeroes those lanes (bin 0).
  const __m256d gt0 = _mm256_cmp_pd(off, _mm256_setzero_pd(), _CMP_GT_OQ);
  off = _mm256_and_pd(off, gt0);
  const __m256d overflow = _mm256_cmp_pd(off, bins_d, _CMP_GE_OQ);
  off = _mm256_blendv_pd(off, bins_m1_d, overflow);
  return _mm256_cvttpd_epi32(off);  // truncate == floor for non-negative
}

__attribute__((target("avx2"))) void avx2_bin_indices(
    const double* values, std::size_t n, double lo, double width, std::size_t bins,
    std::uint32_t* out) noexcept {
  const __m256d lo_v = _mm256_set1_pd(lo);
  const __m256d w_v = _mm256_set1_pd(width);
  const __m256d bins_v = _mm256_set1_pd(static_cast<double>(bins));
  const __m256d bins_m1_v = _mm256_set1_pd(static_cast<double>(bins - 1));
  const std::size_t m = n & ~std::size_t{3};
  for (std::size_t i = 0; i < m; i += 4) {
    const __m128i idx =
        bin_index4(_mm256_loadu_pd(values + i), lo_v, w_v, bins_v, bins_m1_v);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), idx);
  }
  for (std::size_t i = m; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(bin_index_scalar(values[i], lo, width, bins));
  }
}

/// Unit-weight fill into 8 per-lane partial histograms (lane k at
/// lanes[k * bins]); the caller merges. Exact: counts are integer-valued.
/// Indices for a whole L1-resident block are produced first so the divisions
/// pipeline freely, then the scatter loop increments eight independent
/// destination histograms so nearby values sharing a bin don't serialize on
/// store-to-load forwarding.
__attribute__((target("avx2"))) void avx2_fill_lanes(
    const double* values, std::size_t n, double lo, double width, std::size_t bins,
    double* lanes) noexcept {
  double* l0 = lanes;
  double* l1 = lanes + bins;
  double* l2 = lanes + 2 * bins;
  double* l3 = lanes + 3 * bins;
  double* l4 = lanes + 4 * bins;
  double* l5 = lanes + 5 * bins;
  double* l6 = lanes + 6 * bins;
  double* l7 = lanes + 7 * bins;
  alignas(16) std::uint32_t idx[kIndexBlock];
  std::size_t offset = 0;
  for (; offset + kIndexBlock <= n; offset += kIndexBlock) {
    avx2_bin_indices(values + offset, kIndexBlock, lo, width, bins, idx);
    for (std::size_t i = 0; i < kIndexBlock; i += 8) {
      l0[idx[i]] += 1.0;
      l1[idx[i + 1]] += 1.0;
      l2[idx[i + 2]] += 1.0;
      l3[idx[i + 3]] += 1.0;
      l4[idx[i + 4]] += 1.0;
      l5[idx[i + 5]] += 1.0;
      l6[idx[i + 6]] += 1.0;
      l7[idx[i + 7]] += 1.0;
    }
  }
  for (; offset < n; ++offset) {
    l0[bin_index_scalar(values[offset], lo, width, bins)] += 1.0;
  }
}

/// Weighted fill fused with the interleaved weight-total reduction. The
/// accumulator's lane assignment (element i -> lane i%4, ascending order),
/// the ((l0+l1)+l2)+l3 fold, and the serial tail are exactly those of
/// avx2_sum_interleaved, so the returned total is bit-identical to
/// sum_interleaved(weights); bin adds replay in element order throughout.
__attribute__((target("avx2"))) double avx2_fill_weighted(
    const double* values, const double* weights, std::size_t n, double lo,
    double width, std::size_t bins, double* counts) noexcept {
  __m256d acc = _mm256_setzero_pd();
  alignas(16) std::uint32_t idx[kIndexBlock];
  const std::size_t m = n & ~std::size_t{3};
  std::size_t offset = 0;
  while (offset < m) {
    const std::size_t block = std::min(kIndexBlock, m - offset);
    avx2_bin_indices(values + offset, block, lo, width, bins, idx);
    const double* w = weights + offset;
    for (std::size_t i = 0; i < block; i += 4) {
      acc = _mm256_add_pd(acc, _mm256_loadu_pd(w + i));
      counts[idx[i]] += w[i];
      counts[idx[i + 1]] += w[i + 1];
      counts[idx[i + 2]] += w[i + 2];
      counts[idx[i + 3]] += w[i + 3];
    }
    offset += block;
  }
  for (std::size_t i = m; i < n; ++i) {
    counts[bin_index_scalar(values[i], lo, width, bins)] += weights[i];
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  return fold_lanes_and_tail(lanes[0], lanes[1], lanes[2], lanes[3], weights + m, n - m);
}

__attribute__((target("avx2"))) void avx2_fir_convolve(
    const double* signal, std::size_t n_out, const double* kernel, std::size_t window,
    double* out) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n_out; i += 4) {
    // Four outputs at once; each lane accumulates over j in the same order
    // with separate multiply+add, so it rounds exactly like the scalar loop.
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < window; ++j) {
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_set1_pd(kernel[j]), _mm256_loadu_pd(signal + i + j)));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  if (i < n_out) scalar_fir_convolve(signal + i, n_out - i, kernel, window, out + i);
}

__attribute__((target("avx2"))) void avx2_scale(double* values, std::size_t n,
                                                double factor) noexcept {
  const __m256d f = _mm256_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(values + i, _mm256_mul_pd(_mm256_loadu_pd(values + i), f));
  }
  for (; i < n; ++i) values[i] *= factor;
}

__attribute__((target("avx2"))) void avx2_divide(double* values, std::size_t n,
                                                 double divisor) noexcept {
  const __m256d d = _mm256_set1_pd(divisor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(values + i, _mm256_div_pd(_mm256_loadu_pd(values + i), d));
  }
  for (; i < n; ++i) values[i] /= divisor;
}

__attribute__((target("avx2"))) void avx2_clamp_min(double* values, std::size_t n,
                                                    double floor_value) noexcept {
  const __m256d f = _mm256_set1_pd(floor_value);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    // Blend on v < floor: NaN compares false and passes through, like the
    // scalar branch.
    const __m256d lt = _mm256_cmp_pd(v, f, _CMP_LT_OQ);
    _mm256_storeu_pd(values + i, _mm256_blendv_pd(v, f, lt));
  }
  for (; i < n; ++i) {
    if (values[i] < floor_value) values[i] = floor_value;
  }
}

__attribute__((target("avx2"))) void avx2_add_assign(double* dst, const double* src,
                                                     std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_add_pd(_mm256_loadu_pd(dst + i), _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

__attribute__((target("avx2"))) MinMax avx2_minmax(const double* values,
                                                   std::size_t n) noexcept {
  // min/max are order-insensitive, so lanes need no interleave discipline.
  // MINPD/MAXPD return the SECOND operand when either is NaN, so keeping the
  // accumulator second makes NaN inputs drop out.
  __m256d mn = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d mx = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    mn = _mm256_min_pd(v, mn);
    mx = _mm256_max_pd(v, mx);
  }
  alignas(32) double mins[4];
  alignas(32) double maxs[4];
  _mm256_store_pd(mins, mn);
  _mm256_store_pd(maxs, mx);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int k = 0; k < 4; ++k) {
    if (mins[k] < lo) lo = mins[k];
    if (maxs[k] > hi) hi = maxs[k];
  }
  for (; i < n; ++i) {
    const double v = values[i];
    if (std::isnan(v)) continue;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  if (lo == std::numeric_limits<double>::infinity() &&
      hi == -std::numeric_limits<double>::infinity()) {
    return {std::nan(""), std::nan("")};
  }
  return {lo, hi};
}

__attribute__((target("avx2"))) double avx2_sum_interleaved(const double* values,
                                                            std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  const std::size_t m = n & ~std::size_t{3};
  for (std::size_t i = 0; i < m; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(values + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  return fold_lanes_and_tail(lanes[0], lanes[1], lanes[2], lanes[3], values + m, n - m);
}

__attribute__((target("avx2"))) double avx2_l1_prob_diff(
    const double* a, const double* b, std::size_t n, double a_total,
    double b_total) noexcept {
  const __m256d at = _mm256_set1_pd(a_total);
  const __m256d bt = _mm256_set1_pd(b_total);
  const __m256d abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc = _mm256_setzero_pd();
  const std::size_t m = n & ~std::size_t{3};
  for (std::size_t i = 0; i < m; i += 4) {
    const __m256d pa = _mm256_div_pd(_mm256_loadu_pd(a + i), at);
    const __m256d pb = _mm256_div_pd(_mm256_loadu_pd(b + i), bt);
    acc = _mm256_add_pd(acc, _mm256_and_pd(_mm256_sub_pd(pa, pb), abs_mask));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (std::size_t i = m; i < n; ++i) {
    sum += std::fabs(a[i] / a_total - b[i] / b_total);
  }
  return sum;
}

__attribute__((target("avx2"))) double avx2_bhattacharyya(
    const double* a, const double* b, std::size_t n, double a_total,
    double b_total) noexcept {
  const __m256d at = _mm256_set1_pd(a_total);
  const __m256d bt = _mm256_set1_pd(b_total);
  __m256d acc = _mm256_setzero_pd();
  const std::size_t m = n & ~std::size_t{3};
  for (std::size_t i = 0; i < m; i += 4) {
    const __m256d pa = _mm256_div_pd(_mm256_loadu_pd(a + i), at);
    const __m256d pb = _mm256_div_pd(_mm256_loadu_pd(b + i), bt);
    acc = _mm256_add_pd(acc, _mm256_sqrt_pd(_mm256_mul_pd(pa, pb)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double sum = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (std::size_t i = m; i < n; ++i) {
    sum += std::sqrt((a[i] / a_total) * (b[i] / b_total));
  }
  return sum;
}

#endif  // AUTOSENS_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch plumbing.

bool env_force_scalar() noexcept {
  const char* value = std::getenv("AUTOSENS_FORCE_SCALAR");
  if (value == nullptr) return false;
  const std::string_view v(value);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

/// Test override: -1 = none, otherwise a Level value.
std::atomic<int> g_level_override{-1};

void publish(Level level) {
  obs::registry()
      .gauge("autosens_simd_level",
             "Active SIMD dispatch level (0 = scalar, 2 = AVX2)")
      .set(static_cast<double>(static_cast<int>(level)));
  obs::log(obs::LogLevel::kDebug, "simd.dispatch",
           {{"level", to_string(level)}, {"forced_scalar", env_force_scalar()}});
}

/// Bin counts must fit an int32 lane for the vector conversion.
constexpr std::size_t kMaxVectorBins = (std::size_t{1} << 31) - 1;

inline bool use_avx2(std::size_t bins) noexcept {
#ifdef AUTOSENS_SIMD_X86
  return active_level() == Level::kAvx2 && bins - 1 < kMaxVectorBins;
#else
  (void)bins;
  return false;
#endif
}

inline bool use_avx2() noexcept { return use_avx2(1); }

}  // namespace

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
  }
  return "scalar";
}

Level detected_level() noexcept {
#ifdef AUTOSENS_SIMD_X86
  static const bool avx2 = __builtin_cpu_supports("avx2");
  return avx2 ? Level::kAvx2 : Level::kScalar;
#else
  return Level::kScalar;
#endif
}

Level active_level() noexcept {
  const int forced = g_level_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  static const Level chosen = [] {
    const Level level = env_force_scalar() ? Level::kScalar : detected_level();
    publish(level);
    return level;
  }();
  return chosen;
}

void set_level_override(std::optional<Level> level) noexcept {
  g_level_override.store(level ? static_cast<int>(*level) : -1,
                         std::memory_order_relaxed);
}

void publish_level() { publish(active_level()); }

void bin_indices(std::span<const double> values, double lo, double width,
                 std::size_t counts_size, std::span<std::uint32_t> out) noexcept {
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2(counts_size)) {
    avx2_bin_indices(values.data(), values.size(), lo, width, counts_size, out.data());
    return;
  }
#endif
  scalar_bin_indices(values.data(), values.size(), lo, width, counts_size, out.data());
}

void histogram_fill(std::span<const double> values, double lo, double width,
                    std::span<double> counts) noexcept {
  const std::size_t bins = counts.size();
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2(bins)) {
    if (values.size() >= 8 * bins) {
      // Per-lane partials amortize only when the fill dwarfs the merge.
      static thread_local std::vector<double> scratch;
      scratch.assign(8 * bins, 0.0);
      avx2_fill_lanes(values.data(), values.size(), lo, width, bins, scratch.data());
      // Integer-valued lane counts merge exactly in any order.
      for (std::size_t b = 0; b < bins; ++b) {
        double merged = scratch[b];
        for (std::size_t lane = 1; lane < 8; ++lane) merged += scratch[lane * bins + b];
        counts[b] += merged;
      }
    } else {
      histogram_fill_const(values, 1.0, lo, width, counts);
    }
    return;
  }
#endif
  scalar_histogram_fill(values.data(), values.size(), lo, width, bins, counts.data());
}

void histogram_fill_const(std::span<const double> values, double weight, double lo,
                          double width, std::span<double> counts) noexcept {
  const std::size_t bins = counts.size();
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2(bins)) {
    std::uint32_t idx[kIndexBlock];
    for (std::size_t offset = 0; offset < values.size(); offset += kIndexBlock) {
      const std::size_t m = std::min(kIndexBlock, values.size() - offset);
      avx2_bin_indices(values.data() + offset, m, lo, width, bins, idx);
      // Element-order adds: repeated addition of a non-integer weight is
      // order-sensitive, and this order matches the scalar loop.
      for (std::size_t i = 0; i < m; ++i) counts[idx[i]] += weight;
    }
    return;
  }
#endif
  scalar_histogram_fill_const(values.data(), values.size(), weight, lo, width, bins,
                              counts.data());
}

double histogram_fill_weighted(std::span<const double> values,
                               std::span<const double> weights, double lo, double width,
                               std::span<double> counts) noexcept {
  const std::size_t bins = counts.size();
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2(bins)) {
    return avx2_fill_weighted(values.data(), weights.data(), values.size(), lo, width,
                              bins, counts.data());
  }
#endif
  scalar_histogram_fill_weighted(values.data(), weights.data(), values.size(), lo,
                                 width, bins, counts.data());
  // Same reduction as the fused vector path: sum_interleaved is bit-identical
  // across dispatch levels, so the returned total matches exactly.
  return sum_interleaved(weights);
}

void fir_convolve_valid(std::span<const double> signal, std::span<const double> kernel,
                        std::span<double> out) noexcept {
  const std::size_t n_out = signal.size() - kernel.size() + 1;
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2()) {
    avx2_fir_convolve(signal.data(), n_out, kernel.data(), kernel.size(), out.data());
    return;
  }
#endif
  scalar_fir_convolve(signal.data(), n_out, kernel.data(), kernel.size(), out.data());
}

void scale(std::span<double> values, double factor) noexcept {
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2()) {
    avx2_scale(values.data(), values.size(), factor);
    return;
  }
#endif
  scalar_scale(values.data(), values.size(), factor);
}

void divide(std::span<double> values, double divisor) noexcept {
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2()) {
    avx2_divide(values.data(), values.size(), divisor);
    return;
  }
#endif
  scalar_divide(values.data(), values.size(), divisor);
}

void clamp_min(std::span<double> values, double floor_value) noexcept {
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2()) {
    avx2_clamp_min(values.data(), values.size(), floor_value);
    return;
  }
#endif
  scalar_clamp_min(values.data(), values.size(), floor_value);
}

void add_assign(std::span<double> dst, std::span<const double> src) noexcept {
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2()) {
    avx2_add_assign(dst.data(), src.data(), dst.size());
    return;
  }
#endif
  scalar_add_assign(dst.data(), src.data(), dst.size());
}

MinMax minmax(std::span<const double> values) noexcept {
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2()) return avx2_minmax(values.data(), values.size());
#endif
  return scalar_minmax(values.data(), values.size());
}

double sum_interleaved(std::span<const double> values) noexcept {
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2()) return avx2_sum_interleaved(values.data(), values.size());
#endif
  return scalar_sum_interleaved(values.data(), values.size());
}

double l1_prob_diff(std::span<const double> a, std::span<const double> b,
                    double a_total, double b_total) noexcept {
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2()) return avx2_l1_prob_diff(a.data(), b.data(), a.size(), a_total, b_total);
#endif
  return scalar_l1_prob_diff(a.data(), b.data(), a.size(), a_total, b_total);
}

double bhattacharyya(std::span<const double> a, std::span<const double> b,
                     double a_total, double b_total) noexcept {
#ifdef AUTOSENS_SIMD_X86
  if (use_avx2()) return avx2_bhattacharyya(a.data(), b.data(), a.size(), a_total, b_total);
#endif
  return scalar_bhattacharyya(a.data(), b.data(), a.size(), a_total, b_total);
}

}  // namespace autosens::core::simd
