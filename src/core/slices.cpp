#include "core/slices.h"

#include <functional>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"

namespace autosens::core {
namespace {

using telemetry::ActionType;
using telemetry::Dataset;
using telemetry::UserClass;

using SliceTask = std::function<std::optional<NamedPreference>()>;

/// Run the slice tasks (possibly in parallel — each slice filters and
/// analyzes independently) and keep the successful ones in task order.
/// Slices that are empty or cannot support a curve come back as nullopt.
std::vector<NamedPreference> collect_slices(const std::vector<SliceTask>& tasks,
                                            std::size_t threads) {
  std::vector<std::optional<NamedPreference>> results(tasks.size());
  parallel_for_items(tasks.size(), threads,
                     [&](std::size_t i) { results[i] = tasks[i](); });
  std::vector<NamedPreference> out;
  out.reserve(tasks.size());
  for (auto& result : results) {
    if (result) out.push_back(std::move(*result));
  }
  return out;
}

/// Run `analyze` on a slice, skipping slices that cannot support a curve.
std::optional<NamedPreference> try_analyze(std::string name, const Dataset& slice,
                                           const AutoSensOptions& options) {
  if (slice.empty()) return std::nullopt;
  try {
    auto result = analyze(slice, options);
    return NamedPreference{std::move(name), std::move(result), slice.size()};
  } catch (const std::invalid_argument&) {
    // Not enough support for this slice; callers see it as absent.
    return std::nullopt;
  }
}

}  // namespace

std::vector<NamedPreference> preference_by_action(const Dataset& dataset,
                                                  const AutoSensOptions& options,
                                                  std::optional<UserClass> user_class) {
  std::vector<SliceTask> tasks;
  for (const auto type : {ActionType::kSelectMail, ActionType::kSwitchFolder,
                          ActionType::kSearch, ActionType::kComposeSend}) {
    tasks.push_back([&, type, user_class] {
      auto predicate = telemetry::by_action(type);
      if (user_class) {
        predicate = telemetry::all_of({predicate, telemetry::by_user_class(*user_class)});
      }
      return try_analyze(std::string(telemetry::to_string(type)),
                         dataset.filtered(predicate), options);
    });
  }
  return collect_slices(tasks, options.threads);
}

std::vector<NamedPreference> preference_by_user_class(const Dataset& dataset,
                                                      const AutoSensOptions& options,
                                                      ActionType action) {
  std::vector<SliceTask> tasks;
  for (const auto user_class : {UserClass::kBusiness, UserClass::kConsumer}) {
    tasks.push_back([&, user_class] {
      const auto slice = dataset.filtered(telemetry::all_of(
          {telemetry::by_action(action), telemetry::by_user_class(user_class)}));
      return try_analyze(std::string(telemetry::to_string(user_class)), slice, options);
    });
  }
  return collect_slices(tasks, options.threads);
}

std::vector<NamedPreference> preference_by_quartile(const Dataset& dataset,
                                                    const Dataset& quartile_basis,
                                                    const AutoSensOptions& options,
                                                    ActionType action,
                                                    std::optional<UserClass> user_class) {
  // The quartile table is built once, before the parallel region; tasks only
  // read it.
  const telemetry::UserQuartiles quartiles(quartile_basis);
  std::vector<SliceTask> tasks;
  for (int q = 0; q < telemetry::UserQuartiles::kQuartileCount; ++q) {
    tasks.push_back([&, q] {
      auto predicate =
          telemetry::all_of({telemetry::by_action(action), quartiles.in_quartile(q)});
      if (user_class) {
        predicate = telemetry::all_of({predicate, telemetry::by_user_class(*user_class)});
      }
      // Built by append (not operator+) to dodge a GCC 12 -Wrestrict false
      // positive at -O3 that breaks Release -Werror builds.
      std::string name("Q");
      name += std::to_string(q + 1);
      return try_analyze(std::move(name), dataset.filtered(predicate), options);
    });
  }
  return collect_slices(tasks, options.threads);
}

std::vector<NamedPreference> preference_by_period(const Dataset& dataset,
                                                  const AutoSensOptions& options,
                                                  ActionType action,
                                                  UserClass user_class) {
  std::vector<SliceTask> tasks;
  for (int p = 0; p < telemetry::kDayPeriodCount; ++p) {
    const auto period = static_cast<telemetry::DayPeriod>(p);
    tasks.push_back([&, period]() -> std::optional<NamedPreference> {
      const auto slice = dataset.filtered(telemetry::all_of(
          {telemetry::by_action(action), telemetry::by_user_class(user_class),
           telemetry::by_period(period)}));
      if (slice.empty()) return std::nullopt;
      const auto windows = period_windows(slice, period);
      try {
        auto result = analyze_over_windows(slice, windows, options);
        return NamedPreference{std::string(telemetry::to_string(period)),
                               std::move(result.preference), slice.size()};
      } catch (const std::invalid_argument&) {
        // Slice too thin; skip.
        return std::nullopt;
      }
    });
  }
  return collect_slices(tasks, options.threads);
}

std::vector<NamedPreference> preference_by_month(const Dataset& dataset,
                                                 const AutoSensOptions& options,
                                                 ActionType action) {
  if (dataset.empty()) return {};
  const std::int64_t first_month = telemetry::month_index(dataset.begin_time());
  const std::int64_t last_month = telemetry::month_index(dataset.end_time() - 1);
  std::vector<SliceTask> tasks;
  for (std::int64_t m = first_month; m <= last_month; ++m) {
    tasks.push_back([&, m] {
      const auto slice = dataset.filtered(
          telemetry::all_of({telemetry::by_action(action), telemetry::by_month(m)}));
      std::string name("Month");
      name += std::to_string(m + 1);
      return try_analyze(std::move(name), slice, options);
    });
  }
  return collect_slices(tasks, options.threads);
}

}  // namespace autosens::core
