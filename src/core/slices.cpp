#include "core/slices.h"

#include <stdexcept>
#include <utility>

namespace autosens::core {
namespace {

using telemetry::ActionType;
using telemetry::Dataset;
using telemetry::UserClass;

/// Run `analyze` on a slice, skipping slices that cannot support a curve.
void try_add(std::vector<NamedPreference>& out, std::string name, const Dataset& slice,
             const AutoSensOptions& options) {
  if (slice.empty()) return;
  try {
    auto result = analyze(slice, options);
    out.push_back({std::move(name), std::move(result), slice.size()});
  } catch (const std::invalid_argument&) {
    // Not enough support for this slice; callers see it as absent.
  }
}

}  // namespace

std::vector<NamedPreference> preference_by_action(const Dataset& dataset,
                                                  const AutoSensOptions& options,
                                                  std::optional<UserClass> user_class) {
  std::vector<NamedPreference> out;
  for (const auto type : {ActionType::kSelectMail, ActionType::kSwitchFolder,
                          ActionType::kSearch, ActionType::kComposeSend}) {
    auto predicate = telemetry::by_action(type);
    if (user_class) {
      predicate = telemetry::all_of({predicate, telemetry::by_user_class(*user_class)});
    }
    try_add(out, std::string(telemetry::to_string(type)), dataset.filtered(predicate),
            options);
  }
  return out;
}

std::vector<NamedPreference> preference_by_user_class(const Dataset& dataset,
                                                      const AutoSensOptions& options,
                                                      ActionType action) {
  std::vector<NamedPreference> out;
  for (const auto user_class : {UserClass::kBusiness, UserClass::kConsumer}) {
    const auto slice = dataset.filtered(telemetry::all_of(
        {telemetry::by_action(action), telemetry::by_user_class(user_class)}));
    try_add(out, std::string(telemetry::to_string(user_class)), slice, options);
  }
  return out;
}

std::vector<NamedPreference> preference_by_quartile(const Dataset& dataset,
                                                    const Dataset& quartile_basis,
                                                    const AutoSensOptions& options,
                                                    ActionType action,
                                                    std::optional<UserClass> user_class) {
  const telemetry::UserQuartiles quartiles(quartile_basis);
  std::vector<NamedPreference> out;
  for (int q = 0; q < telemetry::UserQuartiles::kQuartileCount; ++q) {
    auto predicate =
        telemetry::all_of({telemetry::by_action(action), quartiles.in_quartile(q)});
    if (user_class) {
      predicate = telemetry::all_of({predicate, telemetry::by_user_class(*user_class)});
    }
    try_add(out, "Q" + std::to_string(q + 1), dataset.filtered(predicate), options);
  }
  return out;
}

std::vector<NamedPreference> preference_by_period(const Dataset& dataset,
                                                  const AutoSensOptions& options,
                                                  ActionType action,
                                                  UserClass user_class) {
  std::vector<NamedPreference> out;
  for (int p = 0; p < telemetry::kDayPeriodCount; ++p) {
    const auto period = static_cast<telemetry::DayPeriod>(p);
    const auto slice = dataset.filtered(telemetry::all_of(
        {telemetry::by_action(action), telemetry::by_user_class(user_class),
         telemetry::by_period(period)}));
    if (slice.empty()) continue;
    const auto windows = period_windows(slice, period);
    try {
      auto result = analyze_over_windows(slice, windows, options);
      out.push_back({std::string(telemetry::to_string(period)),
                     std::move(result.preference), slice.size()});
    } catch (const std::invalid_argument&) {
      // Slice too thin; skip.
    }
  }
  return out;
}

std::vector<NamedPreference> preference_by_month(const Dataset& dataset,
                                                 const AutoSensOptions& options,
                                                 ActionType action) {
  std::vector<NamedPreference> out;
  if (dataset.empty()) return out;
  const std::int64_t first_month = telemetry::month_index(dataset.begin_time());
  const std::int64_t last_month = telemetry::month_index(dataset.end_time() - 1);
  for (std::int64_t m = first_month; m <= last_month; ++m) {
    const auto slice = dataset.filtered(
        telemetry::all_of({telemetry::by_action(action), telemetry::by_month(m)}));
    try_add(out, "Month" + std::to_string(m + 1), slice, options);
  }
  return out;
}

}  // namespace autosens::core
