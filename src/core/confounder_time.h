// Mitigation of the time confounder (§2.4.1). User activity and latency are
// both functions of time-of-day; pooling hours naively can even invert the
// apparent preference (Table 1 of the paper). AutoSens therefore estimates a
// per-time-of-day-slot activity factor α and rescales each slot's action
// counts by 1/α before pooling.
//
// A "slot" is a time-of-day class (e.g. the 10:00–11:00 hour), pooled across
// all days of the data — α models *how active users are at that time of
// day*, not the traffic of one specific hour. Pooling across days is what
// separates the diurnal activity pattern from the transient latency
// fluctuations that carry the preference signal: a specific slow afternoon
// still contributes its (latency, action-count) evidence, it is only the
// systematic time-of-day activity level that is divided out.
//
// For a slot T and latency bin L, the temporal action rate is c_T(L)/f_T(L),
// where c is the action count and f the fraction of slot time at that
// latency (from the slot's unbiased distribution). α_{T,ref}(L) is the ratio
// of that rate to the reference slot's; α_T averages it over latency bins,
// and multiple reference slots are used in turn and averaged.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/unbiased.h"
#include "stats/histogram.h"
#include "telemetry/clock.h"
#include "telemetry/dataset.h"

namespace autosens::core {

/// Per-slot (time-of-day class) diagnostics.
struct SlotStat {
  int slot = 0;                ///< Class index; start = slot * alpha_slot_ms.
  std::size_t records = 0;
  double total_time_ms = 0.0;  ///< Time the data covers in this class.
  double alpha = 1.0;          ///< Estimated activity factor.
  bool alpha_from_fallback = false;  ///< True if the per-bin estimate failed.
};

class TimeNormalizer {
 public:
  /// Estimates α for every time-of-day slot. The dataset must be sorted and
  /// non-empty, and options.alpha_slot_ms must divide a day evenly; throws
  /// std::invalid_argument otherwise.
  TimeNormalizer(const telemetry::Dataset& dataset, const AutoSensOptions& options);

  /// Column-view variant for bootstrap views and other sorted-by-construction
  /// columns. Precondition (not checked): columns.times sorted ascending.
  TimeNormalizer(telemetry::SampleColumns columns, const AutoSensOptions& options);

  /// One entry per time-of-day class (even classes without records).
  const std::vector<SlotStat>& slots() const noexcept { return slots_; }

  /// α of the time-of-day class containing `time_ms`.
  double alpha_at(std::int64_t time_ms) const noexcept;

  /// The α-normalized biased histogram: each record weighted 1/α of its
  /// slot, in the analysis bin width (options.bin_width_ms).
  stats::Histogram normalized_biased(const telemetry::Dataset& dataset) const;

  /// Column-view variant of normalized_biased (same math, same output).
  stats::Histogram normalized_biased(telemetry::SampleColumns columns) const;

 private:
  AutoSensOptions options_;
  std::vector<SlotStat> slots_;
};

/// α per 6-hour day period as a function of latency (paper Fig 8), with the
/// 8am–2pm period as reference. Also reports the per-period average α used
/// for normalization, supporting the paper's finding that α is flat across
/// latency bins.
struct PeriodAlpha {
  telemetry::DayPeriod period = telemetry::DayPeriod::kMorning;
  std::vector<double> latency_ms;   ///< α-bin centers.
  std::vector<double> alpha;        ///< α per bin (0 where invalid).
  std::vector<char> valid;
  double mean_alpha = 0.0;          ///< Average over valid bins.
  std::size_t records = 0;
};

std::array<PeriodAlpha, telemetry::kDayPeriodCount> alpha_by_period(
    const telemetry::Dataset& dataset, const AutoSensOptions& options,
    telemetry::DayPeriod reference = telemetry::DayPeriod::kMorning);

/// The daily windows of one 6-hour period across the data range (used for
/// period slicing and the per-period unbiased distributions).
std::vector<TimeWindow> period_windows(const telemetry::Dataset& dataset,
                                       telemetry::DayPeriod period);

/// The paper's Table 1 worked example: two slots ("day", "night") × two
/// latency bins ("low", "high"). Inputs are the action counts and the
/// fraction of slot time at each latency; outputs reproduce every number in
/// the table.
struct TwoSlotExample {
  double alpha_low = 0.0;        ///< α_{night,low}   (paper: 0.108).
  double alpha_high = 0.0;       ///< α_{night,high}  (paper: 0.100).
  double alpha = 0.0;            ///< α_night         (paper: 0.104).
  double normalized_low = 0.0;   ///< Night low count after 1/α (paper: 250).
  double normalized_high = 0.0;  ///< Night high count after 1/α (paper: 38).
  double activity_low = 0.0;     ///< Pooled rate at low latency (paper: 3.09).
  double activity_high = 0.0;    ///< Pooled rate at high latency (paper: 1.97).
  double naive_low = 0.0;        ///< Un-normalized pooled rate (paper: 1.04).
  double naive_high = 0.0;       ///< Un-normalized pooled rate (paper: 1.6).
};

TwoSlotExample normalize_two_slot_example(double day_count_low, double day_count_high,
                                          double day_frac_low, double day_frac_high,
                                          double night_count_low, double night_count_high,
                                          double night_frac_low, double night_frac_high);

}  // namespace autosens::core
