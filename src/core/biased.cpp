#include "core/biased.h"

#include "core/parallel.h"
#include "stats/scratch.h"

namespace autosens::core {

stats::Histogram make_latency_histogram(const AutoSensOptions& options) {
  return stats::Histogram::covering(0.0, options.max_latency_ms, options.bin_width_ms);
}

stats::Histogram make_latency_histogram_pooled(const AutoSensOptions& options) {
  return stats::Histogram::covering(0.0, options.max_latency_ms, options.bin_width_ms,
                                    stats::ScratchPool<double>::take());
}

void merge_and_recycle(stats::Histogram& accumulator, stats::Histogram&& partial) {
  accumulator.merge(partial);
  stats::ScratchPool<double>::give(partial.release_counts());
}

stats::Histogram biased_histogram(std::span<const double> latencies,
                                  const AutoSensOptions& options) {
  // Unit weights sum exactly, so the chunked fill is bit-identical to a
  // serial pass for any thread count.
  return parallel_map_reduce<stats::Histogram>(
      latencies.size(), options.threads, kRecordChunk,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        auto histogram = make_latency_histogram_pooled(options);
        histogram.add_all(latencies.subspan(begin, end - begin));
        return histogram;
      },
      merge_and_recycle);
}

stats::Histogram biased_histogram(const telemetry::Dataset& dataset,
                                  const AutoSensOptions& options) {
  return biased_histogram(dataset.latencies(), options);
}

}  // namespace autosens::core
