#include "core/biased.h"

namespace autosens::core {

stats::Histogram make_latency_histogram(const AutoSensOptions& options) {
  return stats::Histogram::covering(0.0, options.max_latency_ms, options.bin_width_ms);
}

stats::Histogram biased_histogram(std::span<const double> latencies,
                                  const AutoSensOptions& options) {
  auto histogram = make_latency_histogram(options);
  histogram.add_all(latencies);
  return histogram;
}

stats::Histogram biased_histogram(const telemetry::Dataset& dataset,
                                  const AutoSensOptions& options) {
  auto histogram = make_latency_histogram(options);
  for (const auto& record : dataset.records()) histogram.add(record.latency_ms);
  return histogram;
}

}  // namespace autosens::core
