#include "core/biased.h"

#include "core/parallel.h"

namespace autosens::core {

stats::Histogram make_latency_histogram(const AutoSensOptions& options) {
  return stats::Histogram::covering(0.0, options.max_latency_ms, options.bin_width_ms);
}

stats::Histogram biased_histogram(std::span<const double> latencies,
                                  const AutoSensOptions& options) {
  auto histogram = make_latency_histogram(options);
  histogram.add_all(latencies);
  return histogram;
}

stats::Histogram biased_histogram(const telemetry::Dataset& dataset,
                                  const AutoSensOptions& options) {
  const auto records = dataset.records();
  return parallel_map_reduce<stats::Histogram>(
      records.size(), options.threads, kRecordChunk,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        auto histogram = make_latency_histogram(options);
        for (std::size_t i = begin; i < end; ++i) histogram.add(records[i].latency_ms);
        return histogram;
      },
      [](stats::Histogram& accumulator, stats::Histogram&& partial) {
        accumulator.merge(partial);
      });
}

}  // namespace autosens::core
