// Precondition checks for natural experiments (§2.1): users can only act on
// latency if it is predictable, i.e. temporally local. Two prongs:
//   1. the von Neumann MSD/MAD ratio of the latency series of user actions,
//      compared against a randomly shuffled series (≈ its value under
//      exchangeability) and a fully sorted series (≈ 0) — paper Fig 1;
//   2. the correlation between per-window sample density and per-window mean
//      latency — negative when low-latency periods cluster with high
//      activity — paper Fig 2.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.h"
#include "stats/timeseries.h"
#include "telemetry/clock.h"
#include "telemetry/dataset.h"

namespace autosens::core {

struct LocalityReport {
  double msd_mad_actual = 0.0;    ///< Ratio on the observed series.
  double msd_mad_shuffled = 0.0;  ///< Mean ratio over random shuffles.
  double msd_mad_sorted = 0.0;    ///< Ratio on the latency-sorted series.
  /// Pearson correlation of per-window action count vs mean latency,
  /// over windows with at least `min_window_samples` samples.
  double density_latency_correlation = 0.0;
  /// The same correlation after dividing each window's count and latency by
  /// its hour-of-day mean. The raw correlation superimposes two effects of
  /// opposite sign — the diurnal confounder (busy hours are slow AND active,
  /// pushing positive) and the preference effect (transient slow spells have
  /// fewer actions, pushing negative); detrending by hour-of-day isolates
  /// the second, which is the locality signal the paper's Fig 2 shows.
  double detrended_density_latency_correlation = 0.0;
  std::size_t samples = 0;
  std::size_t windows_used = 0;
};

struct LocalityOptions {
  std::int64_t window_ms = telemetry::kMillisPerMinute;  ///< Paper: 1 minute.
  std::size_t shuffles = 5;
  std::size_t min_window_samples = 1;
};

/// Analyze temporal locality of the latency series of a (sorted) dataset.
/// Throws std::invalid_argument on an empty dataset.
LocalityReport analyze_locality(const telemetry::Dataset& dataset,
                                const LocalityOptions& options, stats::Random& random);

/// The normalized activity/latency time series of Fig 2: per-window action
/// counts and mean latencies, both min-max normalized to [0, 1].
struct ActivityLatencySeries {
  std::vector<std::int64_t> window_begin_ms;
  std::vector<double> activity;  ///< Normalized action rate.
  std::vector<double> latency;   ///< Normalized mean latency (0 = window empty).
};

ActivityLatencySeries activity_latency_series(const telemetry::Dataset& dataset,
                                              std::int64_t window_ms);

}  // namespace autosens::core
