#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>

namespace autosens::core {
namespace {

/// Cap on pool workers: far above any sane `threads` request, present only
/// so a typo like --threads 1e9 cannot fork-bomb the process.
constexpr std::size_t kMaxWorkers = 64;

thread_local int region_depth = 0;

struct RegionGuard {
  RegionGuard() noexcept { ++region_depth; }
  ~RegionGuard() noexcept { --region_depth; }
  RegionGuard(const RegionGuard&) = delete;
};

}  // namespace

std::size_t resolve_threads(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ChunkGrid make_chunk_grid(std::size_t count, std::size_t min_per_chunk,
                          std::size_t max_chunks) noexcept {
  ChunkGrid grid{.count = count, .chunks = 1};
  if (min_per_chunk == 0) min_per_chunk = 1;
  grid.chunks = std::clamp<std::size_t>(count / min_per_chunk, 1, std::max<std::size_t>(max_chunks, 1));
  return grid;
}

struct ThreadPool::Job {
  std::size_t chunks = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t tickets = 0;  ///< Workers still allowed to join (under mutex_).
  std::size_t active = 0;   ///< Workers currently processing (under mutex_).
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::in_parallel_region() noexcept { return region_depth > 0; }

std::size_t ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure_workers_locked(std::size_t target) {
  target = std::min(target, kMaxWorkers);
  while (workers_.size() < target) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::run(std::size_t chunks, std::size_t concurrency,
                     const std::function<void(std::size_t)>& body) {
  if (chunks == 0) return;
  if (chunks == 1 || concurrency <= 1 || in_parallel_region()) {
    // Serial / nested path: inline, in chunk order.
    for (std::size_t c = 0; c < chunks; ++c) body(c);
    return;
  }

  // One region at a time; a second top-level caller blocks here until the
  // first drains (its workers never depend on us, so this cannot deadlock).
  std::lock_guard<std::mutex> run_lock(run_mutex_);

  Job job;
  job.chunks = chunks;
  job.body = &body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ensure_workers_locked(concurrency - 1);
    job.tickets = std::min(concurrency - 1, workers_.size());
    job_ = &job;
  }
  work_cv_.notify_all();

  {
    RegionGuard guard;
    process(job);
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // All chunks are claimed once the caller's process() returns, so no new
    // worker can join; wait for the ones mid-chunk.
    done_cv_.wait(lock, [&] { return job.active == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::process(Job& job) {
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) return;
    if (job.failed.load(std::memory_order_acquire)) continue;  // drain fast
    try {
      (*job.body)(c);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (c < job.error_chunk) {
        job.error_chunk = c;
        job.error = std::current_exception();
      }
      job.failed.store(true, std::memory_order_release);
    }
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && job_->tickets > 0 &&
                       job_->next.load(std::memory_order_relaxed) < job_->chunks);
    });
    if (stop_) return;
    Job& job = *job_;
    --job.tickets;
    ++job.active;
    lock.unlock();
    {
      RegionGuard guard;
      process(job);
    }
    lock.lock();
    --job.active;
    if (job.active == 0) done_cv_.notify_all();
  }
}

void parallel_for(std::size_t count, std::size_t threads, std::size_t min_per_chunk,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const ChunkGrid grid = make_chunk_grid(count, min_per_chunk);
  const std::size_t workers = resolve_threads(threads);
  ThreadPool::shared().run(grid.chunks, workers, [&](std::size_t c) {
    body(grid.begin(c), grid.end(c), c);
  });
}

void parallel_for_items(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& body) {
  parallel_for(count, threads, 1,
               [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
                 for (std::size_t i = begin; i < end; ++i) body(i);
               });
}

}  // namespace autosens::core
