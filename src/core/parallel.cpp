#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>

#include "obs/metrics.h"

namespace autosens::core {
namespace {

struct PoolMetrics {
  obs::Counter& chunks = obs::registry().counter(
      "autosens_pool_chunks_executed_total", "Chunks executed by the thread pool");
  obs::Counter& regions = obs::registry().counter(
      "autosens_pool_regions_total", "Parallel regions run (serial/nested included)");
  obs::Gauge& queue_depth = obs::registry().gauge(
      "autosens_pool_queue_depth", "Unclaimed chunks of the current parallel region");
  obs::Gauge& workers = obs::registry().gauge(
      "autosens_pool_workers", "Worker threads spawned by the shared pool");
  obs::Histogram& task_ms = obs::registry().histogram(
      "autosens_pool_task_latency_ms", "Per-chunk execution latency (milliseconds)",
      {0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 500});
};

PoolMetrics& pool_metrics() {
  static PoolMetrics handles;
  return handles;
}

/// Cap on pool workers: far above any sane `threads` request, present only
/// so a typo like --threads 1e9 cannot fork-bomb the process.
constexpr std::size_t kMaxWorkers = 64;

thread_local int region_depth = 0;

struct RegionGuard {
  RegionGuard() noexcept { ++region_depth; }
  ~RegionGuard() noexcept { --region_depth; }
  RegionGuard(const RegionGuard&) = delete;
};

}  // namespace

std::size_t resolve_threads(std::size_t threads) noexcept {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ChunkGrid make_chunk_grid(std::size_t count, std::size_t min_per_chunk,
                          std::size_t max_chunks) noexcept {
  ChunkGrid grid{.count = count, .chunks = 1};
  if (min_per_chunk == 0) min_per_chunk = 1;
  grid.chunks = std::clamp<std::size_t>(count / min_per_chunk, 1, std::max<std::size_t>(max_chunks, 1));
  return grid;
}

struct ThreadPool::Job {
  std::size_t chunks = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t tickets = 0;  ///< Workers still allowed to join (under mutex_).
  std::size_t active = 0;   ///< Workers currently processing (under mutex_).
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
};

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::in_parallel_region() noexcept { return region_depth > 0; }

std::size_t ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

void ThreadPool::ensure_workers_locked(std::size_t target) {
  target = std::min(target, kMaxWorkers);
  while (workers_.size() < target) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::run(std::size_t chunks, std::size_t concurrency,
                     const std::function<void(std::size_t)>& body) {
  if (chunks == 0) return;
  pool_metrics().regions.inc();
  if (chunks == 1 || concurrency <= 1 || in_parallel_region()) {
    // Serial / nested path: inline, in chunk order.
    for (std::size_t c = 0; c < chunks; ++c) body(c);
    pool_metrics().chunks.inc(chunks);
    return;
  }

  // One region at a time; a second top-level caller blocks here until the
  // first drains (its workers never depend on us, so this cannot deadlock).
  std::lock_guard<std::mutex> run_lock(run_mutex_);

  Job job;
  job.chunks = chunks;
  job.body = &body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ensure_workers_locked(concurrency - 1);
    job.tickets = std::min(concurrency - 1, workers_.size());
    job_ = &job;
    pool_metrics().workers.set(static_cast<double>(workers_.size()));
  }
  work_cv_.notify_all();

  {
    RegionGuard guard;
    process(job);
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // All chunks are claimed once the caller's process() returns, so no new
    // worker can join; wait for the ones mid-chunk.
    done_cv_.wait(lock, [&] { return job.active == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::process(Job& job) {
  // Instrumentation is sampled only while obs is enabled; the disabled cost
  // per chunk is one relaxed load (chunk bodies are >= ~8k elements).
  const bool instrument = obs::enabled();
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks) return;
    if (job.failed.load(std::memory_order_acquire)) continue;  // drain fast
    if (instrument) {
      pool_metrics().queue_depth.set(
          static_cast<double>(job.chunks - std::min(c + 1, job.chunks)));
      pool_metrics().chunks.inc();
    }
    const auto start = instrument ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
    try {
      (*job.body)(c);
      if (instrument) {
        pool_metrics().task_ms.observe(
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      start)
                .count());
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (c < job.error_chunk) {
        job.error_chunk = c;
        job.error = std::current_exception();
      }
      job.failed.store(true, std::memory_order_release);
    }
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && job_->tickets > 0 &&
                       job_->next.load(std::memory_order_relaxed) < job_->chunks);
    });
    if (stop_) return;
    Job& job = *job_;
    --job.tickets;
    ++job.active;
    lock.unlock();
    {
      RegionGuard guard;
      process(job);
    }
    lock.lock();
    --job.active;
    if (job.active == 0) done_cv_.notify_all();
  }
}

void parallel_for(std::size_t count, std::size_t threads, std::size_t min_per_chunk,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const ChunkGrid grid = make_chunk_grid(count, min_per_chunk);
  const std::size_t workers = resolve_threads(threads);
  ThreadPool::shared().run(grid.chunks, workers, [&](std::size_t c) {
    body(grid.begin(c), grid.end(c), c);
  });
}

void parallel_for_items(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& body) {
  parallel_for(count, threads, 1,
               [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
                 for (std::size_t i = begin; i < end; ++i) body(i);
               });
}

}  // namespace autosens::core
