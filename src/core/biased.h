// The biased latency distribution B (§2.2): simply the histogram of the
// latencies of actions users actually performed — it reflects whatever bias
// users exert by acting more when latency is low.
#pragma once

#include <span>

#include "core/options.h"
#include "stats/histogram.h"
#include "telemetry/dataset.h"

namespace autosens::core {

/// Geometry helper: the latency histogram implied by `options`.
stats::Histogram make_latency_histogram(const AutoSensOptions& options);

/// Same geometry over a buffer borrowed from the scratch pool — the cheap
/// way to build the per-chunk partials of a parallel fill.
stats::Histogram make_latency_histogram_pooled(const AutoSensOptions& options);

/// The canonical parallel_map_reduce reducer for histogram partials: merge
/// bin-wise, then hand the partial's buffer back to the scratch pool.
void merge_and_recycle(stats::Histogram& accumulator, stats::Histogram&& partial);

/// B from raw latencies (unit weight each).
stats::Histogram biased_histogram(std::span<const double> latencies,
                                  const AutoSensOptions& options);

/// B from a dataset.
stats::Histogram biased_histogram(const telemetry::Dataset& dataset,
                                  const AutoSensOptions& options);

}  // namespace autosens::core
