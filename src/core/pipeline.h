// The end-to-end AutoSens pipeline: dataset → (α-normalized) biased
// distribution + unbiased distribution → smoothed, normalized latency
// preference. This is the primary entry point of the library.
#pragma once

#include <vector>

#include "core/confounder_time.h"
#include "core/options.h"
#include "core/preference.h"
#include "core/unbiased.h"
#include "stats/histogram.h"
#include "telemetry/dataset.h"
#include "telemetry/dataset_view.h"

namespace autosens::core {

/// Everything one analysis produces; `preference` is the headline result.
struct AnalysisResult {
  PreferenceResult preference;
  stats::Histogram biased;    ///< α-normalized when enabled in options.
  stats::Histogram unbiased;
  std::vector<SlotStat> slots;  ///< Empty when normalization is disabled.
};

/// Run AutoSens on a sorted, scrubbed dataset whose observation window is
/// the dataset's own [begin, end) range. Throws std::invalid_argument on
/// empty input or an unsupported reference latency.
AnalysisResult analyze_detailed(const telemetry::Dataset& dataset,
                                const AutoSensOptions& options);

/// Convenience: just the preference curve.
PreferenceResult analyze(const telemetry::Dataset& dataset, const AutoSensOptions& options);

/// Run AutoSens on a bootstrap view (day_block_resample output) without
/// materializing a Dataset: the estimators stream the view's shifted
/// columns. Identical math — a view and its materialize()d dataset produce
/// byte-identical results.
AnalysisResult analyze_detailed(const telemetry::DatasetView& view,
                                const AutoSensOptions& options);
PreferenceResult analyze(const telemetry::DatasetView& view, const AutoSensOptions& options);

/// Run AutoSens on a dataset observed only during `windows` (sorted,
/// disjoint) — e.g. the daily 6-hour chunks of a time-of-day slice (§3.6).
/// The unbiased distribution is estimated within each window to avoid the
/// huge artificial Voronoi cells a gap would create.
AnalysisResult analyze_over_windows(const telemetry::Dataset& dataset,
                                    std::span<const TimeWindow> windows,
                                    const AutoSensOptions& options);

}  // namespace autosens::core
