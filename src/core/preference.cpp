#include "core/preference.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/simd.h"
#include "obs/trace.h"
#include "stats/savitzky_golay.h"

namespace autosens::core {

double PreferenceResult::at(double latency) const {
  if (!covers(latency)) {
    throw std::out_of_range("PreferenceResult::at: latency outside supported range");
  }
  // Bin centers are evenly spaced; interpolate between the two neighbors.
  const double step = latency_ms[1] - latency_ms[0];
  const double pos = (latency - latency_ms[support_begin]) / step;
  const auto lo = support_begin + static_cast<std::size_t>(std::max(0.0, pos));
  const auto hi = std::min(lo + 1, support_end - 1);
  const double frac = std::clamp(pos - std::floor(pos), 0.0, 1.0);
  return normalized[lo] * (1.0 - frac) + normalized[hi] * frac;
}

bool PreferenceResult::covers(double latency) const noexcept {
  if (support_end <= support_begin || latency_ms.size() < 2) return false;
  return latency >= latency_ms[support_begin] && latency <= latency_ms[support_end - 1];
}

PreferenceResult compute_preference(const stats::Histogram& biased,
                                    const stats::Histogram& unbiased,
                                    const AutoSensOptions& options) {
  const std::size_t bins = biased.size();
  if (unbiased.size() != bins || biased.bin_width() != unbiased.bin_width()) {
    throw std::invalid_argument("compute_preference: histogram geometry mismatch");
  }
  if (biased.total_weight() <= 0.0 || unbiased.total_weight() <= 0.0) {
    throw std::invalid_argument("compute_preference: empty histogram");
  }

  PreferenceResult result;
  result.reference_latency_ms = options.reference_latency_ms;
  result.biased_samples = static_cast<std::size_t>(biased.total_weight() + 0.5);
  result.latency_ms.resize(bins);
  result.raw_ratio.assign(bins, 0.0);
  result.valid.assign(bins, 0);

  // Bin-wise ratio of probability masses (bin widths cancel). The first and
  // last bins are clamp/overflow buckets and never count as supported.
  const double b_total = biased.total_weight();
  const double u_total = unbiased.total_weight();
  for (std::size_t i = 0; i < bins; ++i) {
    result.latency_ms[i] = biased.bin_center(i);
    if (i == 0 || i + 1 == bins) continue;
    const double b_mass = biased.count(i);
    const double u_mass = unbiased.count(i) / u_total;
    if (b_mass >= options.min_biased_count && u_mass >= options.min_unbiased_mass) {
      result.raw_ratio[i] = (b_mass / b_total) / u_mass;
      result.valid[i] = 1;
    }
  }

  // Supported range = [first valid, last valid]. Interior gaps (bins that
  // failed the support guards) are linearly interpolated so the smoother
  // sees a contiguous signal.
  const auto first_valid = std::find(result.valid.begin(), result.valid.end(), 1);
  if (first_valid == result.valid.end()) {
    throw std::invalid_argument("compute_preference: no supported bins");
  }
  result.support_begin = static_cast<std::size_t>(first_valid - result.valid.begin());
  result.support_end =
      bins - static_cast<std::size_t>(
                 std::find(result.valid.rbegin(), result.valid.rend(), 1) -
                 result.valid.rbegin());

  std::vector<double> signal(result.support_end - result.support_begin);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] = result.raw_ratio[result.support_begin + i];
  }
  std::size_t i = 0;
  while (i < signal.size()) {
    if (result.valid[result.support_begin + i]) {
      ++i;
      continue;
    }
    std::size_t gap_end = i;
    while (!result.valid[result.support_begin + gap_end]) ++gap_end;  // support_end-1 is valid
    const double left = signal[i - 1];  // i > 0: support_begin is valid
    const double right = signal[gap_end];
    for (std::size_t k = i; k < gap_end; ++k) {
      const double t = static_cast<double>(k - i + 1) / static_cast<double>(gap_end - i + 1);
      signal[k] = left + t * (right - left);
    }
    i = gap_end;
  }

  auto smoothed = [&] {
    obs::Span span("sg_smooth");
    span.attr("bins", static_cast<std::int64_t>(signal.size()));
    const stats::SavitzkyGolay smoother(options.smoothing);
    return smoother.smooth(signal);
  }();
  // Ratios are nonnegative; smoothing overshoot below zero is clamped.
  simd::clamp_min(smoothed, 0.0);

  obs::Span normalize_span("nlp_normalize");

  result.smoothed.assign(bins, 0.0);
  std::copy(smoothed.begin(), smoothed.end(), result.smoothed.begin() +
                                                  static_cast<std::ptrdiff_t>(result.support_begin));

  // Normalize at the reference latency (§2.3).
  const double lo_center = result.latency_ms[result.support_begin];
  const double hi_center = result.latency_ms[result.support_end - 1];
  if (options.reference_latency_ms < lo_center || options.reference_latency_ms > hi_center) {
    throw std::invalid_argument(
        "compute_preference: reference latency outside supported range");
  }
  const double step = biased.bin_width();
  const double pos = (options.reference_latency_ms - lo_center) / step;
  const auto ref_lo = static_cast<std::size_t>(pos);
  const double frac = pos - std::floor(pos);
  const double ref_value =
      smoothed[ref_lo] * (1.0 - frac) +
      smoothed[std::min(ref_lo + 1, smoothed.size() - 1)] * frac;
  if (!(ref_value > 0.0)) {
    throw std::invalid_argument("compute_preference: zero preference at reference latency");
  }

  result.normalized.assign(bins, 0.0);
  // Copy the supported span then divide in place (a true division, so the
  // rounding matches the scalar element-by-element loop).
  std::copy(smoothed.begin(), smoothed.end(),
            result.normalized.begin() + static_cast<std::ptrdiff_t>(result.support_begin));
  simd::divide(std::span<double>(result.normalized).subspan(result.support_begin,
                                                            smoothed.size()),
               ref_value);
  return result;
}

}  // namespace autosens::core
