#include "core/confounder_dow.h"

#include <stdexcept>

#include "core/pipeline.h"
#include "telemetry/clock.h"

namespace autosens::core {

DayClass day_class(std::int64_t time_ms) noexcept {
  const int dow = telemetry::day_of_week(time_ms);
  // Epoch day 0 (1970-01-01) is a Thursday → Saturday = 2, Sunday = 3.
  return (dow == 2 || dow == 3) ? DayClass::kWeekend : DayClass::kWeekday;
}

std::string_view to_string(DayClass c) noexcept {
  return c == DayClass::kWeekend ? "weekend" : "weekday";
}

std::vector<TimeWindow> day_class_windows(const telemetry::Dataset& dataset, DayClass c) {
  const std::int64_t begin = dataset.begin_time();
  const std::int64_t end = dataset.end_time();
  std::vector<TimeWindow> windows;
  for (std::int64_t day = telemetry::day_index(begin); day * telemetry::kMillisPerDay < end;
       ++day) {
    const std::int64_t day_begin = day * telemetry::kMillisPerDay;
    if (day_class(day_begin) != c) continue;
    TimeWindow w{.begin_ms = std::max(day_begin, begin),
                 .end_ms = std::min(day_begin + telemetry::kMillisPerDay, end)};
    if (w.end_ms > w.begin_ms) windows.push_back(w);
  }
  return windows;
}

DayClassActivity day_class_activity(const telemetry::Dataset& dataset,
                                    const AutoSensOptions& options) {
  if (dataset.empty()) throw std::invalid_argument("day_class_activity: empty dataset");
  const auto times = dataset.times();
  const auto latencies = dataset.latencies();

  struct ClassData {
    stats::Histogram counts;
    stats::Histogram fractions;
    double total_time = 0.0;
    std::size_t records = 0;
  };
  std::array<ClassData, kDayClassCount> data = {
      ClassData{stats::Histogram::covering(0.0, options.max_latency_ms,
                                           options.alpha_bin_width_ms),
                stats::Histogram::covering(0.0, options.max_latency_ms,
                                           options.alpha_bin_width_ms),
                0.0, 0},
      ClassData{stats::Histogram::covering(0.0, options.max_latency_ms,
                                           options.alpha_bin_width_ms),
                stats::Histogram::covering(0.0, options.max_latency_ms,
                                           options.alpha_bin_width_ms),
                0.0, 0}};

  for (int c = 0; c < kDayClassCount; ++c) {
    const auto windows = day_class_windows(dataset, static_cast<DayClass>(c));
    auto& cd = data[static_cast<std::size_t>(c)];
    cd.fractions = unbiased_histogram_over_windows_sorted(times, latencies, windows,
                                                          options.alpha_bin_width_ms,
                                                          options.max_latency_ms);
    for (const auto& w : windows) cd.total_time += static_cast<double>(w.length());
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    auto& cd = data[static_cast<std::size_t>(day_class(times[i]))];
    cd.counts.add(latencies[i]);
    ++cd.records;
  }

  const auto& weekday = data[0];
  const auto& weekend = data[1];
  DayClassActivity activity;
  activity.weekday_records = weekday.records;
  activity.weekend_records = weekend.records;

  const std::size_t bins = weekday.counts.size();
  activity.latency_ms.resize(bins);
  activity.beta_by_bin.assign(bins, 0.0);
  activity.valid.assign(bins, 0);
  const double wd_mass = weekday.fractions.total_weight();
  const double we_mass = weekend.fractions.total_weight();
  double sum = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < bins; ++i) {
    activity.latency_ms[i] = weekday.counts.bin_center(i);
    if (wd_mass <= 0.0 || we_mass <= 0.0 || weekday.total_time <= 0.0 ||
        weekend.total_time <= 0.0) {
      continue;
    }
    const double f_wd = weekday.fractions.count(i) / wd_mass;
    const double f_we = weekend.fractions.count(i) / we_mass;
    const double c_wd = weekday.counts.count(i);
    if (f_wd < 1e-3 || f_we < 1e-3 || c_wd < 10.0) continue;
    const double rate_wd = c_wd / (f_wd * weekday.total_time);
    const double rate_we = weekend.counts.count(i) / (f_we * weekend.total_time);
    activity.beta_by_bin[i] = rate_we / rate_wd;
    activity.valid[i] = 1;
    sum += activity.beta_by_bin[i];
    ++used;
  }
  activity.beta_weekend = used > 0 ? sum / static_cast<double>(used) : 1.0;
  return activity;
}

std::vector<DayClassPreference> preference_by_day_class(const telemetry::Dataset& dataset,
                                                        const AutoSensOptions& options) {
  std::vector<DayClassPreference> out;
  for (int c = 0; c < kDayClassCount; ++c) {
    const auto cls = static_cast<DayClass>(c);
    const auto slice = dataset.filtered(
        [cls](const telemetry::ActionRecord& r) { return day_class(r.time_ms) == cls; });
    if (slice.empty()) continue;
    const auto windows = day_class_windows(slice, cls);
    try {
      auto result = analyze_over_windows(slice, windows, options);
      out.push_back({cls, std::move(result.preference), slice.size()});
    } catch (const std::invalid_argument&) {
      // Slice too thin to support a curve; skip.
    }
  }
  return out;
}

}  // namespace autosens::core
