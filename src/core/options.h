// Configuration of the AutoSens analysis. Defaults follow the paper: 10 ms
// latency bins (§2.3), Savitzky–Golay smoothing with window 101 and degree 3
// (§2.3), a 300 ms reference latency (§3.2), and 1-hour α-normalization slots
// (§2.4.1) with multiple reference slots averaged.
#pragma once

#include <cstddef>
#include <cstdint>

#include "stats/savitzky_golay.h"
#include "telemetry/clock.h"

namespace autosens::core {

/// How the unbiased distribution U is estimated (§2.2).
enum class UnbiasedMethod {
  /// The paper's procedure: repeatedly draw a uniformly random time and take
  /// the nearest latency sample (ties at random).
  kMonteCarlo,
  /// The exact expectation of the same procedure: each sample weighted by
  /// its Voronoi cell (fraction of time it is the nearest sample).
  /// Deterministic and cheaper; the default.
  kVoronoi,
};

struct AutoSensOptions {
  /// Latency histogram geometry. Bins cover [0, max_latency_ms); the first
  /// and last (overflow) bins are excluded from preference estimation.
  double bin_width_ms = 10.0;
  double max_latency_ms = 3000.0;

  /// Latency whose preference is the normalization reference (§2.3, §3.2).
  double reference_latency_ms = 300.0;

  stats::SavitzkyGolayOptions smoothing{.window = 101, .degree = 3};

  UnbiasedMethod unbiased_method = UnbiasedMethod::kVoronoi;
  /// Draw count for kMonteCarlo.
  std::size_t unbiased_draws = 200'000;
  std::uint64_t seed = 7;  ///< Seed for the Monte-Carlo draws.

  /// Support guards: a bin contributes to the ratio only if the biased count
  /// and the unbiased probability mass clear these thresholds. Guarded-out
  /// interior bins are linearly interpolated before smoothing.
  double min_biased_count = 5.0;
  double min_unbiased_mass = 1e-5;

  /// Time-confounder normalization (§2.4.1).
  bool normalize_time_confounder = true;
  std::int64_t alpha_slot_ms = telemetry::kMillisPerHour;
  /// Coarser latency bins for α estimation: per-slot data is ~1/1000th of
  /// the pooled data, so 10 ms bins would be empty almost everywhere.
  double alpha_bin_width_ms = 100.0;
  /// Number of (busiest) reference slots averaged, per the paper's "pick
  /// multiple references in turn and average".
  std::size_t alpha_reference_slots = 8;
  /// Slots need at least this many records to act as an α reference.
  std::size_t alpha_min_slot_records = 50;

  /// Worker threads for the parallel execution layer: 0 = all hardware
  /// threads, 1 = serial. Every analysis output is byte-identical for any
  /// value — work is split over a fixed chunk grid with partials merged in
  /// chunk order and per-chunk counter-seeded RNG substreams (see DESIGN.md
  /// "Threading model & determinism").
  std::size_t threads = 0;
};

}  // namespace autosens::core
