#include "core/pipeline.h"

#include <stdexcept>

#include "core/biased.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace autosens::core {
namespace {

/// Pre-registered pipeline instrumentation handles (one relaxed atomic add
/// per use once registered; see DESIGN.md "Observability").
struct PipelineMetrics {
  obs::Counter& runs = obs::registry().counter(
      "autosens_pipeline_runs_total", "Completed analyze()/analyze_over_windows() runs");
  obs::Counter& records = obs::registry().counter(
      "autosens_pipeline_records_total", "Records entering the analysis pipeline");
  obs::Histogram& biased_ms = obs::registry().histogram(
      "autosens_stage_latency_ms{stage=\"biased\"}",
      "Per-stage pipeline latency (milliseconds)");
  obs::Histogram& alpha_ms = obs::registry().histogram(
      "autosens_stage_latency_ms{stage=\"alpha_normalize\"}",
      "Per-stage pipeline latency (milliseconds)");
  obs::Histogram& unbiased_ms = obs::registry().histogram(
      "autosens_stage_latency_ms{stage=\"unbiased\"}",
      "Per-stage pipeline latency (milliseconds)");
  obs::Histogram& preference_ms = obs::registry().histogram(
      "autosens_stage_latency_ms{stage=\"preference\"}",
      "Per-stage pipeline latency (milliseconds)");
};

PipelineMetrics& metrics() {
  static PipelineMetrics handles;
  return handles;
}

/// B (α-normalized when enabled) from the analysis-plane columns. The
/// columns must be sorted (Dataset sorted flag / DatasetView construction).
stats::Histogram build_biased(telemetry::SampleColumns columns,
                              const AutoSensOptions& options,
                              std::vector<SlotStat>& slots) {
  if (options.normalize_time_confounder) {
    obs::Span span("alpha_normalize", &metrics().alpha_ms);
    const TimeNormalizer normalizer(columns, options);
    slots = normalizer.slots();
    span.attr("slots", static_cast<std::int64_t>(slots.size()));
    return normalizer.normalized_biased(columns);
  }
  obs::Span span("biased_fill", &metrics().biased_ms);
  return biased_histogram(columns.latencies, options);
}

PreferenceResult finish_preference(const stats::Histogram& biased,
                                   const stats::Histogram& unbiased,
                                   const AutoSensOptions& options) {
  obs::Span span("preference", &metrics().preference_ms);
  return compute_preference(biased, unbiased, options);
}

/// The shared core of analyze_detailed: the two estimator fills + the
/// preference curve, over any sorted column view. `unbiased_fn` supplies the
/// U estimate (the Dataset path routes it through the memoized Voronoi
/// weights; the view path computes directly).
template <typename UnbiasedFn>
AnalysisResult analyze_columns(telemetry::SampleColumns columns,
                               const AutoSensOptions& options,
                               const UnbiasedFn& unbiased_fn) {
  if (columns.empty()) throw std::invalid_argument("analyze: empty dataset");
  metrics().records.inc(columns.size());

  std::vector<SlotStat> slots;
  stats::Histogram biased = build_biased(columns, options, slots);

  stats::Histogram unbiased = [&] {
    obs::Span span("unbiased", &metrics().unbiased_ms);
    span.attr("method",
              options.unbiased_method == UnbiasedMethod::kMonteCarlo ? "mc" : "voronoi");
    return unbiased_fn();
  }();

  auto preference = finish_preference(biased, unbiased, options);
  // The α-normalization rescales weights; report the actual record count.
  preference.biased_samples = columns.size();
  metrics().runs.inc();
  if (obs::enabled()) {
    // Readiness for /healthz: the analysis pipeline has produced at least
    // one result since instrumentation came up.
    obs::Health::global().set_component(
        "pipeline", true, "runs=" + std::to_string(metrics().runs.value()));
  }
  return AnalysisResult{.preference = std::move(preference),
                        .biased = std::move(biased),
                        .unbiased = std::move(unbiased),
                        .slots = std::move(slots)};
}

}  // namespace

AnalysisResult analyze_detailed(const telemetry::Dataset& dataset,
                                const AutoSensOptions& options) {
  if (dataset.empty()) throw std::invalid_argument("analyze: empty dataset");
  if (!dataset.is_sorted()) throw std::invalid_argument("analyze: dataset not sorted");
  return analyze_columns(dataset.columns(), options,
                         [&] { return unbiased_histogram(dataset, options); });
}

PreferenceResult analyze(const telemetry::Dataset& dataset, const AutoSensOptions& options) {
  return analyze_detailed(dataset, options).preference;
}

AnalysisResult analyze_detailed(const telemetry::DatasetView& view,
                                const AutoSensOptions& options) {
  if (view.empty()) throw std::invalid_argument("analyze: empty dataset");
  const auto columns = view.columns();
  return analyze_columns(columns, options,
                         [&] { return unbiased_histogram(columns, options); });
}

PreferenceResult analyze(const telemetry::DatasetView& view, const AutoSensOptions& options) {
  return analyze_detailed(view, options).preference;
}

AnalysisResult analyze_over_windows(const telemetry::Dataset& dataset,
                                    std::span<const TimeWindow> windows,
                                    const AutoSensOptions& options) {
  if (dataset.empty()) throw std::invalid_argument("analyze_over_windows: empty dataset");
  if (!dataset.is_sorted()) {
    throw std::invalid_argument("analyze_over_windows: dataset not sorted");
  }
  if (windows.empty()) throw std::invalid_argument("analyze_over_windows: no windows");
  metrics().records.inc(dataset.size());

  std::vector<SlotStat> slots;
  stats::Histogram biased = build_biased(dataset.columns(), options, slots);

  stats::Histogram unbiased = [&] {
    obs::Span span("unbiased", &metrics().unbiased_ms);
    span.attr("method", "windows");
    span.attr("windows", static_cast<std::int64_t>(windows.size()));
    return unbiased_histogram_over_windows_sorted(dataset.times(), dataset.latencies(),
                                                  windows, options.bin_width_ms,
                                                  options.max_latency_ms, options.threads);
  }();

  auto preference = finish_preference(biased, unbiased, options);
  preference.biased_samples = dataset.size();
  metrics().runs.inc();
  if (obs::enabled()) {
    // Readiness for /healthz: the analysis pipeline has produced at least
    // one result since instrumentation came up.
    obs::Health::global().set_component(
        "pipeline", true, "runs=" + std::to_string(metrics().runs.value()));
  }
  return AnalysisResult{.preference = std::move(preference),
                        .biased = std::move(biased),
                        .unbiased = std::move(unbiased),
                        .slots = std::move(slots)};
}

}  // namespace autosens::core
