#include "core/pipeline.h"

#include <stdexcept>

#include "core/biased.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace autosens::core {
namespace {

/// Pre-registered pipeline instrumentation handles (one relaxed atomic add
/// per use once registered; see DESIGN.md "Observability").
struct PipelineMetrics {
  obs::Counter& runs = obs::registry().counter(
      "autosens_pipeline_runs_total", "Completed analyze()/analyze_over_windows() runs");
  obs::Counter& records = obs::registry().counter(
      "autosens_pipeline_records_total", "Records entering the analysis pipeline");
  obs::Histogram& biased_ms = obs::registry().histogram(
      "autosens_stage_latency_ms{stage=\"biased\"}",
      "Per-stage pipeline latency (milliseconds)");
  obs::Histogram& alpha_ms = obs::registry().histogram(
      "autosens_stage_latency_ms{stage=\"alpha_normalize\"}",
      "Per-stage pipeline latency (milliseconds)");
  obs::Histogram& unbiased_ms = obs::registry().histogram(
      "autosens_stage_latency_ms{stage=\"unbiased\"}",
      "Per-stage pipeline latency (milliseconds)");
  obs::Histogram& preference_ms = obs::registry().histogram(
      "autosens_stage_latency_ms{stage=\"preference\"}",
      "Per-stage pipeline latency (milliseconds)");
};

PipelineMetrics& metrics() {
  static PipelineMetrics handles;
  return handles;
}

stats::Histogram build_biased(const telemetry::Dataset& dataset,
                              const AutoSensOptions& options,
                              std::vector<SlotStat>& slots) {
  if (options.normalize_time_confounder) {
    obs::Span span("alpha_normalize", &metrics().alpha_ms);
    const TimeNormalizer normalizer(dataset, options);
    slots = normalizer.slots();
    span.attr("slots", static_cast<std::int64_t>(slots.size()));
    return normalizer.normalized_biased(dataset);
  }
  obs::Span span("biased_fill", &metrics().biased_ms);
  return biased_histogram(dataset, options);
}

PreferenceResult finish_preference(const stats::Histogram& biased,
                                   const stats::Histogram& unbiased,
                                   const AutoSensOptions& options) {
  obs::Span span("preference", &metrics().preference_ms);
  return compute_preference(biased, unbiased, options);
}

}  // namespace

AnalysisResult analyze_detailed(const telemetry::Dataset& dataset,
                                const AutoSensOptions& options) {
  if (dataset.empty()) throw std::invalid_argument("analyze: empty dataset");
  metrics().records.inc(dataset.size());

  std::vector<SlotStat> slots;
  stats::Histogram biased = build_biased(dataset, options, slots);

  stats::Histogram unbiased = [&] {
    obs::Span span("unbiased", &metrics().unbiased_ms);
    span.attr("method",
              options.unbiased_method == UnbiasedMethod::kMonteCarlo ? "mc" : "voronoi");
    return unbiased_histogram(dataset, options);
  }();

  auto preference = finish_preference(biased, unbiased, options);
  // The α-normalization rescales weights; report the actual record count.
  preference.biased_samples = dataset.size();
  metrics().runs.inc();
  return AnalysisResult{.preference = std::move(preference),
                        .biased = std::move(biased),
                        .unbiased = std::move(unbiased),
                        .slots = std::move(slots)};
}

PreferenceResult analyze(const telemetry::Dataset& dataset, const AutoSensOptions& options) {
  return analyze_detailed(dataset, options).preference;
}

AnalysisResult analyze_over_windows(const telemetry::Dataset& dataset,
                                    std::span<const TimeWindow> windows,
                                    const AutoSensOptions& options) {
  if (dataset.empty()) throw std::invalid_argument("analyze_over_windows: empty dataset");
  if (windows.empty()) throw std::invalid_argument("analyze_over_windows: no windows");
  metrics().records.inc(dataset.size());

  std::vector<SlotStat> slots;
  stats::Histogram biased = build_biased(dataset, options, slots);

  stats::Histogram unbiased = [&] {
    obs::Span span("unbiased", &metrics().unbiased_ms);
    span.attr("method", "windows");
    span.attr("windows", static_cast<std::int64_t>(windows.size()));
    return unbiased_histogram_over_windows(dataset.times(), dataset.latencies(), windows,
                                           options.bin_width_ms, options.max_latency_ms,
                                           options.threads);
  }();

  auto preference = finish_preference(biased, unbiased, options);
  preference.biased_samples = dataset.size();
  metrics().runs.inc();
  return AnalysisResult{.preference = std::move(preference),
                        .biased = std::move(biased),
                        .unbiased = std::move(unbiased),
                        .slots = std::move(slots)};
}

}  // namespace autosens::core
