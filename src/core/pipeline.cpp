#include "core/pipeline.h"

#include <stdexcept>

#include "core/biased.h"

namespace autosens::core {

AnalysisResult analyze_detailed(const telemetry::Dataset& dataset,
                                const AutoSensOptions& options) {
  if (dataset.empty()) throw std::invalid_argument("analyze: empty dataset");

  stats::Histogram biased = make_latency_histogram(options);
  std::vector<SlotStat> slots;
  if (options.normalize_time_confounder) {
    const TimeNormalizer normalizer(dataset, options);
    biased = normalizer.normalized_biased(dataset);
    slots = normalizer.slots();
  } else {
    biased = biased_histogram(dataset, options);
  }

  stats::Histogram unbiased = unbiased_histogram(dataset, options);
  auto preference = compute_preference(biased, unbiased, options);
  // The α-normalization rescales weights; report the actual record count.
  preference.biased_samples = dataset.size();
  return AnalysisResult{.preference = std::move(preference),
                        .biased = std::move(biased),
                        .unbiased = std::move(unbiased),
                        .slots = std::move(slots)};
}

PreferenceResult analyze(const telemetry::Dataset& dataset, const AutoSensOptions& options) {
  return analyze_detailed(dataset, options).preference;
}

AnalysisResult analyze_over_windows(const telemetry::Dataset& dataset,
                                    std::span<const TimeWindow> windows,
                                    const AutoSensOptions& options) {
  if (dataset.empty()) throw std::invalid_argument("analyze_over_windows: empty dataset");
  if (windows.empty()) throw std::invalid_argument("analyze_over_windows: no windows");

  stats::Histogram biased = make_latency_histogram(options);
  std::vector<SlotStat> slots;
  if (options.normalize_time_confounder) {
    const TimeNormalizer normalizer(dataset, options);
    biased = normalizer.normalized_biased(dataset);
    slots = normalizer.slots();
  } else {
    biased = biased_histogram(dataset, options);
  }

  stats::Histogram unbiased = unbiased_histogram_over_windows(
      dataset.times(), dataset.latencies(), windows, options.bin_width_ms,
      options.max_latency_ms, options.threads);
  auto preference = compute_preference(biased, unbiased, options);
  preference.biased_samples = dataset.size();
  return AnalysisResult{.preference = std::move(preference),
                        .biased = std::move(biased),
                        .unbiased = std::move(unbiased),
                        .slots = std::move(slots)};
}

}  // namespace autosens::core
