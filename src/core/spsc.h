// Lock-free single-producer / single-consumer bounded ring queue: the
// handoff primitive between a CollectorShard's event loop (producer) and the
// dataset spine thread (consumer). One shard owns the producer side of its
// queue, the spine owns the consumer side of every queue — never more than
// one thread on either end, which is what makes the two-index design safe.
//
// Memory ordering is the classic SPSC pair: the producer publishes a slot
// with a release store of tail_, the consumer acquires it before reading the
// slot (and vice versa for head_ on the pop side). Both sides keep a cached
// copy of the opposite index so the hot path usually touches only its own
// cache line; the shared atomics live on separate cache lines to prevent
// producer/consumer false sharing.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace autosens::core {

// Fixed 64 rather than std::hardware_destructive_interference_size: the
// standard constant is flagged by GCC as ABI-unstable across tuning flags
// (-Winterference-size under -Werror), and 64 is correct for every target
// this builds on.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Bounded SPSC FIFO of move-constructible T. Capacity is rounded up to a
/// power of two; the queue holds at most `capacity` elements (one slot is
/// never wasted — indices are free-running and wrap via masking).
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) {
    std::size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    mask_ = rounded - 1;
    slots_.resize(rounded);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the queue is full.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the queue is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy, callable from any thread (for depth gauges).
  std::size_t size_approx() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};  ///< Next pop index.
  alignas(kCacheLineBytes) std::size_t cached_tail_ = 0;       ///< Consumer's view of tail_.
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};  ///< Next push index.
  alignas(kCacheLineBytes) std::size_t cached_head_ = 0;       ///< Producer's view of head_.
};

}  // namespace autosens::core
