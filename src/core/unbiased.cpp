#include "core/unbiased.h"

#include <algorithm>
#include <stdexcept>

#include "core/biased.h"
#include "stats/sampling.h"

namespace autosens::core {

stats::Histogram unbiased_histogram_mc(std::span<const std::int64_t> times,
                                       std::span<const double> latencies,
                                       TimeWindow window, const AutoSensOptions& options,
                                       stats::Random& random) {
  if (times.size() != latencies.size()) {
    throw std::invalid_argument("unbiased_histogram_mc: size mismatch");
  }
  auto histogram = make_latency_histogram(options);
  const auto draws = stats::nearest_sample_draws(times, window.begin_ms, window.end_ms,
                                                 options.unbiased_draws, random);
  for (const std::size_t idx : draws) histogram.add(latencies[idx]);
  return histogram;
}

stats::Histogram unbiased_histogram_voronoi(std::span<const std::int64_t> times,
                                            std::span<const double> latencies,
                                            TimeWindow window,
                                            const AutoSensOptions& options) {
  if (times.size() != latencies.size()) {
    throw std::invalid_argument("unbiased_histogram_voronoi: size mismatch");
  }
  auto histogram = make_latency_histogram(options);
  const auto weights = stats::voronoi_weights(times, window.begin_ms, window.end_ms);
  for (std::size_t i = 0; i < times.size(); ++i) histogram.add(latencies[i], weights[i]);
  return histogram;
}

stats::Histogram unbiased_histogram_over_windows(std::span<const std::int64_t> times,
                                                 std::span<const double> latencies,
                                                 std::span<const TimeWindow> windows,
                                                 double bin_width_ms, double max_latency_ms) {
  if (times.size() != latencies.size()) {
    throw std::invalid_argument("unbiased_histogram_over_windows: size mismatch");
  }
  auto histogram = stats::Histogram::covering(0.0, max_latency_ms, bin_width_ms);
  for (const auto& window : windows) {
    if (!(window.end_ms > window.begin_ms)) {
      throw std::invalid_argument("unbiased_histogram_over_windows: empty window");
    }
    // Samples inside this window only.
    const auto first = std::lower_bound(times.begin(), times.end(), window.begin_ms);
    const auto last = std::lower_bound(times.begin(), times.end(), window.end_ms);
    const auto lo = static_cast<std::size_t>(first - times.begin());
    const auto count = static_cast<std::size_t>(last - first);
    if (count == 0) continue;
    const auto weights =
        stats::voronoi_weights(times.subspan(lo, count), window.begin_ms, window.end_ms);
    // Weight by window duration so pooled U is time-weighted across windows.
    const double duration = static_cast<double>(window.length());
    for (std::size_t i = 0; i < count; ++i) {
      histogram.add(latencies[lo + i], weights[i] * duration);
    }
  }
  return histogram;
}

stats::Histogram unbiased_histogram(const telemetry::Dataset& dataset,
                                    const AutoSensOptions& options) {
  if (dataset.empty()) throw std::invalid_argument("unbiased_histogram: empty dataset");
  const auto times = dataset.times();
  const auto latencies = dataset.latencies();
  const TimeWindow window{.begin_ms = dataset.begin_time(), .end_ms = dataset.end_time()};
  if (options.unbiased_method == UnbiasedMethod::kMonteCarlo) {
    stats::Random random(options.seed);
    return unbiased_histogram_mc(times, latencies, window, options, random);
  }
  return unbiased_histogram_voronoi(times, latencies, window, options);
}

}  // namespace autosens::core
