#include "core/unbiased.h"

#include <algorithm>
#include <stdexcept>

#include "core/biased.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/sampling.h"
#include "stats/scratch.h"

namespace autosens::core {
namespace {

obs::Counter& mc_draw_counter() {
  static obs::Counter& counter = obs::registry().counter(
      "autosens_unbiased_mc_draws_total", "Monte-Carlo nearest-sample draws performed");
  return counter;
}

/// Voronoi fill from precomputed weights (shared by the direct and cached
/// entry points).
stats::Histogram voronoi_fill(std::span<const double> latencies,
                              std::span<const double> weights,
                              const AutoSensOptions& options) {
  obs::Span span("unbiased_voronoi");
  span.attr("samples", static_cast<std::int64_t>(latencies.size()));
  return parallel_map_reduce<stats::Histogram>(
      latencies.size(), options.threads, kRecordChunk,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        auto histogram = make_latency_histogram_pooled(options);
        histogram.add_all(latencies.subspan(begin, end - begin),
                          weights.subspan(begin, end - begin));
        return histogram;
      },
      merge_and_recycle);
}

}  // namespace

stats::Histogram unbiased_histogram_mc(std::span<const std::int64_t> times,
                                       std::span<const double> latencies,
                                       TimeWindow window, const AutoSensOptions& options,
                                       stats::Random& random) {
  if (times.size() != latencies.size()) {
    throw std::invalid_argument("unbiased_histogram_mc: size mismatch");
  }
  obs::Span span("unbiased_mc_draws");
  span.attr("draws", static_cast<std::int64_t>(options.unbiased_draws));
  mc_draw_counter().inc(options.unbiased_draws);
  // One draw from the caller's stream anchors the whole estimate; each chunk
  // of draws then runs its own counter-seeded substream, so the draw
  // sequences (and the merged histogram) are independent of thread count.
  const std::uint64_t stream_base = random.engine()();
  return parallel_map_reduce<stats::Histogram>(
      options.unbiased_draws, options.threads, kDrawChunk,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        auto histogram = make_latency_histogram_pooled(options);
        if (end > begin) {
          stats::Random substream(stats::substream_seed(stream_base, chunk));
          const auto draws = stats::nearest_sample_draws(times, window.begin_ms,
                                                         window.end_ms, end - begin,
                                                         substream);
          for (const std::size_t idx : draws) histogram.add(latencies[idx]);
        }
        return histogram;
      },
      merge_and_recycle);
}

stats::Histogram unbiased_histogram_voronoi(std::span<const std::int64_t> times,
                                            std::span<const double> latencies,
                                            TimeWindow window,
                                            const AutoSensOptions& options) {
  if (times.size() != latencies.size()) {
    throw std::invalid_argument("unbiased_histogram_voronoi: size mismatch");
  }
  const auto weights =
      stats::voronoi_weights(times, window.begin_ms, window.end_ms, options.threads);
  return voronoi_fill(latencies, weights, options);
}

stats::Histogram unbiased_histogram_over_windows(std::span<const std::int64_t> times,
                                                 std::span<const double> latencies,
                                                 std::span<const TimeWindow> windows,
                                                 double bin_width_ms, double max_latency_ms,
                                                 std::size_t threads) {
  if (!std::is_sorted(times.begin(), times.end())) {
    throw std::invalid_argument("unbiased_histogram_over_windows: times not sorted");
  }
  return unbiased_histogram_over_windows_sorted(times, latencies, windows, bin_width_ms,
                                                max_latency_ms, threads);
}

stats::Histogram unbiased_histogram_over_windows_sorted(
    std::span<const std::int64_t> times, std::span<const double> latencies,
    std::span<const TimeWindow> windows, double bin_width_ms, double max_latency_ms,
    std::size_t threads) {
  if (times.size() != latencies.size()) {
    throw std::invalid_argument("unbiased_histogram_over_windows: size mismatch");
  }
  for (const auto& window : windows) {
    if (!(window.end_ms > window.begin_ms)) {
      throw std::invalid_argument("unbiased_histogram_over_windows: empty window");
    }
  }
  // One task per window, partial histograms merged in window order.
  return parallel_map_reduce<stats::Histogram>(
      windows.size(), threads, 1,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        auto histogram = stats::Histogram::covering(0.0, max_latency_ms, bin_width_ms,
                                                    stats::ScratchPool<double>::take());
        for (std::size_t w = begin; w < end; ++w) {
          const auto& window = windows[w];
          // Samples inside this window only.
          const auto first = std::lower_bound(times.begin(), times.end(), window.begin_ms);
          const auto last = std::lower_bound(times.begin(), times.end(), window.end_ms);
          const auto lo = static_cast<std::size_t>(first - times.begin());
          const auto count = static_cast<std::size_t>(last - first);
          if (count == 0) continue;
          auto weights =
              stats::voronoi_weights(times.subspan(lo, count), window.begin_ms, window.end_ms);
          // Weight by window duration so pooled U is time-weighted across windows.
          const double duration = static_cast<double>(window.length());
          simd::scale(weights, duration);
          histogram.add_all(latencies.subspan(lo, count), weights);
        }
        return histogram;
      },
      merge_and_recycle);
}

stats::Histogram unbiased_histogram(telemetry::SampleColumns columns,
                                    const AutoSensOptions& options) {
  if (columns.empty()) throw std::invalid_argument("unbiased_histogram: empty dataset");
  const TimeWindow window{.begin_ms = columns.begin_time(), .end_ms = columns.end_time()};
  if (options.unbiased_method == UnbiasedMethod::kMonteCarlo) {
    stats::Random random(options.seed);
    return unbiased_histogram_mc(columns.times, columns.latencies, window, options, random);
  }
  return unbiased_histogram_voronoi(columns.times, columns.latencies, window, options);
}

stats::Histogram unbiased_histogram(const telemetry::Dataset& dataset,
                                    const AutoSensOptions& options) {
  if (dataset.empty()) throw std::invalid_argument("unbiased_histogram: empty dataset");
  const TimeWindow window{.begin_ms = dataset.begin_time(), .end_ms = dataset.end_time()};
  if (options.unbiased_method == UnbiasedMethod::kMonteCarlo) {
    stats::Random random(options.seed);
    return unbiased_histogram_mc(dataset.times(), dataset.latencies(), window, options,
                                 random);
  }
  // Voronoi weights over the dataset's own window are memoized on the
  // dataset, so repeated analyses skip the O(n) weight pass.
  const auto weights =
      dataset.voronoi_weights_cached(window.begin_ms, window.end_ms, options.threads);
  return voronoi_fill(dataset.latencies(), weights, options);
}

}  // namespace autosens::core
