// Day-of-week confounder (paper §2.4.1 names it alongside time-of-day:
// "users might be less ... active during the weekend than during the
// weekdays"). This module measures the weekday/weekend activity factor and
// provides weekday/weekend preference slices, mirroring the time-of-day
// machinery at day granularity.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "core/options.h"
#include "core/preference.h"
#include "core/unbiased.h"
#include "telemetry/dataset.h"

namespace autosens::core {

enum class DayClass : int {
  kWeekday = 0,
  kWeekend = 1,  ///< Saturday + Sunday (epoch day 0 is a Thursday).
};

inline constexpr int kDayClassCount = 2;

DayClass day_class(std::int64_t time_ms) noexcept;
std::string_view to_string(DayClass c) noexcept;

/// The weekday/weekend activity factor β: the ratio of per-latency-bin
/// temporal action rates, weekend vs weekday (analogous to α with weekday as
/// the reference slot), averaged over latency bins.
struct DayClassActivity {
  double beta_weekend = 1.0;      ///< < 1 when weekends are quieter.
  std::size_t weekday_records = 0;
  std::size_t weekend_records = 0;
  std::vector<double> latency_ms;        ///< β-bin centers.
  std::vector<double> beta_by_bin;       ///< Per-bin ratios (0 = invalid).
  std::vector<char> valid;
};

DayClassActivity day_class_activity(const telemetry::Dataset& dataset,
                                    const AutoSensOptions& options);

/// Full-day windows of one day class across the data range.
std::vector<TimeWindow> day_class_windows(const telemetry::Dataset& dataset, DayClass c);

/// Weekday vs weekend preference curves for a pre-filtered slice. Uses
/// window-restricted unbiased estimation, like the time-of-day slices.
struct DayClassPreference {
  DayClass day_class = DayClass::kWeekday;
  PreferenceResult preference;
  std::size_t records = 0;
};

std::vector<DayClassPreference> preference_by_day_class(const telemetry::Dataset& dataset,
                                                        const AutoSensOptions& options);

}  // namespace autosens::core
