// Bootstrap confidence intervals for preference curves. The paper reports
// point estimates; production users need to know whether a measured drop is
// signal or estimation noise.
//
// Resampling scheme: a DAY-BLOCK bootstrap. Records are grouped by calendar
// day and whole days are resampled with replacement (each drawn day's
// records are re-timestamped onto a fresh sequential day, preserving
// time-of-day). Resampling individual records would shred the temporal
// structure that the unbiased estimator and the α-normalization depend on;
// whole days keep the diurnal pattern and the intra-day AR correlation
// intact while treating days — which are essentially independent at the
// process's ~30-minute correlation time — as the exchangeable unit.
#pragma once

#include <cstddef>
#include <vector>

#include "core/options.h"
#include "core/preference.h"
#include "stats/bootstrap.h"
#include "stats/rng.h"
#include "telemetry/dataset.h"
#include "telemetry/dataset_view.h"

namespace autosens::core {

struct ConfidenceOptions {
  std::size_t replicates = 50;
  double confidence = 0.90;
  /// When true (default), replicates analyze index-based DatasetViews; when
  /// false they materialize full Dataset copies (the legacy path, kept for
  /// golden comparisons and benchmarking). Both produce byte-identical
  /// intervals.
  bool resample_by_view = true;
};

/// A preference curve with per-probe-latency percentile intervals.
struct PreferenceWithConfidence {
  PreferenceResult point;               ///< Estimate on the full dataset.
  std::vector<double> probe_latency_ms; ///< Latencies the CIs cover.
  std::vector<stats::Interval> intervals;
  std::size_t usable_replicates = 0;    ///< Replicates that produced a curve.
};

/// A day-block resample of `dataset` as a lightweight index view: O(days)
/// block selection (binary-searched day ranges + per-slot time shifts), no
/// record copies, no re-sort. The view borrows `dataset` — it must stay
/// alive and unmodified while the view is used. Days with no records are
/// squeezed out (slots re-base onto sequential days starting at day 0), as
/// the copying implementation always did.
telemetry::DatasetView day_block_resample(const telemetry::Dataset& dataset,
                                          stats::Random& random);

/// The legacy deep-copying resample: same draws, same record order, returns
/// an owning Dataset. Consumes `random` identically to day_block_resample —
/// with equal generator state both describe the exact same resample (golden
/// determinism tests rely on this).
telemetry::Dataset day_block_resample_copy(const telemetry::Dataset& dataset,
                                           stats::Random& random);

/// Run AutoSens and attach bootstrap intervals at `probe_latencies`.
/// Replicates whose resample cannot support a curve (or does not cover a
/// probe) contribute nothing at that probe. Throws like analyze().
PreferenceWithConfidence analyze_with_confidence(const telemetry::Dataset& dataset,
                                                 const AutoSensOptions& options,
                                                 std::vector<double> probe_latencies,
                                                 const ConfidenceOptions& confidence,
                                                 stats::Random& random);

}  // namespace autosens::core
