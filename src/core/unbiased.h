// The unbiased latency distribution U (§2.2): the latency the service would
// have delivered at times unrelated to user activity. Estimated from the
// biased samples themselves by nearest-in-time sampling at uniformly random
// times — either literally (Monte Carlo, as in the paper) or via the exact
// Voronoi-cell expectation of that procedure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/options.h"
#include "stats/histogram.h"
#include "stats/rng.h"
#include "telemetry/dataset.h"

namespace autosens::core {

/// A half-open time window [begin_ms, end_ms).
struct TimeWindow {
  std::int64_t begin_ms = 0;
  std::int64_t end_ms = 0;
  std::int64_t length() const noexcept { return end_ms - begin_ms; }
};

/// U over one window via the paper's Monte-Carlo procedure. `times` sorted
/// ascending, aligned with `latencies`; only samples' nearest-relation to
/// random times in the window matters, so samples may lie outside it.
stats::Histogram unbiased_histogram_mc(std::span<const std::int64_t> times,
                                       std::span<const double> latencies,
                                       TimeWindow window, const AutoSensOptions& options,
                                       stats::Random& random);

/// U over one window via exact Voronoi weights (deterministic).
stats::Histogram unbiased_histogram_voronoi(std::span<const std::int64_t> times,
                                            std::span<const double> latencies,
                                            TimeWindow window,
                                            const AutoSensOptions& options);

/// U pooled over several disjoint windows, each weighted by its duration
/// and estimated from only the samples inside it (used for per-period and
/// per-slot distributions, §2.4.1 / §3.6). Windows must be sorted and
/// non-overlapping; windows without samples contribute nothing.
/// `bin_width_ms` lets callers pick the α-estimation bin width. `threads`
/// parallelizes over windows (partials merged in window order; byte-identical
/// for any value). Validates that `times` is sorted ascending (throws
/// std::invalid_argument otherwise — an unsorted column silently corrupts
/// the per-window binary searches).
stats::Histogram unbiased_histogram_over_windows(std::span<const std::int64_t> times,
                                                 std::span<const double> latencies,
                                                 std::span<const TimeWindow> windows,
                                                 double bin_width_ms, double max_latency_ms,
                                                 std::size_t threads = 1);

/// Same, but skips the O(n) sortedness scan. For callers whose columns are
/// sorted by construction (Dataset's sorted flag, DatasetView ordering, or a
/// single upfront check amortized over many window sets).
stats::Histogram unbiased_histogram_over_windows_sorted(
    std::span<const std::int64_t> times, std::span<const double> latencies,
    std::span<const TimeWindow> windows, double bin_width_ms, double max_latency_ms,
    std::size_t threads = 1);

/// U over a sorted column view's own [begin, end) window, honoring
/// options.unbiased_method (used by the bootstrap view path).
stats::Histogram unbiased_histogram(telemetry::SampleColumns columns,
                                    const AutoSensOptions& options);

/// Dataset-level convenience over the dataset's own [begin, end) window,
/// honoring options.unbiased_method. The Voronoi path reuses the dataset's
/// memoized weights (Dataset::voronoi_weights_cached).
stats::Histogram unbiased_histogram(const telemetry::Dataset& dataset,
                                    const AutoSensOptions& options);

}  // namespace autosens::core
