// Deterministic parallel execution layer for the analysis pipeline.
//
// The contract every user of this header relies on: the OUTPUT of a parallel
// region is a function of the input data only, never of the thread count.
// Two mechanisms enforce this:
//
//  1. Work is split over a fixed chunk grid computed from the element count
//     alone (make_chunk_grid). threads=1 and threads=N execute the exact
//     same chunks; threads only decides how many workers pull them.
//  2. parallel_map_reduce merges per-chunk partials in ascending chunk
//     order after all chunks complete, so floating-point reductions are
//     byte-identical for any thread count.
//
// Stochastic chunk work derives a counter-seeded RNG substream per chunk
// (stats::substream_seed), so draw sequences are likewise independent of
// scheduling.
//
// Nested parallel regions are serialized: a region opened from inside a
// worker (or from the caller thread while it participates in a region) runs
// its chunks inline, in order. This keeps the pool deadlock-free and makes
// e.g. slice-level parallelism compose with the parallel pipeline beneath it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace autosens::core {

/// Resolve a `threads` option value: 0 means "all hardware threads",
/// anything else is taken literally. Always returns >= 1.
std::size_t resolve_threads(std::size_t threads) noexcept;

/// A fixed partition of [0, count) into near-equal contiguous chunks.
/// The partition depends only on `count` and the chunking policy — never on
/// the thread count — which is what makes chunk-ordered reductions
/// deterministic under any scheduling.
struct ChunkGrid {
  std::size_t count = 0;
  std::size_t chunks = 1;
  std::size_t begin(std::size_t c) const noexcept { return count * c / chunks; }
  std::size_t end(std::size_t c) const noexcept { return count * (c + 1) / chunks; }
};

inline constexpr std::size_t kDefaultMaxChunks = 256;

/// Grid with ~`min_per_chunk` elements per chunk, capped at `max_chunks`
/// chunks (at least 1, even for count == 0).
ChunkGrid make_chunk_grid(std::size_t count, std::size_t min_per_chunk,
                          std::size_t max_chunks = kDefaultMaxChunks) noexcept;

/// A small reusable pool of worker threads. One job runs at a time
/// (concurrent callers are serialized); nested use from a worker runs
/// inline. Workers are spawned lazily up to the requested concurrency, so
/// `threads=8` really exercises 8 threads even on smaller machines.
class ThreadPool {
 public:
  /// The process-wide pool used by parallel_for / parallel_map_reduce.
  static ThreadPool& shared();

  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// True on a thread currently executing chunks of a parallel region
  /// (worker or participating caller). Regions opened here run inline.
  static bool in_parallel_region() noexcept;

  std::size_t worker_count() const;

  /// Execute body(c) for every c in [0, chunks) using up to `concurrency`
  /// threads (the caller participates). Blocks until all chunks finished.
  /// If any chunk throws, the exception with the lowest chunk index among
  /// those that ran is rethrown after the region drains; remaining chunks
  /// are skipped best-effort.
  void run(std::size_t chunks, std::size_t concurrency,
           const std::function<void(std::size_t)>& body);

 private:
  struct Job;
  void process(Job& job);
  void worker_loop();
  void ensure_workers_locked(std::size_t target);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::mutex run_mutex_;  ///< Serializes concurrent top-level regions.
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  bool stop_ = false;
};

/// Chunked parallel loop: body(begin, end, chunk) over the fixed grid of
/// [0, count). Chunks run in unspecified order (in index order when serial);
/// bodies must not touch overlapping state across chunks.
void parallel_for(std::size_t count, std::size_t threads, std::size_t min_per_chunk,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Item-level convenience: body(i) for i in [0, count), one item per chunk
/// (used for slice fan-outs, time-of-day classes, bootstrap replicates).
void parallel_for_items(std::size_t count, std::size_t threads,
                        const std::function<void(std::size_t)>& body);

/// Map every chunk of [0, count) to a partial with map(begin, end, chunk),
/// then fold the partials IN ASCENDING CHUNK ORDER with
/// reduce(accumulator, std::move(partial)). The fixed grid plus ordered
/// merge make the result byte-identical for every thread count.
template <typename T, typename Map, typename Reduce>
T parallel_map_reduce(std::size_t count, std::size_t threads, std::size_t min_per_chunk,
                      Map&& map, Reduce&& reduce) {
  const ChunkGrid grid = make_chunk_grid(count, min_per_chunk);
  if (count == 0 || grid.chunks == 1) return map(0, count, std::size_t{0});
  std::vector<std::optional<T>> partials(grid.chunks);
  parallel_for(count, threads, min_per_chunk,
               [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                 partials[chunk].emplace(map(begin, end, chunk));
               });
  T accumulator = std::move(*partials[0]);
  for (std::size_t c = 1; c < grid.chunks; ++c) {
    reduce(accumulator, std::move(*partials[c]));
  }
  return accumulator;
}

/// Chunk sizes tuned for the record-loop and Monte-Carlo-draw workloads.
inline constexpr std::size_t kRecordChunk = 8192;
inline constexpr std::size_t kDrawChunk = 8192;

}  // namespace autosens::core
