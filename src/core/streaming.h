// Streaming AutoSens: a running normalized-latency-preference estimate over
// an unbounded, chronological record stream — what a production monitor
// ingesting a live collector feed needs (the batch pipeline requires the
// whole dataset in memory).
//
// Approximations relative to the batch path, both one-sided and small:
//   * U weighting is hold-last instead of nearest-sample: sample i owns the
//     interval [t_i, t_{i+1}) rather than the Voronoi cell around t_i —
//     the same time-weighting shifted by half a gap. For gap distributions
//     symmetric in time (ours are), the binned U is statistically identical.
//   * α uses the same time-of-day-class machinery as the batch
//     TimeNormalizer, recomputed at snapshot time from streaming per-class
//     accumulators, so snapshots converge to the batch estimate.
// Memory is O(bins): independent of how many records have been fed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/options.h"
#include "core/preference.h"
#include "stats/histogram.h"
#include "telemetry/dataset.h"
#include "telemetry/record.h"

namespace autosens::core {

class StreamingAutoSens {
 public:
  /// Validates options eagerly (geometry, smoothing, α slots).
  explicit StreamingAutoSens(AutoSensOptions options);

  /// Feed one record. Records must arrive in non-decreasing time order
  /// (throws std::invalid_argument otherwise — feed from a collector or a
  /// sorted log). Error-status records are counted but excluded, matching
  /// telemetry::validate's default policy.
  void feed(const telemetry::ActionRecord& record);

  /// Feed an entire sorted dataset by scanning its time / latency / status
  /// columns — equivalent to feed() on every record in order, without
  /// materializing ActionRecords. Throws like feed() if the dataset starts
  /// before the last fed record.
  void feed_all(const telemetry::Dataset& dataset);

  std::size_t records_seen() const noexcept { return seen_; }
  std::size_t records_used() const noexcept { return used_; }

  /// Compute the preference curve from everything fed so far. Requires
  /// enough supported data, like the batch path (throws otherwise). The
  /// stream can continue to be fed after a snapshot.
  PreferenceResult snapshot() const;

  /// The current α estimate per time-of-day class (diagnostics).
  std::vector<double> alpha_by_class() const;

 private:
  struct ClassState {
    stats::Histogram counts_fine;   ///< B counts, analysis bins.
    stats::Histogram counts_alpha;  ///< B counts, α bins.
    stats::Histogram time_alpha;    ///< Time at latency, α bins (ms).
    double total_time_ms = 0.0;
    std::size_t records = 0;
  };

  /// The last usable sample — all the hold-last weighting needs from it.
  struct PrevSample {
    std::int64_t time_ms = 0;
    double latency_ms = 0.0;
  };

  std::size_t class_of(std::int64_t time_ms) const noexcept;
  void feed_sample(std::int64_t time_ms, double latency_ms,
                   telemetry::ActionStatus status);
  std::vector<double> compute_alpha() const;

  AutoSensOptions options_;
  std::vector<ClassState> classes_;
  stats::Histogram unbiased_time_;  ///< Global U: time-weighted, analysis bins.
  std::optional<PrevSample> previous_;
  std::size_t seen_ = 0;
  std::size_t used_ = 0;
  /// records_used() at the previous snapshot — feeds the snapshot-cadence
  /// gauge (records per snapshot) in the obs registry.
  mutable std::size_t used_at_last_snapshot_ = 0;
};

}  // namespace autosens::core
