// Latency preference (§2.3): the bin-wise ratio B/U of the biased and
// unbiased distributions, Savitzky–Golay smoothed, then normalized at the
// reference latency into the paper's headline metric — the normalized
// latency preference. A value of 0.8 at latency L means users are 20 % less
// active at L than at the reference, all else equal.
#pragma once

#include <cstddef>
#include <vector>

#include "core/options.h"
#include "stats/histogram.h"

namespace autosens::core {

struct PreferenceResult {
  std::vector<double> latency_ms;   ///< Bin centers.
  std::vector<double> raw_ratio;    ///< B/U per bin (0 where unsupported).
  std::vector<double> smoothed;     ///< SG-filtered ratio over the support.
  std::vector<double> normalized;   ///< smoothed / smoothed(reference).
  std::vector<char> valid;          ///< 1 where the bin had support.
  double reference_latency_ms = 0.0;
  std::size_t biased_samples = 0;   ///< Total B count (before weighting).
  std::size_t support_begin = 0;    ///< First bin of the supported range.
  std::size_t support_end = 0;      ///< One past the last supported bin.

  /// Normalized preference at a latency (linear interpolation between bin
  /// centers). Throws std::out_of_range outside the supported range.
  double at(double latency) const;
  /// Whether `latency` lies in the supported range.
  bool covers(double latency) const noexcept;
};

/// Compute the preference curve from the biased and unbiased histograms.
/// The histograms must share geometry. Throws std::invalid_argument if the
/// supported range is empty or does not include the reference latency.
PreferenceResult compute_preference(const stats::Histogram& biased,
                                    const stats::Histogram& unbiased,
                                    const AutoSensOptions& options);

}  // namespace autosens::core
