// Windowed AutoSens over an ASL3 store (DESIGN.md §6e): tile the store's
// time range into analysis windows and run the batch pipeline on each,
// materializing only the partitions (and blocks) a window overlaps. Peak
// memory is O(window), independent of store size — the out-of-core path for
// datasets larger than RAM.
//
// Equivalence contract: each window's result is byte-identical to running
// analyze()/analyze_with_confidence() on the same rows filtered out of a
// fully in-memory Dataset, because the window IS a Dataset once loaded —
// same estimators, same memoized Voronoi weights, same bootstrap draws
// (confidence replicates reseed per window and resample only the window's
// days, so they never touch partitions outside it).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/confidence.h"
#include "core/options.h"
#include "core/preference.h"
#include "stats/histogram.h"
#include "telemetry/clock.h"
#include "telemetry/record.h"
#include "telemetry/store/store.h"
#include "telemetry/validate.h"

namespace autosens::core {

struct StoreStreamOptions {
  /// Window width; windows tile [min_time, max_time] from min_time.
  std::int64_t window_ms = 7 * telemetry::kMillisPerDay;
  /// Scrub each window with telemetry::validate before analysis (the same
  /// record-local policy the batch CLI applies up front, so per-window
  /// scrubbing equals scrubbing the whole dataset first). Stores built from
  /// already-validated data can turn this off to skip the copy.
  bool scrub = true;
  telemetry::ValidationOptions validation;
  /// Optional slice filters applied to each window before analysis.
  std::optional<telemetry::ActionType> action;
  std::optional<telemetry::UserClass> user_class;
  /// Attach day-block bootstrap intervals per window. Each window gets a
  /// fresh generator seeded with `confidence_seed`, so a window's interval
  /// does not depend on which windows ran before it.
  bool with_confidence = false;
  ConfidenceOptions confidence;
  std::vector<double> probe_latencies;
  std::uint64_t confidence_seed = 17;
};

/// One analysis window's outcome. `preference` (and `confidence`) are empty
/// when the window holds no usable rows or cannot support a curve.
struct StoreWindowResult {
  std::int64_t begin_ms = 0;
  std::int64_t end_ms = 0;
  std::size_t records = 0;  ///< Rows analyzed (after slice filters).
  std::size_t partitions_scanned = 0;
  std::size_t partitions_pruned = 0;
  std::uint64_t bytes_read = 0;  ///< Stored bytes consumed from disk.
  std::optional<PreferenceResult> preference;
  std::optional<PreferenceWithConfidence> confidence;
};

/// Stream window results in time order through `sink` — O(window) memory.
void analyze_store_windows(const telemetry::store::StoredDataset& store,
                           const AutoSensOptions& options, const StoreStreamOptions& stream,
                           const std::function<void(const StoreWindowResult&)>& sink);

/// Convenience: collect every window's result (memory scales with window
/// count, still not with row count).
std::vector<StoreWindowResult> analyze_store_windows(
    const telemetry::store::StoredDataset& store, const AutoSensOptions& options,
    const StoreStreamOptions& stream = {});

/// The biased latency distribution of the whole store, filled one partition
/// at a time and merged in partition order. Unit-weight bin counts are
/// integer sums, so this is bit-identical to biased_histogram() over the
/// fully loaded dataset while touching O(partition) memory.
stats::Histogram scan_biased_histogram(const telemetry::store::StoredDataset& store,
                                       const AutoSensOptions& options);

}  // namespace autosens::core
