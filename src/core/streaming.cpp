#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/biased.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/savitzky_golay.h"
#include "telemetry/clock.h"

namespace autosens::core {
namespace {

constexpr double kMinTimeFraction = 1e-3;
constexpr double kMinReferenceCount = 10.0;
constexpr double kAlphaFloor = 0.02;

struct StreamingMetrics {
  obs::Counter& seen = obs::registry().counter(
      "autosens_streaming_records_seen_total", "Records fed into StreamingAutoSens");
  obs::Counter& used = obs::registry().counter(
      "autosens_streaming_records_used_total",
      "Records kept by the streaming scrub policy");
  obs::Counter& snapshots = obs::registry().counter(
      "autosens_streaming_snapshots_total", "StreamingAutoSens snapshots computed");
  obs::Histogram& snapshot_ms = obs::registry().histogram(
      "autosens_streaming_snapshot_latency_ms",
      "Latency of StreamingAutoSens::snapshot (milliseconds)");
  obs::Gauge& cadence = obs::registry().gauge(
      "autosens_streaming_records_per_snapshot",
      "Records accepted between the two most recent snapshots");
};

StreamingMetrics& streaming_metrics() {
  static StreamingMetrics handles;
  return handles;
}

/// Per-time-of-day-class α gauges, registered lazily the first time a
/// snapshot publishes them (class count is an option, not a constant).
obs::Gauge& alpha_gauge(std::size_t class_index) {
  return obs::registry().gauge(
      "autosens_streaming_alpha{class=\"" + std::to_string(class_index) + "\"}",
      "Streaming per-time-of-day-class activity factor at last snapshot");
}

}  // namespace

StreamingAutoSens::StreamingAutoSens(AutoSensOptions options)
    : options_(options),
      unbiased_time_(stats::Histogram::covering(0.0, options.max_latency_ms,
                                                options.bin_width_ms)) {
  if (options_.alpha_slot_ms <= 0 ||
      telemetry::kMillisPerDay % options_.alpha_slot_ms != 0) {
    throw std::invalid_argument("StreamingAutoSens: alpha_slot_ms must evenly divide a day");
  }
  // Fail fast on a bad smoothing configuration instead of at snapshot time.
  (void)stats::SavitzkyGolay(options_.smoothing);
  const auto class_count =
      static_cast<std::size_t>(telemetry::kMillisPerDay / options_.alpha_slot_ms);
  classes_.reserve(class_count);
  for (std::size_t k = 0; k < class_count; ++k) {
    classes_.push_back(
        {stats::Histogram::covering(0.0, options_.max_latency_ms, options_.bin_width_ms),
         stats::Histogram::covering(0.0, options_.max_latency_ms,
                                    options_.alpha_bin_width_ms),
         stats::Histogram::covering(0.0, options_.max_latency_ms,
                                    options_.alpha_bin_width_ms),
         0.0, 0});
  }
}

std::size_t StreamingAutoSens::class_of(std::int64_t time_ms) const noexcept {
  return static_cast<std::size_t>(
      ((time_ms % telemetry::kMillisPerDay) + telemetry::kMillisPerDay) %
      telemetry::kMillisPerDay / options_.alpha_slot_ms);
}

void StreamingAutoSens::feed_sample(std::int64_t time_ms, double latency_ms,
                                    telemetry::ActionStatus status) {
  if (previous_ && time_ms < previous_->time_ms) {
    throw std::invalid_argument("StreamingAutoSens::feed: records must be time-ordered");
  }
  ++seen_;
  streaming_metrics().seen.inc();

  // Hold-last time weighting: the interval since the previous usable sample
  // is attributed to that sample's latency, split across time-of-day class
  // boundaries so per-class time fractions stay exact.
  if (previous_) {
    std::int64_t t = previous_->time_ms;
    const double latency = previous_->latency_ms;
    unbiased_time_.add(latency, static_cast<double>(time_ms - t));
    while (t < time_ms) {
      const std::int64_t class_end =
          (t / options_.alpha_slot_ms + 1) * options_.alpha_slot_ms;
      const std::int64_t segment_end = std::min(class_end, time_ms);
      auto& cls = classes_[class_of(t)];
      cls.time_alpha.add(latency, static_cast<double>(segment_end - t));
      cls.total_time_ms += static_cast<double>(segment_end - t);
      t = segment_end;
    }
  }

  // Scrub policy mirrors telemetry::validate defaults.
  if (status == telemetry::ActionStatus::kError || !(latency_ms > 0.0) ||
      !std::isfinite(latency_ms)) {
    // Excluded from counts but still advances the clock for time weighting
    // only if usable as a latency sample — it is not, so keep previous_.
    return;
  }
  previous_ = PrevSample{time_ms, latency_ms};
  ++used_;
  streaming_metrics().used.inc();
  auto& cls = classes_[class_of(time_ms)];
  cls.counts_fine.add(latency_ms);
  cls.counts_alpha.add(latency_ms);
  ++cls.records;
}

void StreamingAutoSens::feed(const telemetry::ActionRecord& record) {
  feed_sample(record.time_ms, record.latency_ms, record.status);
}

void StreamingAutoSens::feed_all(const telemetry::Dataset& dataset) {
  const auto times = dataset.times();
  const auto latencies = dataset.latencies();
  const auto statuses = dataset.statuses();
  for (std::size_t i = 0; i < times.size(); ++i) {
    feed_sample(times[i], latencies[i], statuses[i]);
  }
}

std::vector<double> StreamingAutoSens::compute_alpha() const {
  // Reference classes: the busiest ones, as in the batch TimeNormalizer.
  std::vector<std::size_t> order(classes_.size());
  for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return classes_[a].records > classes_[b].records;
  });
  std::vector<std::size_t> references;
  for (const std::size_t idx : order) {
    if (references.size() >= options_.alpha_reference_slots) break;
    if (classes_[idx].records >= options_.alpha_min_slot_records) references.push_back(idx);
  }
  if (references.empty()) references.push_back(order.front());

  double reference_rate = 0.0;
  for (const std::size_t r : references) {
    reference_rate += classes_[r].total_time_ms > 0.0
                          ? static_cast<double>(classes_[r].records) /
                                classes_[r].total_time_ms
                          : 0.0;
  }
  reference_rate /= static_cast<double>(references.size());

  const auto pair_alpha = [this](const ClassState& slot, const ClassState& reference) {
    const double slot_mass = slot.time_alpha.total_weight();
    const double ref_mass = reference.time_alpha.total_weight();
    if (slot_mass <= 0.0 || ref_mass <= 0.0) return std::nan("");
    double sum = 0.0;
    std::size_t bins = 0;
    for (std::size_t i = 0; i < slot.counts_alpha.size(); ++i) {
      const double f_s = slot.time_alpha.count(i) / slot_mass;
      const double f_r = reference.time_alpha.count(i) / ref_mass;
      const double c_r = reference.counts_alpha.count(i);
      if (f_s < kMinTimeFraction || f_r < kMinTimeFraction || c_r < kMinReferenceCount) {
        continue;
      }
      const double rate_s = slot.counts_alpha.count(i) / (f_s * slot.total_time_ms);
      const double rate_r = c_r / (f_r * reference.total_time_ms);
      sum += rate_s / rate_r;
      ++bins;
    }
    return bins > 0 ? sum / static_cast<double>(bins) : std::nan("");
  };

  std::vector<double> alpha(classes_.size(), 1.0);
  for (std::size_t k = 0; k < classes_.size(); ++k) {
    double sum = 0.0;
    std::size_t used = 0;
    for (const std::size_t r : references) {
      const double a = pair_alpha(classes_[k], classes_[r]);
      if (std::isfinite(a) && a > 0.0) {
        sum += a;
        ++used;
      }
    }
    if (used > 0) {
      alpha[k] = std::max(sum / static_cast<double>(used), kAlphaFloor);
    } else {
      const double rate = classes_[k].total_time_ms > 0.0
                              ? static_cast<double>(classes_[k].records) /
                                    classes_[k].total_time_ms
                              : 0.0;
      alpha[k] = std::max(rate / reference_rate, kAlphaFloor);
    }
  }
  return alpha;
}

std::vector<double> StreamingAutoSens::alpha_by_class() const {
  if (used_ == 0) throw std::logic_error("StreamingAutoSens: no records fed");
  return compute_alpha();
}

PreferenceResult StreamingAutoSens::snapshot() const {
  if (used_ == 0) throw std::logic_error("StreamingAutoSens: no records fed");
  obs::Span span("streaming_snapshot", &streaming_metrics().snapshot_ms);
  span.attr("records_used", static_cast<std::int64_t>(used_));

  auto biased = make_latency_histogram(options_);
  if (options_.normalize_time_confounder) {
    const auto alpha = compute_alpha();
    if (obs::enabled()) {
      for (std::size_t k = 0; k < alpha.size(); ++k) alpha_gauge(k).set(alpha[k]);
    }
    for (std::size_t k = 0; k < classes_.size(); ++k) {
      for (std::size_t i = 0; i < biased.size(); ++i) {
        const double count = classes_[k].counts_fine.count(i);
        if (count > 0.0) biased.set_count(i, biased.count(i) + count / alpha[k]);
      }
    }
  } else {
    for (const auto& cls : classes_) biased.merge(cls.counts_fine);
  }

  auto preference = compute_preference(biased, unbiased_time_, options_);
  preference.biased_samples = used_;
  streaming_metrics().snapshots.inc();
  streaming_metrics().cadence.set(static_cast<double>(used_ - used_at_last_snapshot_));
  used_at_last_snapshot_ = used_;
  if (obs::enabled()) {
    // Readiness for /healthz: a streaming session that can produce
    // snapshots is serving fresh sensitivity estimates.
    obs::Health::global().set_component(
        "streaming", true,
        "records_used=" + std::to_string(used_) +
            ", snapshots=" + std::to_string(streaming_metrics().snapshots.value()));
  }
  return preference;
}

}  // namespace autosens::core
