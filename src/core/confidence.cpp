#include "core/confidence.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "stats/descriptive.h"
#include "telemetry/clock.h"

namespace autosens::core {

telemetry::Dataset day_block_resample(const telemetry::Dataset& dataset,
                                      stats::Random& random) {
  if (dataset.empty()) throw std::invalid_argument("day_block_resample: empty dataset");
  const auto records = dataset.records();

  // Index record ranges per day (records are time-sorted).
  struct DayRange {
    std::int64_t day = 0;
    std::size_t first = 0;
    std::size_t last = 0;
  };
  std::vector<DayRange> days;
  std::size_t i = 0;
  while (i < records.size()) {
    const std::int64_t day = telemetry::day_index(records[i].time_ms);
    std::size_t j = i;
    while (j < records.size() && telemetry::day_index(records[j].time_ms) == day) ++j;
    days.push_back({day, i, j});
    i = j;
  }

  telemetry::Dataset resampled;
  resampled.reserve(records.size());
  for (std::size_t slot = 0; slot < days.size(); ++slot) {
    const auto& source = days[random.uniform_index(days.size())];
    const std::int64_t day_shift =
        (static_cast<std::int64_t>(slot) - source.day) * telemetry::kMillisPerDay;
    for (std::size_t k = source.first; k < source.last; ++k) {
      auto record = records[k];
      record.time_ms += day_shift;  // keeps time-of-day, moves the day
      resampled.add(record);
    }
  }
  resampled.sort_by_time();
  return resampled;
}

PreferenceWithConfidence analyze_with_confidence(const telemetry::Dataset& dataset,
                                                 const AutoSensOptions& options,
                                                 std::vector<double> probe_latencies,
                                                 const ConfidenceOptions& confidence,
                                                 stats::Random& random) {
  if (confidence.replicates == 0) {
    throw std::invalid_argument("analyze_with_confidence: replicates must be nonzero");
  }
  if (!(confidence.confidence > 0.0 && confidence.confidence < 1.0)) {
    throw std::invalid_argument("analyze_with_confidence: confidence must be in (0,1)");
  }

  PreferenceWithConfidence result;
  result.point = analyze(dataset, options);
  result.probe_latency_ms = std::move(probe_latencies);

  // Each replicate resamples from its own counter-seeded substream and
  // records its per-probe values into a private slot; the slots merge in
  // replicate order, so the intervals are byte-identical for any
  // options.threads. The inner analyze() calls serialize automatically
  // inside the replicate-level parallel region.
  struct Replicate {
    bool usable = false;
    std::vector<std::optional<double>> at_probe;
  };
  const std::uint64_t stream_base = random.engine()();
  std::vector<Replicate> replicate_draws(confidence.replicates);
  parallel_for_items(
      confidence.replicates, options.threads, [&](std::size_t r) {
        stats::Random substream(stats::substream_seed(stream_base, r));
        auto& slot = replicate_draws[r];
        slot.at_probe.assign(result.probe_latency_ms.size(), std::nullopt);
        const auto resampled = day_block_resample(dataset, substream);
        try {
          const auto curve = analyze(resampled, options);
          slot.usable = true;
          for (std::size_t p = 0; p < result.probe_latency_ms.size(); ++p) {
            if (curve.covers(result.probe_latency_ms[p])) {
              slot.at_probe[p] = curve.at(result.probe_latency_ms[p]);
            }
          }
        } catch (const std::invalid_argument&) {
          // Degenerate resample (e.g. reference latency unsupported): skip.
        }
      });

  std::vector<std::vector<double>> draws(result.probe_latency_ms.size());
  for (const auto& slot : replicate_draws) {
    if (!slot.usable) continue;
    ++result.usable_replicates;
    for (std::size_t p = 0; p < draws.size(); ++p) {
      if (slot.at_probe[p]) draws[p].push_back(*slot.at_probe[p]);
    }
  }

  result.intervals.resize(result.probe_latency_ms.size());
  const double alpha = 1.0 - confidence.confidence;
  for (std::size_t p = 0; p < draws.size(); ++p) {
    if (draws[p].size() < 2) {
      // No usable replicates at this probe: degenerate interval around the
      // point estimate (callers can detect lo == hi).
      const double point = result.point.covers(result.probe_latency_ms[p])
                               ? result.point.at(result.probe_latency_ms[p])
                               : 0.0;
      result.intervals[p] = {point, point};
      continue;
    }
    result.intervals[p] = {stats::quantile(draws[p], alpha / 2.0),
                           stats::quantile(draws[p], 1.0 - alpha / 2.0)};
  }
  return result;
}

}  // namespace autosens::core
