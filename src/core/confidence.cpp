#include "core/confidence.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "stats/descriptive.h"
#include "telemetry/clock.h"

namespace autosens::core {
namespace {

/// One non-empty day of the dataset: its calendar day index and the record
/// range [first, last) covering it.
struct DayRange {
  std::int64_t day = 0;
  std::size_t first = 0;
  std::size_t last = 0;
};

/// Non-empty day ranges via binary search over the sorted times column —
/// O(days · log records) rather than a full record scan.
std::vector<DayRange> day_ranges(const telemetry::Dataset& dataset) {
  const auto times = dataset.times();
  const std::int64_t first_day = telemetry::day_index(times.front());
  const std::int64_t last_day = telemetry::day_index(times.back());
  std::vector<DayRange> days;
  days.reserve(static_cast<std::size_t>(last_day - first_day) + 1);
  std::size_t cursor = 0;
  for (std::int64_t day = first_day; day <= last_day; ++day) {
    const auto it = std::lower_bound(times.begin() + static_cast<std::ptrdiff_t>(cursor),
                                     times.end(), (day + 1) * telemetry::kMillisPerDay);
    const auto next = static_cast<std::size_t>(it - times.begin());
    if (next > cursor) days.push_back({day, cursor, next});
    cursor = next;
  }
  return days;
}

/// Draw the day-slot assignment shared by the view and copy resamplers.
/// Slot s is filled with a uniformly drawn source day, shifted onto day s
/// (keeping time-of-day); slot-major order is globally time-sorted.
std::vector<telemetry::DatasetView::Block> draw_blocks(std::span<const DayRange> days,
                                                       stats::Random& random) {
  std::vector<telemetry::DatasetView::Block> blocks;
  blocks.reserve(days.size());
  for (std::size_t slot = 0; slot < days.size(); ++slot) {
    const auto& source = days[random.uniform_index(days.size())];
    const std::int64_t day_shift =
        (static_cast<std::int64_t>(slot) - source.day) * telemetry::kMillisPerDay;
    blocks.push_back({source.first, source.last, day_shift});
  }
  return blocks;
}

}  // namespace

telemetry::DatasetView day_block_resample(const telemetry::Dataset& dataset,
                                          stats::Random& random) {
  if (dataset.empty()) throw std::invalid_argument("day_block_resample: empty dataset");
  const auto days = day_ranges(dataset);
  return telemetry::DatasetView(dataset, draw_blocks(days, random));
}

telemetry::Dataset day_block_resample_copy(const telemetry::Dataset& dataset,
                                           stats::Random& random) {
  if (dataset.empty()) throw std::invalid_argument("day_block_resample: empty dataset");
  const auto days = day_ranges(dataset);
  const auto blocks = draw_blocks(days, random);

  telemetry::Dataset resampled;
  resampled.reserve(dataset.size());
  for (const auto& block : blocks) {
    for (std::size_t k = block.first; k < block.last; ++k) {
      auto record = dataset[k];
      record.time_ms += block.time_shift;  // keeps time-of-day, moves the day
      resampled.add(record);
    }
  }
  resampled.sort_by_time();
  return resampled;
}

PreferenceWithConfidence analyze_with_confidence(const telemetry::Dataset& dataset,
                                                 const AutoSensOptions& options,
                                                 std::vector<double> probe_latencies,
                                                 const ConfidenceOptions& confidence,
                                                 stats::Random& random) {
  if (confidence.replicates == 0) {
    throw std::invalid_argument("analyze_with_confidence: replicates must be nonzero");
  }
  if (!(confidence.confidence > 0.0 && confidence.confidence < 1.0)) {
    throw std::invalid_argument("analyze_with_confidence: confidence must be in (0,1)");
  }

  PreferenceWithConfidence result;
  result.point = analyze(dataset, options);
  result.probe_latency_ms = std::move(probe_latencies);

  // Each replicate resamples from its own counter-seeded substream and
  // records its per-probe values into a private slot; the slots merge in
  // replicate order, so the intervals are byte-identical for any
  // options.threads. The inner analyze() calls serialize automatically
  // inside the replicate-level parallel region.
  struct Replicate {
    bool usable = false;
    std::vector<std::optional<double>> at_probe;
  };
  const std::uint64_t stream_base = random.engine()();
  std::vector<Replicate> replicate_draws(confidence.replicates);
  parallel_for_items(
      confidence.replicates, options.threads, [&](std::size_t r) {
        stats::Random substream(stats::substream_seed(stream_base, r));
        auto& slot = replicate_draws[r];
        slot.at_probe.assign(result.probe_latency_ms.size(), std::nullopt);
        try {
          // View path: the replicate is an index view over `dataset` —
          // O(days) setup, no record copy or re-sort. The legacy copy path
          // produces byte-identical curves (same draws, same sample order).
          const auto curve = confidence.resample_by_view
                                 ? analyze(day_block_resample(dataset, substream), options)
                                 : analyze(day_block_resample_copy(dataset, substream),
                                           options);
          slot.usable = true;
          for (std::size_t p = 0; p < result.probe_latency_ms.size(); ++p) {
            if (curve.covers(result.probe_latency_ms[p])) {
              slot.at_probe[p] = curve.at(result.probe_latency_ms[p]);
            }
          }
        } catch (const std::invalid_argument&) {
          // Degenerate resample (e.g. reference latency unsupported): skip.
        }
      });

  std::vector<std::vector<double>> draws(result.probe_latency_ms.size());
  for (const auto& slot : replicate_draws) {
    if (!slot.usable) continue;
    ++result.usable_replicates;
    for (std::size_t p = 0; p < draws.size(); ++p) {
      if (slot.at_probe[p]) draws[p].push_back(*slot.at_probe[p]);
    }
  }

  result.intervals.resize(result.probe_latency_ms.size());
  const double alpha = 1.0 - confidence.confidence;
  for (std::size_t p = 0; p < draws.size(); ++p) {
    if (draws[p].size() < 2) {
      // No usable replicates at this probe: degenerate interval around the
      // point estimate (callers can detect lo == hi).
      const double point = result.point.covers(result.probe_latency_ms[p])
                               ? result.point.at(result.probe_latency_ms[p])
                               : 0.0;
      result.intervals[p] = {point, point};
      continue;
    }
    result.intervals[p] = {stats::quantile(draws[p], alpha / 2.0),
                           stats::quantile(draws[p], 1.0 - alpha / 2.0)};
  }
  return result;
}

}  // namespace autosens::core
