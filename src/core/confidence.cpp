#include "core/confidence.h"

#include <algorithm>
#include <stdexcept>

#include "core/pipeline.h"
#include "stats/descriptive.h"
#include "telemetry/clock.h"

namespace autosens::core {

telemetry::Dataset day_block_resample(const telemetry::Dataset& dataset,
                                      stats::Random& random) {
  if (dataset.empty()) throw std::invalid_argument("day_block_resample: empty dataset");
  const auto records = dataset.records();

  // Index record ranges per day (records are time-sorted).
  struct DayRange {
    std::int64_t day = 0;
    std::size_t first = 0;
    std::size_t last = 0;
  };
  std::vector<DayRange> days;
  std::size_t i = 0;
  while (i < records.size()) {
    const std::int64_t day = telemetry::day_index(records[i].time_ms);
    std::size_t j = i;
    while (j < records.size() && telemetry::day_index(records[j].time_ms) == day) ++j;
    days.push_back({day, i, j});
    i = j;
  }

  telemetry::Dataset resampled;
  resampled.reserve(records.size());
  for (std::size_t slot = 0; slot < days.size(); ++slot) {
    const auto& source = days[random.uniform_index(days.size())];
    const std::int64_t day_shift =
        (static_cast<std::int64_t>(slot) - source.day) * telemetry::kMillisPerDay;
    for (std::size_t k = source.first; k < source.last; ++k) {
      auto record = records[k];
      record.time_ms += day_shift;  // keeps time-of-day, moves the day
      resampled.add(record);
    }
  }
  resampled.sort_by_time();
  return resampled;
}

PreferenceWithConfidence analyze_with_confidence(const telemetry::Dataset& dataset,
                                                 const AutoSensOptions& options,
                                                 std::vector<double> probe_latencies,
                                                 const ConfidenceOptions& confidence,
                                                 stats::Random& random) {
  if (confidence.replicates == 0) {
    throw std::invalid_argument("analyze_with_confidence: replicates must be nonzero");
  }
  if (!(confidence.confidence > 0.0 && confidence.confidence < 1.0)) {
    throw std::invalid_argument("analyze_with_confidence: confidence must be in (0,1)");
  }

  PreferenceWithConfidence result;
  result.point = analyze(dataset, options);
  result.probe_latency_ms = std::move(probe_latencies);

  std::vector<std::vector<double>> draws(result.probe_latency_ms.size());
  for (std::size_t r = 0; r < confidence.replicates; ++r) {
    const auto resampled = day_block_resample(dataset, random);
    try {
      const auto curve = analyze(resampled, options);
      ++result.usable_replicates;
      for (std::size_t p = 0; p < result.probe_latency_ms.size(); ++p) {
        if (curve.covers(result.probe_latency_ms[p])) {
          draws[p].push_back(curve.at(result.probe_latency_ms[p]));
        }
      }
    } catch (const std::invalid_argument&) {
      // Degenerate resample (e.g. reference latency unsupported): skip.
    }
  }

  result.intervals.resize(result.probe_latency_ms.size());
  const double alpha = 1.0 - confidence.confidence;
  for (std::size_t p = 0; p < draws.size(); ++p) {
    if (draws[p].size() < 2) {
      // No usable replicates at this probe: degenerate interval around the
      // point estimate (callers can detect lo == hi).
      const double point = result.point.covers(result.probe_latency_ms[p])
                               ? result.point.at(result.probe_latency_ms[p])
                               : 0.0;
      result.intervals[p] = {point, point};
      continue;
    }
    result.intervals[p] = {stats::quantile(draws[p], alpha / 2.0),
                           stats::quantile(draws[p], 1.0 - alpha / 2.0)};
  }
  return result;
}

}  // namespace autosens::core
