// The evaluation slices of the paper, packaged: per action type (§3.2),
// business vs consumer (§3.3), conditioning-to-speed quartiles (§3.4),
// time-of-day periods (§3.6), and months (§3.7). Each returns named
// preference curves ready for reporting.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/options.h"
#include "core/pipeline.h"
#include "telemetry/dataset.h"
#include "telemetry/filter.h"

namespace autosens::core {

struct NamedPreference {
  std::string name;
  PreferenceResult result;
  std::size_t records = 0;
};

/// One curve per action type (SelectMail, SwitchFolder, Search, ComposeSend),
/// optionally restricted to one user class. Slices whose analysis fails
/// (e.g. too little data) are skipped.
std::vector<NamedPreference> preference_by_action(
    const telemetry::Dataset& dataset, const AutoSensOptions& options,
    std::optional<telemetry::UserClass> user_class = std::nullopt);

/// Business vs consumer for one action type (paper: SelectMail).
std::vector<NamedPreference> preference_by_user_class(const telemetry::Dataset& dataset,
                                                      const AutoSensOptions& options,
                                                      telemetry::ActionType action);

/// Q1..Q4 by per-user median latency. Quartiles are computed over
/// `quartile_basis` (typically the full scrubbed dataset, so a user's
/// cohort does not depend on the action slice), then the analysis runs on
/// `dataset` filtered per quartile + action (+ optional class).
std::vector<NamedPreference> preference_by_quartile(
    const telemetry::Dataset& dataset, const telemetry::Dataset& quartile_basis,
    const AutoSensOptions& options, telemetry::ActionType action,
    std::optional<telemetry::UserClass> user_class = std::nullopt);

/// The four 6-hour day periods for one action type and class. Uses
/// window-restricted unbiased estimation (analyze_over_windows).
std::vector<NamedPreference> preference_by_period(const telemetry::Dataset& dataset,
                                                  const AutoSensOptions& options,
                                                  telemetry::ActionType action,
                                                  telemetry::UserClass user_class);

/// One curve per 30-day month present in the data, for one action type.
std::vector<NamedPreference> preference_by_month(const telemetry::Dataset& dataset,
                                                 const AutoSensOptions& options,
                                                 telemetry::ActionType action);

}  // namespace autosens::core
