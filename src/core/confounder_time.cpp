#include "core/confounder_time.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/biased.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "obs/trace.h"
#include "stats/sampling.h"
#include "stats/scratch.h"

namespace autosens::core {
namespace {

/// Guards for per-bin temporal rates inside α estimation.
constexpr double kMinTimeFraction = 1e-3;   ///< f_T(L) below this is unusable.
constexpr double kMinReferenceCount = 10.0; ///< Reference bins need real mass.
constexpr double kAlphaFloor = 0.02;        ///< Clamp so 1/α cannot explode.

struct SlotData {
  stats::Histogram counts;     ///< c_T per α-bin, pooled across days.
  stats::Histogram fractions;  ///< Unbiased mass per α-bin (time-weighted).
  std::size_t records = 0;
  double total_time = 0.0;     ///< Milliseconds of data in this class.
};

/// Mean of rate_s / rate_r over latency bins where both are defined.
/// Rates are per unit time: c(L) / (f(L) * total_time).
/// Returns NaN if no bin qualifies.
double pair_alpha(const SlotData& slot, const SlotData& reference) {
  const double slot_mass = slot.fractions.total_weight();
  const double ref_mass = reference.fractions.total_weight();
  if (slot_mass <= 0.0 || ref_mass <= 0.0 || slot.total_time <= 0.0 ||
      reference.total_time <= 0.0) {
    return std::nan("");
  }
  double sum = 0.0;
  std::size_t bins = 0;
  for (std::size_t i = 0; i < slot.counts.size(); ++i) {
    const double f_s = slot.fractions.count(i) / slot_mass;
    const double f_r = reference.fractions.count(i) / ref_mass;
    const double c_r = reference.counts.count(i);
    if (f_s < kMinTimeFraction || f_r < kMinTimeFraction || c_r < kMinReferenceCount) {
      continue;
    }
    const double rate_s = slot.counts.count(i) / (f_s * slot.total_time);
    const double rate_r = c_r / (f_r * reference.total_time);
    sum += rate_s / rate_r;
    ++bins;
  }
  return bins > 0 ? sum / static_cast<double>(bins) : std::nan("");
}

/// Daily windows of time-of-day class `slot` clipped to [begin, end).
std::vector<TimeWindow> class_windows(int slot, std::int64_t slot_ms, std::int64_t begin,
                                      std::int64_t end) {
  std::vector<TimeWindow> windows;
  for (std::int64_t day = telemetry::day_index(begin);
       day * telemetry::kMillisPerDay < end; ++day) {
    TimeWindow w{.begin_ms = day * telemetry::kMillisPerDay + slot * slot_ms,
                 .end_ms = day * telemetry::kMillisPerDay + (slot + 1) * slot_ms};
    w.begin_ms = std::max(w.begin_ms, begin);
    w.end_ms = std::min(w.end_ms, end);
    if (w.end_ms > w.begin_ms) windows.push_back(w);
  }
  return windows;
}

/// One pass over the columns, classifying each record's time into
/// `class_count` groups via `classify` and accumulating per-group α-bin
/// counts + record totals. The per-chunk partials merge in chunk order
/// (counts are unit weights, so the sums are exact regardless, but the fixed
/// order keeps the guarantee uniform across the codebase). Templated on the
/// classifier so the per-record call inlines instead of going through a
/// std::function dispatch.
struct ClassCounts {
  std::vector<stats::Histogram> counts;
  std::vector<std::size_t> records;
};

template <typename ClassifyFn>
ClassCounts classify_records(telemetry::SampleColumns columns, std::size_t class_count,
                             const AutoSensOptions& options, const ClassifyFn& classify) {
  const auto times = columns.times;
  const auto latencies = columns.latencies;
  const auto make_partial = [&] {
    ClassCounts partial;
    partial.counts.reserve(class_count);
    for (std::size_t k = 0; k < class_count; ++k) {
      partial.counts.push_back(
          stats::Histogram::covering(0.0, options.max_latency_ms,
                                     options.alpha_bin_width_ms,
                                     stats::ScratchPool<double>::take()));
    }
    partial.records.assign(class_count, 0);
    return partial;
  };
  // One α-bin geometry shared by every class histogram, so the latency bin
  // indices can be batch-computed once per block (fused classify+fill: each
  // column element is touched exactly once on its way into a class).
  constexpr std::size_t kClassifyBlock = 1024;
  return parallel_map_reduce<ClassCounts>(
      times.size(), options.threads, kRecordChunk,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        auto partial = make_partial();
        const auto& geometry = partial.counts.front();
        const double lo = geometry.lo();
        const double width = geometry.bin_width();
        const std::size_t bins = geometry.size();
        std::array<std::uint32_t, kClassifyBlock> bin;
        for (std::size_t offset = begin; offset < end; offset += kClassifyBlock) {
          const std::size_t m = std::min(kClassifyBlock, end - offset);
          simd::bin_indices(latencies.subspan(offset, m), lo, width, bins,
                            std::span<std::uint32_t>(bin.data(), m));
          // Class assignment + adds replay in element order, exactly like the
          // unfused loop, so the chunk-order determinism guarantee holds.
          for (std::size_t i = 0; i < m; ++i) {
            const std::size_t k = classify(times[offset + i]);
            partial.counts[k].add_at(bin[i]);
            ++partial.records[k];
          }
        }
        return partial;
      },
      [class_count](ClassCounts& accumulator, ClassCounts&& partial) {
        for (std::size_t k = 0; k < class_count; ++k) {
          merge_and_recycle(accumulator.counts[k], std::move(partial.counts[k]));
          accumulator.records[k] += partial.records[k];
        }
      });
}

/// Time-of-day class of `time_ms` for `slot_ms`-wide slots (robust to
/// negative timestamps).
inline std::size_t time_of_day_class(std::int64_t time_ms, std::int64_t slot_ms) noexcept {
  return static_cast<std::size_t>(((time_ms % telemetry::kMillisPerDay) +
                                   telemetry::kMillisPerDay) %
                                  telemetry::kMillisPerDay / slot_ms);
}

}  // namespace

TimeNormalizer::TimeNormalizer(const telemetry::Dataset& dataset,
                               const AutoSensOptions& options)
    : TimeNormalizer(
          [&] {
            if (!dataset.empty() && !dataset.is_sorted()) {
              throw std::invalid_argument("TimeNormalizer: dataset not sorted");
            }
            return dataset.columns();
          }(),
          options) {}

TimeNormalizer::TimeNormalizer(telemetry::SampleColumns columns,
                               const AutoSensOptions& options)
    : options_(options) {
  obs::Span span("alpha_estimate");
  span.attr("records", static_cast<std::int64_t>(columns.size()));
  if (columns.empty()) throw std::invalid_argument("TimeNormalizer: empty dataset");
  if (options_.alpha_slot_ms <= 0 ||
      telemetry::kMillisPerDay % options_.alpha_slot_ms != 0) {
    throw std::invalid_argument("TimeNormalizer: alpha_slot_ms must evenly divide a day");
  }
  const int class_count =
      static_cast<int>(telemetry::kMillisPerDay / options_.alpha_slot_ms);

  const std::int64_t data_begin = columns.begin_time();
  const std::int64_t data_end = columns.end_time();
  const auto times = columns.times;
  const auto latencies = columns.latencies;

  // Per-class counts and unbiased time fractions, pooled across days. Each
  // time-of-day class builds its windows and fraction histogram
  // independently — one task per class.
  std::vector<SlotData> data;
  data.reserve(static_cast<std::size_t>(class_count));
  for (int k = 0; k < class_count; ++k) {
    data.push_back(SlotData{.counts = stats::Histogram::covering(0.0, options_.max_latency_ms,
                                                                 options_.alpha_bin_width_ms),
                            .fractions = stats::Histogram::covering(
                                0.0, options_.max_latency_ms, options_.alpha_bin_width_ms),
                            .records = 0,
                            .total_time = 0.0});
  }
  parallel_for_items(static_cast<std::size_t>(class_count), options_.threads,
                     [&](std::size_t k) {
                       const auto windows = class_windows(static_cast<int>(k),
                                                          options_.alpha_slot_ms, data_begin,
                                                          data_end);
                       data[k].fractions = unbiased_histogram_over_windows_sorted(
                           times, latencies, windows, options_.alpha_bin_width_ms,
                           options_.max_latency_ms);
                       for (const auto& w : windows) {
                         data[k].total_time += static_cast<double>(w.length());
                       }
                     });

  const std::int64_t slot_ms = options_.alpha_slot_ms;
  auto classified = classify_records(
      columns, static_cast<std::size_t>(class_count), options_,
      [slot_ms](std::int64_t time_ms) { return time_of_day_class(time_ms, slot_ms); });
  for (int k = 0; k < class_count; ++k) {
    auto& sd = data[static_cast<std::size_t>(k)];
    sd.counts = std::move(classified.counts[static_cast<std::size_t>(k)]);
    sd.records = classified.records[static_cast<std::size_t>(k)];
  }

  // Reference slots: the busiest classes with enough data (the paper picks
  // multiple references in turn and averages).
  std::vector<std::size_t> order(data.size());
  for (std::size_t k = 0; k < data.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return data[a].records > data[b].records;
  });
  std::vector<std::size_t> references;
  for (const std::size_t idx : order) {
    if (references.size() >= options_.alpha_reference_slots) break;
    if (data[idx].records >= options_.alpha_min_slot_records) references.push_back(idx);
  }
  if (references.empty()) references.push_back(order.front());

  // Mean reference temporal rate, for the fallback α of sparse classes.
  double reference_rate = 0.0;
  for (const std::size_t r : references) {
    reference_rate += data[r].total_time > 0.0
                          ? static_cast<double>(data[r].records) / data[r].total_time
                          : 0.0;
  }
  reference_rate /= static_cast<double>(references.size());

  slots_.reserve(data.size());
  for (int k = 0; k < class_count; ++k) {
    const auto& sd = data[static_cast<std::size_t>(k)];
    SlotStat stat{.slot = k,
                  .records = sd.records,
                  .total_time_ms = sd.total_time,
                  .alpha = 1.0,
                  .alpha_from_fallback = false};
    double sum = 0.0;
    std::size_t used = 0;
    for (const std::size_t r : references) {
      const double a = pair_alpha(sd, data[r]);
      if (std::isfinite(a) && a > 0.0) {
        sum += a;
        ++used;
      }
    }
    if (used > 0) {
      stat.alpha = std::max(sum / static_cast<double>(used), kAlphaFloor);
    } else {
      // Sparse class: fall back to the overall temporal rate ratio.
      const double rate =
          sd.total_time > 0.0 ? static_cast<double>(sd.records) / sd.total_time : 0.0;
      stat.alpha = std::max(rate / reference_rate, kAlphaFloor);
      stat.alpha_from_fallback = true;
    }
    slots_.push_back(stat);
  }
}

double TimeNormalizer::alpha_at(std::int64_t time_ms) const noexcept {
  const auto k = time_of_day_class(time_ms, options_.alpha_slot_ms);
  return k < slots_.size() ? slots_[k].alpha : 1.0;
}

stats::Histogram TimeNormalizer::normalized_biased(const telemetry::Dataset& dataset) const {
  return normalized_biased(dataset.columns());
}

stats::Histogram TimeNormalizer::normalized_biased(telemetry::SampleColumns columns) const {
  const auto times = columns.times;
  const auto latencies = columns.latencies;
  // Hoist the per-slot 1/α into a table; each chunk gathers its weights into
  // a pooled flat array and bulk-adds the latency sub-span against it.
  std::vector<double> inverse_alpha(slots_.size(), 1.0);
  for (std::size_t k = 0; k < slots_.size(); ++k) {
    inverse_alpha[k] = 1.0 / slots_[k].alpha;
  }
  const std::int64_t slot_ms = options_.alpha_slot_ms;
  return parallel_map_reduce<stats::Histogram>(
      times.size(), options_.threads, kRecordChunk,
      [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
        auto histogram =
            stats::Histogram::covering(0.0, options_.max_latency_ms, options_.bin_width_ms,
                                       stats::ScratchPool<double>::take());
        std::vector<double> weights = stats::ScratchPool<double>::take();
        weights.clear();
        weights.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          const auto k = time_of_day_class(times[i], slot_ms);
          weights.push_back(k < inverse_alpha.size() ? inverse_alpha[k] : 1.0);
        }
        histogram.add_all(latencies.subspan(begin, end - begin), weights);
        stats::ScratchPool<double>::give(std::move(weights));
        return histogram;
      },
      merge_and_recycle);
}

std::vector<TimeWindow> period_windows(const telemetry::Dataset& dataset,
                                       telemetry::DayPeriod period) {
  // Hour offsets of each period within a day; evening wraps past midnight.
  constexpr std::array<std::pair<int, int>, telemetry::kDayPeriodCount> kHours = {
      {{8, 14}, {14, 20}, {20, 26}, {2, 8}}};
  const auto [from, to] = kHours[static_cast<std::size_t>(period)];
  const std::int64_t begin = dataset.begin_time();
  const std::int64_t end = dataset.end_time();
  std::vector<TimeWindow> windows;
  for (std::int64_t day = telemetry::day_index(begin) - 1;
       day * telemetry::kMillisPerDay < end; ++day) {
    TimeWindow w{.begin_ms = day * telemetry::kMillisPerDay + from * telemetry::kMillisPerHour,
                 .end_ms = day * telemetry::kMillisPerDay + to * telemetry::kMillisPerHour};
    w.begin_ms = std::max(w.begin_ms, begin);
    w.end_ms = std::min(w.end_ms, end);
    if (w.end_ms > w.begin_ms) windows.push_back(w);
  }
  return windows;
}

std::array<PeriodAlpha, telemetry::kDayPeriodCount> alpha_by_period(
    const telemetry::Dataset& dataset, const AutoSensOptions& options,
    telemetry::DayPeriod reference) {
  if (dataset.empty()) throw std::invalid_argument("alpha_by_period: empty dataset");
  const auto times = dataset.times();
  const auto latencies = dataset.latencies();

  std::vector<SlotData> data;
  data.reserve(telemetry::kDayPeriodCount);
  for (int p = 0; p < telemetry::kDayPeriodCount; ++p) {
    data.push_back(SlotData{.counts = stats::Histogram::covering(0.0, options.max_latency_ms,
                                                                 options.alpha_bin_width_ms),
                            .fractions = stats::Histogram::covering(
                                0.0, options.max_latency_ms, options.alpha_bin_width_ms),
                            .records = 0,
                            .total_time = 0.0});
  }
  parallel_for_items(telemetry::kDayPeriodCount, options.threads, [&](std::size_t p) {
    const auto windows = period_windows(dataset, static_cast<telemetry::DayPeriod>(p));
    data[p].fractions = unbiased_histogram_over_windows_sorted(
        times, latencies, windows, options.alpha_bin_width_ms, options.max_latency_ms);
    for (const auto& w : windows) data[p].total_time += static_cast<double>(w.length());
  });

  // Classify every record's period ONCE in a single pass (the old code
  // rescanned the whole dataset for each of the four periods).
  auto classified = classify_records(
      dataset.columns(), telemetry::kDayPeriodCount, options, [](std::int64_t time_ms) {
        return static_cast<std::size_t>(telemetry::day_period(time_ms));
      });
  for (int p = 0; p < telemetry::kDayPeriodCount; ++p) {
    data[static_cast<std::size_t>(p)].counts =
        std::move(classified.counts[static_cast<std::size_t>(p)]);
    data[static_cast<std::size_t>(p)].records =
        classified.records[static_cast<std::size_t>(p)];
  }

  const auto& ref = data[static_cast<std::size_t>(reference)];
  const double ref_mass = ref.fractions.total_weight();
  std::array<PeriodAlpha, telemetry::kDayPeriodCount> out;
  for (int p = 0; p < telemetry::kDayPeriodCount; ++p) {
    auto& pa = out[static_cast<std::size_t>(p)];
    const auto& pd = data[static_cast<std::size_t>(p)];
    pa.period = static_cast<telemetry::DayPeriod>(p);
    pa.records = pd.records;
    const std::size_t bins = pd.counts.size();
    pa.latency_ms.resize(bins);
    pa.alpha.assign(bins, 0.0);
    pa.valid.assign(bins, 0);
    const double period_mass = pd.fractions.total_weight();
    double sum = 0.0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < bins; ++i) {
      pa.latency_ms[i] = pd.counts.bin_center(i);
      if (period_mass <= 0.0 || ref_mass <= 0.0) continue;
      const double f_p = pd.fractions.count(i) / period_mass;
      const double f_r = ref.fractions.count(i) / ref_mass;
      const double c_r = ref.counts.count(i);
      if (f_p < kMinTimeFraction || f_r < kMinTimeFraction || c_r < kMinReferenceCount) {
        continue;
      }
      const double rate_p = pd.counts.count(i) / (f_p * pd.total_time);
      const double rate_r = c_r / (f_r * ref.total_time);
      pa.alpha[i] = rate_p / rate_r;
      pa.valid[i] = 1;
      sum += pa.alpha[i];
      ++used;
    }
    pa.mean_alpha = used > 0 ? sum / static_cast<double>(used) : 0.0;
  }
  return out;
}

TwoSlotExample normalize_two_slot_example(double day_count_low, double day_count_high,
                                          double day_frac_low, double day_frac_high,
                                          double night_count_low, double night_count_high,
                                          double night_frac_low, double night_frac_high) {
  TwoSlotExample out;
  // Naive pooling (what ignoring the confounder would conclude).
  out.naive_low = (day_count_low + night_count_low) / (day_frac_low + night_frac_low);
  out.naive_high = (day_count_high + night_count_high) / (day_frac_high + night_frac_high);
  // α per latency bin with "day" as reference, then averaged (§2.4.1).
  out.alpha_low = (night_count_low / night_frac_low) / (day_count_low / day_frac_low);
  out.alpha_high = (night_count_high / night_frac_high) / (day_count_high / day_frac_high);
  out.alpha = 0.5 * (out.alpha_low + out.alpha_high);
  // Normalized night counts and the pooled activity estimate.
  out.normalized_low = night_count_low / out.alpha;
  out.normalized_high = night_count_high / out.alpha;
  out.activity_low = (day_count_low + out.normalized_low) / (day_frac_low + night_frac_low);
  out.activity_high =
      (day_count_high + out.normalized_high) / (day_frac_high + night_frac_high);
  return out;
}

}  // namespace autosens::core
