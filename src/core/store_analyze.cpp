#include "core/store_analyze.h"

#include <stdexcept>
#include <utility>

#include "core/biased.h"
#include "core/pipeline.h"
#include "stats/rng.h"

namespace autosens::core {

void analyze_store_windows(const telemetry::store::StoredDataset& store,
                           const AutoSensOptions& options, const StoreStreamOptions& stream,
                           const std::function<void(const StoreWindowResult&)>& sink) {
  if (stream.window_ms <= 0) {
    throw std::invalid_argument("analyze_store_windows: window_ms must be positive");
  }
  if (store.partitions().empty()) return;
  const std::int64_t min_time = store.min_time_ms();
  const std::int64_t max_time = store.max_time_ms();
  for (std::int64_t begin = min_time; begin <= max_time; begin += stream.window_ms) {
    const std::int64_t end = begin + stream.window_ms;
    auto load = store.load_window(begin, end);
    StoreWindowResult result;
    result.begin_ms = begin;
    result.end_ms = end;
    result.partitions_scanned = load.partitions_scanned;
    result.partitions_pruned = load.partitions_pruned;
    result.bytes_read = load.bytes_read;

    telemetry::Dataset dataset = std::move(load.dataset);
    if (stream.scrub) {
      dataset = telemetry::validate(dataset, stream.validation).dataset;
    }
    if (stream.action.has_value() || stream.user_class.has_value()) {
      dataset = dataset.filtered([&](const telemetry::ActionRecord& r) {
        return (!stream.action.has_value() || r.action == *stream.action) &&
               (!stream.user_class.has_value() || r.user_class == *stream.user_class);
      });
    }
    result.records = dataset.size();
    if (!dataset.empty()) {
      try {
        if (stream.with_confidence) {
          stats::Random random(stream.confidence_seed);
          result.confidence = analyze_with_confidence(dataset, options, stream.probe_latencies,
                                                      stream.confidence, random);
          result.preference = result.confidence->point;
        } else {
          result.preference = analyze(dataset, options);
        }
      } catch (const std::invalid_argument&) {
        // Too thin to support a curve (e.g. no sample at the reference
        // latency): report the counts, leave the estimates empty.
      }
    }
    sink(result);
  }
}

std::vector<StoreWindowResult> analyze_store_windows(
    const telemetry::store::StoredDataset& store, const AutoSensOptions& options,
    const StoreStreamOptions& stream) {
  std::vector<StoreWindowResult> results;
  analyze_store_windows(store, options, stream,
                        [&](const StoreWindowResult& r) { results.push_back(r); });
  return results;
}

stats::Histogram scan_biased_histogram(const telemetry::store::StoredDataset& store,
                                       const AutoSensOptions& options) {
  stats::Histogram total = make_latency_histogram(options);
  for (std::size_t i = 0; i < store.partitions().size(); ++i) {
    const telemetry::store::PartitionData part = store.read_partition(i);
    total.merge(biased_histogram(part.latencies(), options));
  }
  return total;
}

}  // namespace autosens::core
