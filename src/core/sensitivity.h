// Scalar summaries of a preference curve, plus a cheap pre-analysis
// screening test. Service owners rarely consume a whole curve; they ask
// "how sensitive is this action, in one number?" and "is it worth running
// the full analysis on this slice at all?".
#pragma once

#include <string_view>

#include "core/options.h"
#include "core/preference.h"
#include "stats/histogram.h"
#include "telemetry/dataset.h"

namespace autosens::core {

/// Qualitative sensitivity classes, thresholded on the 1-second drop.
enum class SensitivityClass {
  kInsensitive,  ///< < 5 % drop at 1 s vs the reference.
  kModerate,     ///< 5–15 %.
  kHigh,         ///< > 15 %.
};

std::string_view to_string(SensitivityClass c) noexcept;

/// One-number views of a preference curve.
struct SensitivitySummary {
  double drop_at_500ms = 0.0;   ///< 1 - NLP(500), 0 when unsupported.
  double drop_at_1000ms = 0.0;
  double drop_at_2000ms = 0.0;
  /// Mean d(NLP)/d(latency) over [reference, 1500 ms], per 100 ms — the
  /// "latency elasticity" of this activity (negative = activity falls).
  double slope_per_100ms = 0.0;
  /// Latency at which NLP first falls below 0.8 (0 if it never does within
  /// the supported range).
  double latency_at_nlp_08 = 0.0;
  SensitivityClass classification = SensitivityClass::kInsensitive;
};

/// Summarize a computed preference curve. Unsupported probes yield zeros.
SensitivitySummary summarize(const PreferenceResult& preference);

/// Cheap screening: distribution distances between B and U without the
/// smoothing/normalization machinery. A slice whose biased and unbiased
/// distributions are statistically indistinguishable cannot yield a
/// meaningful preference curve.
struct ScreeningReport {
  double total_variation = 0.0;
  double kolmogorov_smirnov = 0.0;
  double mean_shift_ms = 0.0;  ///< mean(B) - mean(U); negative = leans fast.
  bool worth_analyzing = false;
};

/// Runs the B/U estimation only (honoring options.unbiased_method) and
/// compares. `min_distance` is the TV-distance threshold for the verdict.
ScreeningReport screen(const telemetry::Dataset& dataset, const AutoSensOptions& options,
                       double min_distance = 0.01);

}  // namespace autosens::core
