// Runtime-dispatched SIMD kernels for the dense analysis loops (histogram
// binning, FIR smoothing, element-wise maps, and reductions).
//
// Dispatch mirrors the PCLMULQDQ CRC pattern in telemetry/binlog.cpp:
// `__builtin_cpu_supports` picks an `__attribute__((target("avx2")))` variant
// at runtime, the scalar fallback is always compiled (and always tested), and
// nothing here requires -mavx2 on the base build.
//
// The determinism contract (DESIGN.md "SIMD kernels & dispatch"): every
// kernel produces BIT-IDENTICAL results on the scalar and AVX2 paths.  Three
// rules make that hold:
//
//  1. Bin selection uses the exact same arithmetic in both paths — one
//     correctly-rounded division per element (`vdivpd` == `divsd`), never a
//     reciprocal multiply, so boundary values land in the same bin.
//  2. Weighted accumulation into shared bins happens in element order in
//     both paths (the vector path only vectorizes the index math, the adds
//     replay in order).  Unit-weight fills may use per-lane partial
//     histograms because integer-valued counts add exactly in any order.
//     Weight totals are a rule-3 reduction (sum_interleaved), not a serial
//     left fold.
//  3. Reductions whose order matters (sums of arbitrary doubles) are defined
//     with a fixed 4-lane interleaved accumulation that both paths implement
//     literally; order-insensitive reductions (min/max) need no such care.
//
// Level selection: AVX2 when the CPU supports it, unless the
// AUTOSENS_FORCE_SCALAR environment variable (1/true/yes/on) or a test
// override pins the scalar path.  The selected level is published once as
// the `autosens_simd_level` gauge and a debug log line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace autosens::core::simd {

/// Dispatch level of the kernel implementations. Values are stable (they are
/// exported through the `autosens_simd_level` gauge): 0 = scalar, 2 = AVX2.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 2,
};

std::string_view to_string(Level level) noexcept;

/// The level every kernel below dispatches on. Detection (CPU features +
/// AUTOSENS_FORCE_SCALAR) runs once; a test override takes precedence.
Level active_level() noexcept;

/// CPU-detected level, ignoring the environment knob and test overrides.
Level detected_level() noexcept;

/// Test hook: pin the dispatch level (std::nullopt restores detection and
/// the environment knob). Takes effect on the next kernel call.
void set_level_override(std::optional<Level> level) noexcept;

/// (Re-)publish the active level through obs: sets the `autosens_simd_level`
/// gauge and emits one `simd.dispatch` debug log line. Called automatically
/// on first detection; call again after obs::set_enabled(true) to make the
/// gauge visible in a later snapshot.
void publish_level();

// ---------------------------------------------------------------------------
// Histogram binning. All fill kernels share Histogram::bin_index semantics:
// offset = (v - lo) / width; NaN and offsets <= 0 clamp to bin 0, offsets at
// or beyond the upper edge clamp to the last bin.

/// Scalar reference bin index — the single definition of the binning
/// semantics, shared by every fill kernel below and by
/// stats::Histogram::bin_index. NaN and non-positive offsets return 0
/// (the cast of a NaN or huge offset would otherwise be UB); offsets at or
/// beyond the upper edge return counts_size - 1. Requires counts_size >= 1.
inline std::size_t bin_index_scalar(double value, double lo, double width,
                                    std::size_t counts_size) noexcept {
  const double offset = (value - lo) / width;
  if (!(offset > 0.0)) return 0;  // negatives and NaN
  if (offset >= static_cast<double>(counts_size)) return counts_size - 1;
  return static_cast<std::size_t>(offset);
}

/// Clamped bin index of each value (identical to Histogram::bin_index).
/// `counts_size` must be >= 1 and < 2^31; `out.size() >= values.size()`.
void bin_indices(std::span<const double> values, double lo, double width,
                 std::size_t counts_size, std::span<std::uint32_t> out) noexcept;

/// counts[bin(v)] += 1.0 for every value. The AVX2 path accumulates into
/// per-lane partial histograms merged at the end — exact for integer-valued
/// counts, so the result is bit-identical to the scalar loop.
void histogram_fill(std::span<const double> values, double lo, double width,
                    std::span<double> counts) noexcept;

/// counts[bin(v)] += weight for every value (constant weight). Adds replay
/// in element order in both paths (repeated addition of a non-integer weight
/// is order-sensitive), only the index math is vectorized.
void histogram_fill_const(std::span<const double> values, double weight, double lo,
                          double width, std::span<double> counts) noexcept;

/// counts[bin(values[i])] += weights[i], accumulating in element order in
/// both paths. Returns the weight total computed with sum_interleaved (the
/// fixed 4-lane reduction, bit-identical across dispatch levels) rather than
/// a serial left fold: the serial chain's add latency would bound the whole
/// fill. The total can differ from an elementwise left fold in the last ulp.
/// Spans must be the same length.
double histogram_fill_weighted(std::span<const double> values,
                               std::span<const double> weights, double lo,
                               double width, std::span<double> counts) noexcept;

// ---------------------------------------------------------------------------
// FIR convolution (Savitzky–Golay interior).

/// Valid-mode FIR convolution: out[i] = sum_j kernel[j] * signal[i + j] for
/// i in [0, signal.size() - kernel.size()]. Each output accumulates over j
/// serially with separate multiply and add (no FMA contraction), so every
/// lane of the AVX2 path rounds exactly like the scalar loop.
/// Requires signal.size() >= kernel.size() and out.size() >=
/// signal.size() - kernel.size() + 1.
void fir_convolve_valid(std::span<const double> signal, std::span<const double> kernel,
                        std::span<double> out) noexcept;

// ---------------------------------------------------------------------------
// Element-wise maps (independent per element, so trivially bit-identical).

/// values[i] *= factor.
void scale(std::span<double> values, double factor) noexcept;

/// values[i] /= divisor (kept as a division — not a reciprocal multiply —
/// to match scalar rounding).
void divide(std::span<double> values, double divisor) noexcept;

/// values[i] = max(values[i], floor_value). NaN inputs are left unchanged.
void clamp_min(std::span<double> values, double floor_value) noexcept;

/// dst[i] += src[i]. Spans must be the same length.
void add_assign(std::span<double> dst, std::span<const double> src) noexcept;

// ---------------------------------------------------------------------------
// Reductions.

struct MinMax {
  double min = 0.0;
  double max = 0.0;
};

/// Min and max of a non-empty span (NaN entries are ignored; if every entry
/// is NaN both fields are NaN). Order-insensitive, so the AVX2 path is
/// bit-identical by construction.
MinMax minmax(std::span<const double> values) noexcept;

/// Sum with a fixed 4-lane interleaved accumulation: lane k sums elements
/// k, k+4, k+8, ...; lanes fold left-to-right, then the tail (< 4 elements)
/// adds serially. Both paths implement this order literally, so the result
/// is bit-identical across scalar/AVX2 (but differs from a plain serial sum).
double sum_interleaved(std::span<const double> values) noexcept;

/// sum |a[i]/a_total - b[i]/b_total| with the interleaved accumulation
/// order of sum_interleaved. Feeds stats::total_variation_distance.
double l1_prob_diff(std::span<const double> a, std::span<const double> b,
                    double a_total, double b_total) noexcept;

/// Bhattacharyya coefficient sum sqrt((a[i]/a_total) * (b[i]/b_total)) with
/// the interleaved accumulation order. Feeds stats::hellinger_distance.
double bhattacharyya(std::span<const double> a, std::span<const double> b,
                     double a_total, double b_total) noexcept;

}  // namespace autosens::core::simd
