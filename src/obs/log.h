// Minimal structured logger (header-only): a global level, an event name,
// and key=value fields on one line. Replaces the ad-hoc std::cerr prints in
// the CLI and the net layer so verbosity is controlled in one place
// (CLI --log-level {quiet,info,debug}).
//
//   obs::log_info("collector.listen", {{"port", port}});
//     -> info: collector.listen port=9091
//
// Thread-safe: the level is a relaxed atomic and each message is a single
// formatted write to the sink (no interleaving within one line).
#pragma once

#include <atomic>
#include <initializer_list>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>

namespace autosens::obs {

enum class LogLevel : int { kQuiet = 0, kInfo = 1, kDebug = 2 };

namespace detail {
inline std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
inline std::atomic<std::ostream*> g_log_sink{&std::cerr};
}  // namespace detail

inline LogLevel log_level() noexcept {
  return static_cast<LogLevel>(detail::g_log_level.load(std::memory_order_relaxed));
}
inline void set_log_level(LogLevel level) noexcept {
  detail::g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}
/// Redirect output (tests); nullptr restores std::cerr.
inline void set_log_sink(std::ostream* sink) noexcept {
  detail::g_log_sink.store(sink != nullptr ? sink : &std::cerr, std::memory_order_relaxed);
}

inline std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  if (name == "quiet") return LogLevel::kQuiet;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  return std::nullopt;
}

/// One key=value field. Values with spaces or quotes are double-quoted.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, const std::string& v) : key(k), value(v) {}
  LogField(std::string_view k, bool v) : key(k), value(v ? "true" : "false") {}
  template <typename T>
    requires std::is_arithmetic_v<T>
  LogField(std::string_view k, T v) : key(k) {
    std::ostringstream out;
    out << v;
    value = out.str();
  }
};

inline void log(LogLevel level, std::string_view event,
                std::initializer_list<LogField> fields = {}) {
  if (static_cast<int>(level) > static_cast<int>(log_level()) ||
      level == LogLevel::kQuiet) {
    return;
  }
  std::ostringstream line;
  line << (level == LogLevel::kDebug ? "debug: " : "info: ") << event;
  for (const auto& field : fields) {
    line << ' ' << field.key << '=';
    const bool quote =
        field.value.empty() ||
        field.value.find_first_of(" \t\"=") != std::string::npos;
    if (!quote) {
      line << field.value;
    } else {
      line << '"';
      for (const char c : field.value) {
        if (c == '"' || c == '\\') line << '\\';
        line << c;
      }
      line << '"';
    }
  }
  line << '\n';
  *detail::g_log_sink.load(std::memory_order_relaxed) << line.str() << std::flush;
}

inline void log_info(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kInfo, event, fields);
}
inline void log_debug(std::string_view event, std::initializer_list<LogField> fields = {}) {
  log(LogLevel::kDebug, event, fields);
}

}  // namespace autosens::obs
