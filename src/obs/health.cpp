#include "obs/health.h"

#include <algorithm>
#include <cstdio>

namespace autosens::obs {

Health& Health::global() {
  static Health instance;
  return instance;
}

void Health::set_component(std::string_view name, bool ready, std::string_view detail) {
  std::lock_guard lock(mutex_);
  auto it = components_.find(name);
  if (it == components_.end()) {
    it = components_.emplace(std::string(name), Component{}).first;
    it->second.name = std::string(name);
  }
  it->second.ready = ready;
  it->second.detail = std::string(detail);
}

void Health::remove_component(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = components_.find(name);
  if (it != components_.end()) components_.erase(it);
}

std::vector<Health::Component> Health::components() const {
  std::lock_guard lock(mutex_);
  std::vector<Component> out;
  out.reserve(components_.size());
  for (const auto& [name, component] : components_) out.push_back(component);
  return out;
}

bool Health::all_ready() const {
  std::lock_guard lock(mutex_);
  for (const auto& [name, component] : components_) {
    if (!component.ready) return false;
  }
  return true;
}

void Health::clear() {
  std::lock_guard lock(mutex_);
  components_.clear();
}

StatusRegistry& StatusRegistry::global() {
  static StatusRegistry instance;
  return instance;
}

std::uint64_t StatusRegistry::add_section(std::string_view name, Provider provider) {
  std::lock_guard lock(mutex_);
  const std::uint64_t id = next_id_++;
  sections_.push_back(Section{id, std::string(name), std::move(provider)});
  return id;
}

void StatusRegistry::remove_section(std::uint64_t id) {
  std::lock_guard lock(mutex_);
  sections_.erase(std::remove_if(sections_.begin(), sections_.end(),
                                 [id](const Section& s) { return s.id == id; }),
                  sections_.end());
}

std::vector<std::pair<std::string, std::string>> StatusRegistry::render() const {
  // Copy the sections under the lock, run the providers outside it: a
  // provider is free to take its component's own locks (e.g. the collector's
  // session mutex) without ordering against ours.
  std::vector<Section> sections;
  {
    std::lock_guard lock(mutex_);
    sections = sections_;
  }
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(sections.size());
  for (const auto& section : sections) {
    std::string value;
    try {
      value = section.provider();
    } catch (const std::exception& e) {
      value = "\"error: " + json_escape(e.what()) + "\"";
    } catch (...) {
      value = "\"error\"";
    }
    out.emplace_back(section.name, std::move(value));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void StatusRegistry::clear() {
  std::lock_guard lock(mutex_);
  sections_.clear();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace autosens::obs
