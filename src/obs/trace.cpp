#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <sstream>

#include "obs/metrics.h"

namespace autosens::obs {
namespace {

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Dense per-thread index for trace "tid" fields (stable across spans on
/// the same thread, small enough to read in the Chrome UI).
std::uint64_t thread_index() noexcept {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// The innermost open span id on this thread (parent for new spans).
thread_local std::vector<std::uint64_t> t_span_stack;

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out += c;
  }
  return out;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

void Tracer::set_enabled(bool on) {
  if (on) {
    std::uint64_t expected = 0;
    epoch_ns_.compare_exchange_strong(expected, monotonic_ns());
  }
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  spans_.clear();
  ring_.clear();
  ring_next_ = 0;
}

std::vector<SpanRecord> Tracer::recent() const {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < ring_capacity_) {
    out = ring_;
  } else {
    // ring_next_ is the oldest slot once the ring has wrapped.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(ring_next_));
  }
  return out;
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  ring_capacity_ = std::max<std::size_t>(capacity, 1);
  ring_.clear();
  ring_next_ = 0;
}

std::size_t Tracer::ring_capacity() const {
  std::lock_guard lock(mutex_);
  return ring_capacity_;
}

void Tracer::set_process(std::uint8_t process) noexcept {
  process_.store(process, std::memory_order_relaxed);
}

std::uint64_t Tracer::ensure_trace_id() {
  std::uint64_t id = trace_id_.load(std::memory_order_relaxed);
  if (id != 0) return id;
  // Any nonzero value unique-enough per run works: the id only groups the
  // processes of one replay|collect pair. Mix the clock with this process's
  // tag; CAS so concurrent emitters agree on one id.
  std::uint64_t fresh = monotonic_ns() ^
                        (static_cast<std::uint64_t>(process()) << 56) ^
                        0x9E3779B97F4A7C15ULL;
  if (fresh == 0) fresh = 1;
  if (trace_id_.compare_exchange_strong(id, fresh, std::memory_order_relaxed)) {
    return fresh;
  }
  return id;
}

std::uint64_t Tracer::now_us() const noexcept {
  return (monotonic_ns() - epoch_ns_.load(std::memory_order_relaxed)) / 1000;
}

void Tracer::record(SpanRecord&& span) {
  std::lock_guard lock(mutex_);
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(span);
  } else {
    ring_[ring_next_] = span;
    ring_next_ = (ring_next_ + 1) % ring_capacity_;
  }
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  write_chrome_trace(out, snapshot());
}

void Tracer::write_chrome_trace(std::ostream& out,
                                const std::vector<SpanRecord>& spans) const {
  const auto pid = static_cast<std::uint32_t>(process());
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << json_escape(span.name)
        << "\", \"cat\": \"autosens\", \"ph\": \"X\", \"ts\": " << span.start_us
        << ", \"dur\": " << span.duration_us << ", \"pid\": " << pid
        << ", \"tid\": " << span.thread
        << ", \"args\": {\"id\": " << span.id << ", \"parent\": " << span.parent;
    for (const auto& [key, value] : span.attributes) {
      out << ", \"" << json_escape(key) << "\": \"" << json_escape(value) << "\"";
    }
    out << "}}";
  }
  out << "\n]}\n";
}

std::vector<SpanAggregate> Tracer::aggregate() const {
  const auto spans = snapshot();
  std::vector<SpanAggregate> out;
  // Spans are recorded at destruction, so record order lists children before
  // their parents; keep the first *start* per (name, depth) to order the
  // summary the way the stages actually ran.
  std::vector<std::uint64_t> first_start;
  for (const auto& span : spans) {
    const double ms = static_cast<double>(span.duration_us) / 1000.0;
    std::size_t slot = out.size();
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].name == span.name && out[i].depth == span.depth) {
        slot = i;
        break;
      }
    }
    if (slot == out.size()) {
      out.push_back({span.name, span.depth, 0, 0.0, ms, ms});
      first_start.push_back(span.start_us);
    }
    ++out[slot].count;
    out[slot].total_ms += ms;
    out[slot].min_ms = std::min(out[slot].min_ms, ms);
    out[slot].max_ms = std::max(out[slot].max_ms, ms);
    first_start[slot] = std::min(first_start[slot], span.start_us);
  }
  std::vector<std::size_t> order(out.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Tie-break equal starts (parent and child can open in the same
  // microsecond) by depth so parents list before their children.
  std::stable_sort(order.begin(), order.end(),
                   [&first_start, &out](std::size_t a, std::size_t b) {
                     if (first_start[a] != first_start[b]) {
                       return first_start[a] < first_start[b];
                     }
                     return out[a].depth < out[b].depth;
                   });
  std::vector<SpanAggregate> sorted;
  sorted.reserve(out.size());
  for (const std::size_t i : order) sorted.push_back(std::move(out[i]));
  return sorted;
}

Span::Span(std::string_view name, Histogram* latency_ms) : latency_ms_(latency_ms) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  record_.name = std::string(name);
  record_.id = tracer.next_id();
  record_.parent = t_span_stack.empty() ? 0 : t_span_stack.back();
  record_.depth = static_cast<std::uint32_t>(t_span_stack.size());
  record_.thread = thread_index();
  record_.start_us = tracer.now_us();
  t_span_stack.push_back(record_.id);
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  const std::uint64_t end_us = tracer.now_us();
  record_.duration_us = end_us >= record_.start_us ? end_us - record_.start_us : 0;
  if (!t_span_stack.empty() && t_span_stack.back() == record_.id) t_span_stack.pop_back();
  if (latency_ms_ != nullptr) {
    latency_ms_->observe(static_cast<double>(record_.duration_us) / 1000.0);
  }
  tracer.record(std::move(record_));
}

void Span::link_parent(std::uint64_t parent_id) noexcept {
  if (!active_ || parent_id == 0) return;
  record_.parent = parent_id;
}

std::uint64_t current_span_id() noexcept {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

void Span::attr(std::string_view key, std::string value) {
  if (!active_) return;
  record_.attributes.emplace_back(std::string(key), std::move(value));
}

void Span::attr(std::string_view key, std::int64_t value) {
  if (!active_) return;
  record_.attributes.emplace_back(std::string(key), std::to_string(value));
}

void Span::attr(std::string_view key, double value) {
  if (!active_) return;
  std::ostringstream out;
  out << value;
  record_.attributes.emplace_back(std::string(key), out.str());
}

}  // namespace autosens::obs
