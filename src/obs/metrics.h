// Lock-cheap metrics registry: counters, gauges, and fixed-bucket latency
// histograms behind pre-registered handles. Registration (cold path) takes a
// mutex; every hot-path update is one enabled() branch plus one relaxed
// atomic add, so instrumented-but-disabled code costs a predictable branch.
//
// The whole subsystem is off by default (enabled() == false): instrumented
// hot loops in the analysis pipeline, the collector, and the thread pool pay
// near-zero overhead until a caller opts in (CLI --metrics-out / --stats).
// Snapshots serialize as Prometheus text exposition format or JSON;
// parse_prometheus() round-trips the text form (and powers the `metrics`
// CLI subcommand).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace autosens::obs {

/// Process-wide instrumentation switch. Relaxed-atomic read; updates made
/// while disabled are dropped, not buffered.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// An ungated relaxed atomic counter cell — always counts, independent of
/// enabled(). Use directly where the count is functional state rather than
/// telemetry (e.g. CollectorStats); Registry counters wrap one behind the
/// enabled() gate.
class RawCounter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Monotonic event counter (Prometheus `counter`).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (enabled()) cell_.add(n);
  }
  std::uint64_t value() const noexcept { return cell_.get(); }

 private:
  friend class Registry;
  Counter() = default;
  RawCounter cell_;
};

/// Last-write-wins instantaneous value (Prometheus `gauge`).
class Gauge {
 public:
  void set(double v) noexcept {
    if (enabled()) bits_.store(encode(v), std::memory_order_relaxed);
  }
  void add(double delta) noexcept;
  double value() const noexcept { return decode(bits_.load(std::memory_order_relaxed)); }

 private:
  friend class Registry;
  Gauge() = default;
  static std::uint64_t encode(double v) noexcept;
  static double decode(std::uint64_t bits) noexcept;
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket latency histogram (Prometheus `histogram`). Bucket upper
/// bounds are set at registration; observations clamp into the implicit
/// +Inf bucket. Each observe() is one branchy bucket search (typically
/// <= 16 bounds) plus two relaxed atomic adds.
class Histogram {
 public:
  void observe(double value) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;  ///< Strictly increasing upper bounds.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds+1 cells.
  std::atomic<std::uint64_t> sum_millis_{0};  ///< Sum scaled by 1000 (fixed point).
};

/// Default latency bucket ladder (milliseconds), a 1-2-5 decade series.
std::vector<double> default_latency_buckets_ms();

/// One exported sample: a metric (with its label set baked into the name,
/// e.g. `autosens_stage_latency_ms_bucket{stage="unbiased",le="50"}`) and
/// its value at snapshot time.
struct Sample {
  std::string name;
  double value = 0.0;
};

/// Named-handle registry. Handles returned by counter()/gauge()/histogram()
/// are valid for the registry's lifetime; registering the same full name
/// (including any `{label="..."}` suffix) twice returns the same handle.
class Registry {
 public:
  /// The process-global registry used by the library's instrumentation.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// `name` may carry a fixed label set: `requests_total{path="/x"}`.
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::string_view help = "",
                       std::vector<double> bounds = default_latency_buckets_ms());

  /// Flat list of samples sorted by (family name, label set) so successive
  /// snapshots diff cleanly; histograms expand into cumulative
  /// _bucket/_sum/_count series (buckets in bound order) as in the text
  /// exposition.
  std::vector<Sample> samples() const;

  /// Prometheus text exposition format (# HELP / # TYPE + samples).
  void write_prometheus(std::ostream& out) const;
  /// JSON: an array of {"name","type","help","value"| "buckets"} objects.
  void write_json(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string base;    ///< Metric family name, no labels.
    std::string labels;  ///< Label set without braces ("" if none).
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(Kind kind, std::string_view name, std::string_view help);
  /// Entries ordered by (base, labels); caller must hold mutex_. All export
  /// paths share this so /metrics, /metrics.json, and samples() agree.
  std::vector<const Entry*> sorted_entries_locked() const;

  mutable std::mutex mutex_;
  std::deque<Entry> entries_;  ///< deque: handles stay put as entries grow.
};

/// Shorthand for the global registry.
inline Registry& registry() { return Registry::global(); }

/// Parse Prometheus text exposition format back into samples (comment and
/// blank lines skipped). Label values may contain escaped quotes/backslashes
/// and spaces; values may use exponent notation (`1e+06`, `+Inf`, `NaN`); an
/// optional trailing integer timestamp is accepted and ignored. Throws
/// std::invalid_argument on a malformed line or a duplicate metric+label
/// row. Round-trips Registry::write_prometheus output.
std::vector<Sample> parse_prometheus(std::istream& in);

}  // namespace autosens::obs
