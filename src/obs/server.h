// obs::ObsServer — the live introspection plane: a small dependency-free
// HTTP/1.1 server (blocking accept loop on its own thread) exposing the
// metrics registry, component health, process status, and recent trace
// spans of a running autosens process:
//
//   GET /metrics       Prometheus text exposition (sorted, snapshot-consistent)
//   GET /metrics.json  the same registry as JSON
//   GET /healthz       liveness + per-component readiness (503 when unready)
//   GET /statusz       uptime, build info, runtime gauges, status sections
//   GET /tracez        recent completed spans (JSON; ?format=chrome for
//                      Chrome trace_event format)
//
// All socket I/O goes through net::SocketOps, so the server is
// fault-injectable with the same seeded FaultPlan machinery as the
// emitter/collector. One connection is served at a time (scrapes are small
// and rare); the accept loop polls a stop flag so shutdown is prompt. This
// listener is deliberately the seed of the always-on analysis service's
// query front-end (ROADMAP item 3).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "net/socket.h"
#include "obs/metrics.h"

namespace autosens::obs {

struct ObsServerOptions {
  std::uint16_t port = 0;          ///< 0 = ephemeral; see ObsServer::port().
  net::SocketOps* ops = nullptr;   ///< Fault-injection seam; null = real syscalls.
  Registry* registry = nullptr;    ///< Registry to export; null = the global one.
  int poll_interval_ms = 100;      ///< Stop-flag poll cadence of the accept loop.
  std::size_t max_request_bytes = 8192;  ///< Oversized requests get 400.
};

class ObsServer {
 public:
  /// Binds 127.0.0.1:port and starts the serve thread. Throws SocketError
  /// when the port cannot be bound.
  explicit ObsServer(const ObsServerOptions& options = {});
  ~ObsServer();

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// The bound port (the ephemeral port when options.port was 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Requests served so far (any status).
  std::uint64_t requests() const noexcept { return requests_.get(); }

  void stop();

  struct Response {
    int status = 200;
    std::string content_type;
    std::string body;
  };
  /// Dispatch `target` (path + optional ?query) through the same handlers
  /// the socket loop uses — exposed for tests and the encode-only bench.
  Response handle(std::string_view target) const;

 private:
  void serve();
  void serve_connection(net::Socket connection);

  ObsServerOptions options_;
  net::Socket listener_;
  std::uint16_t port_ = 0;
  std::uint64_t start_us_ = 0;
  std::atomic<bool> stop_{false};
  RawCounter requests_;
  std::thread thread_;
};

/// Minimal loopback HTTP/1.1 GET used by `autosens watch` and the tests.
/// Throws net::SocketError on transport failure, std::runtime_error on a
/// malformed response.
struct HttpResponse {
  int status = 0;
  std::string content_type;
  std::string body;
};
HttpResponse http_get(std::uint16_t port, const std::string& target,
                      net::SocketOps& ops = net::real_socket_ops());

}  // namespace autosens::obs
