// Component readiness and status sections for the live introspection plane
// (obs::ObsServer's /healthz and /statusz endpoints). Long-lived components
// — the analysis pipeline, the collector, streaming sessions — publish a
// ready bit plus a detail string into the process-global Health registry,
// and optionally a JSON section provider into the StatusRegistry. Both are
// tiny mutex-guarded maps: registration and scrapes are cold paths.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace autosens::obs {

/// Liveness + readiness. /healthz answers 200 only when every registered
/// component reports ready; a process with no components is trivially live.
class Health {
 public:
  struct Component {
    std::string name;
    bool ready = false;
    std::string detail;
  };

  static Health& global();

  Health() = default;
  Health(const Health&) = delete;
  Health& operator=(const Health&) = delete;

  /// Insert or update a component's readiness (last write wins).
  void set_component(std::string_view name, bool ready, std::string_view detail = "");
  /// Components with a shorter lifetime than the process must remove
  /// themselves before destruction.
  void remove_component(std::string_view name);

  /// All components sorted by name.
  std::vector<Component> components() const;
  bool all_ready() const;

  /// Drop everything (tests).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Component, std::less<>> components_;
};

/// Named /statusz sections. A provider returns one JSON value (object,
/// array, or scalar — already encoded) rendered under "sections".<name>.
class StatusRegistry {
 public:
  /// Returns pre-encoded JSON for the section's value.
  using Provider = std::function<std::string()>;

  static StatusRegistry& global();

  StatusRegistry() = default;
  StatusRegistry(const StatusRegistry&) = delete;
  StatusRegistry& operator=(const StatusRegistry&) = delete;

  /// Register a section; the returned id unregisters it. Providers whose
  /// captured state dies before the process must remove_section first.
  std::uint64_t add_section(std::string_view name, Provider provider);
  void remove_section(std::uint64_t id);

  /// (name, rendered JSON value) pairs sorted by name. A provider that
  /// throws renders as a JSON string carrying the error.
  std::vector<std::pair<std::string, std::string>> render() const;

  /// Drop everything (tests).
  void clear();

 private:
  struct Section {
    std::uint64_t id = 0;
    std::string name;
    Provider provider;
  };
  mutable std::mutex mutex_;
  std::vector<Section> sections_;
  std::uint64_t next_id_ = 1;
};

/// Escape a string for embedding inside a JSON string literal (quotes,
/// backslashes, and control characters).
std::string json_escape(std::string_view s);

}  // namespace autosens::obs
