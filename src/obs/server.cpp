#include "obs/server.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/health.h"
#include "obs/log.h"
#include "obs/trace.h"

#ifndef AUTOSENS_BUILD_TYPE
#define AUTOSENS_BUILD_TYPE "unknown"
#endif

namespace autosens::obs {
namespace {

std::uint64_t monotonic_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string format_double(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

void append_tracez_span(std::ostream& out, const SpanRecord& span) {
  // Ids carry the process tag in the top byte and can exceed 2^53; emit
  // them as strings so JSON consumers keep them exact.
  out << "{\"name\": \"" << json_escape(span.name) << "\", \"id\": \"" << span.id
      << "\", \"parent\": \"" << span.parent << "\", \"depth\": " << span.depth
      << ", \"thread\": " << span.thread << ", \"start_us\": " << span.start_us
      << ", \"duration_us\": " << span.duration_us << ", \"attrs\": {";
  bool first = true;
  for (const auto& [key, value] : span.attributes) {
    if (!first) out << ", ";
    first = false;
    out << "\"" << json_escape(key) << "\": \"" << json_escape(value) << "\"";
  }
  out << "}}";
}

/// True for registry samples worth echoing in /statusz "runtime": the simd
/// dispatch level, thread-pool depth, and the RuntimeSampler gauges.
bool is_runtime_sample(const std::string& name) {
  return name.rfind("autosens_simd_level", 0) == 0 ||
         name.rfind("autosens_pool_", 0) == 0 ||
         name.rfind("autosens_process_", 0) == 0;
}

}  // namespace

ObsServer::ObsServer(const ObsServerOptions& options) : options_(options) {
  std::uint16_t bound = 0;
  listener_ = net::listen_tcp(options_.port, bound);
  port_ = bound;
  start_us_ = monotonic_us();
  thread_ = std::thread([this] { serve(); });
}

ObsServer::~ObsServer() { stop(); }

void ObsServer::stop() {
  if (!stop_.exchange(true)) {
    // The accept loop wakes within poll_interval_ms and observes the flag.
  }
  if (thread_.joinable()) thread_.join();
}

void ObsServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto connection = net::accept_with_timeout(listener_, options_.poll_interval_ms);
    if (!connection.has_value()) continue;
    try {
      serve_connection(std::move(*connection));
    } catch (const std::exception& e) {
      // A failed scrape must never take the process down.
      log_debug("obs.server", {{"error", e.what()}});
    }
  }
}

void ObsServer::serve_connection(net::Socket connection) {
  net::SocketOps& ops = options_.ops != nullptr ? *options_.ops : net::real_socket_ops();
  std::string request;
  std::uint8_t buffer[1024];
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() > options_.max_request_bytes) break;
    const std::int64_t n = ops.recv(connection.fd(), buffer, sizeof(buffer));
    if (n == 0) return;  // Client went away mid-request.
    if (n < 0) {
      if (n == -EINTR || n == -EAGAIN) continue;
      return;
    }
    request.append(reinterpret_cast<const char*>(buffer), static_cast<std::size_t>(n));
  }

  Response response;
  const auto line_end = request.find("\r\n");
  std::istringstream request_line(request.substr(0, line_end));
  std::string method;
  std::string target;
  std::string version;
  if (!(request_line >> method >> target >> version) ||
      version.rfind("HTTP/1.", 0) != 0 || request.size() > options_.max_request_bytes) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (method != "GET") {
    response = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    response = handle(target);
  }
  requests_.add(1);

  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " " << reason_phrase(response.status)
      << "\r\nContent-Type: " << response.content_type
      << "\r\nContent-Length: " << response.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << response.body;
  const std::string wire = out.str();
  net::write_all(connection,
                 {reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()}, ops);
}

ObsServer::Response ObsServer::handle(std::string_view target) const {
  const auto query_pos = target.find('?');
  const std::string path(target.substr(0, query_pos));
  const std::string query(
      query_pos == std::string_view::npos ? "" : target.substr(query_pos + 1));
  Registry& reg = options_.registry != nullptr ? *options_.registry : registry();

  if (path == "/metrics") {
    std::ostringstream out;
    reg.write_prometheus(out);
    return {200, "text/plain; version=0.0.4; charset=utf-8", out.str()};
  }

  if (path == "/metrics.json") {
    std::ostringstream out;
    reg.write_json(out);
    return {200, "application/json", out.str()};
  }

  if (path == "/healthz") {
    const auto components = Health::global().components();
    bool ready = true;
    std::ostringstream out;
    out << "{\"components\": {";
    bool first = true;
    for (const auto& component : components) {
      ready = ready && component.ready;
      if (!first) out << ", ";
      first = false;
      out << "\"" << json_escape(component.name) << "\": {\"ready\": "
          << (component.ready ? "true" : "false") << ", \"detail\": \""
          << json_escape(component.detail) << "\"}";
    }
    out << "}, \"status\": \"" << (ready ? "ok" : "unready") << "\"}\n";
    return {ready ? 200 : 503, "application/json", out.str()};
  }

  if (path == "/statusz") {
    Tracer& tracer = Tracer::global();
    std::ostringstream out;
    out << "{\"uptime_seconds\": "
        << format_double(static_cast<double>(monotonic_us() - start_us_) / 1e6)
        << ", \"pid\": " << ::getpid()
        << ", \"requests\": " << requests_.get()
        << ",\n \"build\": {\"compiler\": \"" << json_escape(__VERSION__)
        << "\", \"type\": \"" << json_escape(AUTOSENS_BUILD_TYPE)
        << "\", \"cxx\": " << __cplusplus << "}"
        << ",\n \"metrics_enabled\": " << (enabled() ? "true" : "false")
        << ",\n \"trace\": {\"enabled\": " << (tracer.enabled() ? "true" : "false")
        << ", \"trace_id\": \"" << tracer.trace_id()
        << "\", \"process\": " << static_cast<unsigned>(tracer.process())
        << ", \"ring_capacity\": " << tracer.ring_capacity() << "}";
    out << ",\n \"runtime\": {";
    bool first = true;
    for (const auto& sample : reg.samples()) {
      if (!is_runtime_sample(sample.name)) continue;
      if (!first) out << ", ";
      first = false;
      out << "\"" << json_escape(sample.name) << "\": " << format_double(sample.value);
    }
    out << "}";
    out << ",\n \"health\": {\"ready\": "
        << (Health::global().all_ready() ? "true" : "false") << "}";
    out << ",\n \"sections\": {";
    first = true;
    for (const auto& [name, value] : StatusRegistry::global().render()) {
      if (!first) out << ", ";
      first = false;
      out << "\"" << json_escape(name) << "\": " << value;
    }
    out << "}}\n";
    return {200, "application/json", out.str()};
  }

  if (path == "/tracez") {
    Tracer& tracer = Tracer::global();
    const auto spans = tracer.recent();
    if (query.find("format=chrome") != std::string::npos) {
      std::ostringstream out;
      tracer.write_chrome_trace(out, spans);
      return {200, "application/json", out.str()};
    }
    std::ostringstream out;
    out << "{\"enabled\": " << (tracer.enabled() ? "true" : "false")
        << ", \"spans\": [";
    bool first = true;
    for (const auto& span : spans) {
      if (!first) out << ",";
      first = false;
      out << "\n  ";
      append_tracez_span(out, span);
    }
    out << "\n]}\n";
    return {200, "application/json", out.str()};
  }

  if (path == "/" || path.empty()) {
    return {200, "text/plain; charset=utf-8",
            "autosens introspection endpoints:\n"
            "  /metrics       Prometheus text exposition\n"
            "  /metrics.json  registry as JSON\n"
            "  /healthz       liveness + component readiness\n"
            "  /statusz       uptime, build info, runtime state\n"
            "  /tracez        recent spans (?format=chrome)\n"};
  }

  return {404, "text/plain; charset=utf-8", "not found: " + path + "\n"};
}

HttpResponse http_get(std::uint16_t port, const std::string& target,
                      net::SocketOps& ops) {
  net::Socket connection = net::connect_tcp(port, ops);
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  net::write_all(
      connection,
      {reinterpret_cast<const std::uint8_t*>(request.data()), request.size()}, ops);

  std::string raw;
  std::uint8_t buffer[4096];
  while (true) {
    const std::int64_t n = ops.recv(connection.fd(), buffer, sizeof(buffer));
    if (n == 0) break;
    if (n < 0) {
      if (n == -EINTR || n == -EAGAIN) continue;
      throw net::SocketError("http_get: recv from 127.0.0.1:" + std::to_string(port),
                             static_cast<int>(-n));
    }
    raw.append(reinterpret_cast<const char*>(buffer), static_cast<std::size_t>(n));
  }

  const auto header_end = raw.find("\r\n\r\n");
  const auto line_end = raw.find("\r\n");
  if (header_end == std::string::npos || line_end == std::string::npos) {
    throw std::runtime_error("http_get: malformed response: " + raw.substr(0, 64));
  }
  HttpResponse response;
  {
    std::istringstream status_line(raw.substr(0, line_end));
    std::string version;
    if (!(status_line >> version >> response.status) ||
        version.rfind("HTTP/1.", 0) != 0) {
      throw std::runtime_error("http_get: bad status line: " + raw.substr(0, line_end));
    }
  }
  const std::string headers = raw.substr(line_end, header_end - line_end);
  const auto content_type = headers.find("Content-Type: ");
  if (content_type != std::string::npos) {
    const auto value_start = content_type + 14;
    const auto value_end = headers.find("\r\n", value_start);
    response.content_type = headers.substr(value_start, value_end - value_start);
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace autosens::obs
