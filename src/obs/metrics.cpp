#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace autosens::obs {
namespace {

std::atomic<bool> g_enabled{false};

/// Format a double the way Prometheus expects: shortest form that
/// round-trips integers exactly ("42" not "42.000000").
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream out;
    out << static_cast<std::int64_t>(v);
    return out.str();
  }
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::string bucket_label(const std::string& labels, double bound) {
  std::string le = std::isinf(bound) ? "+Inf" : format_value(bound);
  if (labels.empty()) return "le=\"" + le + "\"";
  return labels + ",le=\"" + le + "\"";
}

std::string with_labels(const std::string& base, const std::string& labels) {
  return labels.empty() ? base : base + "{" + labels + "}";
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t Gauge::encode(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
double Gauge::decode(std::uint64_t bits) noexcept { return std::bit_cast<double>(bits); }

void Gauge::add(double delta) noexcept {
  if (!enabled()) return;
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(expected, encode(decode(expected) + delta),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("obs::Histogram: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("obs::Histogram: bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  // Fixed-point (1/1000) sum so concurrent observes stay a single atomic
  // add; sub-microsecond latency truncation is irrelevant at this grain.
  const double clamped = std::max(value, 0.0);
  sum_millis_.fetch_add(static_cast<std::uint64_t>(clamped * 1000.0 + 0.5),
                        std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  return static_cast<double>(sum_millis_.load(std::memory_order_relaxed)) / 1000.0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<double> default_latency_buckets_ms() {
  return {0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Entry& Registry::find_or_create(Kind kind, std::string_view name,
                                          std::string_view help) {
  const auto brace = name.find('{');
  std::string base(name.substr(0, brace));
  std::string labels;
  if (brace != std::string_view::npos) {
    if (name.back() != '}' || brace + 2 > name.size() - 1) {
      throw std::invalid_argument("obs::Registry: malformed label set in " +
                                  std::string(name));
    }
    labels = std::string(name.substr(brace + 1, name.size() - brace - 2));
  }
  for (auto& entry : entries_) {
    if (entry.base == base && entry.labels == labels) {
      if (entry.kind != kind) {
        throw std::invalid_argument("obs::Registry: " + std::string(name) +
                                    " re-registered with a different type");
      }
      return entry;
    }
  }
  entries_.push_back(Entry{.kind = kind,
                           .base = std::move(base),
                           .labels = std::move(labels),
                           .help = std::string(help),
                           .counter = nullptr,
                           .gauge = nullptr,
                           .histogram = nullptr});
  return entries_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard lock(mutex_);
  Entry& entry = find_or_create(Kind::kCounter, name, help);
  if (!entry.counter) entry.counter.reset(new Counter());
  return *entry.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard lock(mutex_);
  Entry& entry = find_or_create(Kind::kGauge, name, help);
  if (!entry.gauge) entry.gauge.reset(new Gauge());
  return *entry.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  Entry& entry = find_or_create(Kind::kHistogram, name, help);
  if (!entry.histogram) entry.histogram.reset(new Histogram(std::move(bounds)));
  return *entry.histogram;
}

std::vector<Sample> Registry::samples() const {
  std::lock_guard lock(mutex_);
  std::vector<Sample> out;
  for (const auto& entry : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out.push_back({with_labels(entry.base, entry.labels),
                       static_cast<double>(entry.counter->value())});
        break;
      case Kind::kGauge:
        out.push_back({with_labels(entry.base, entry.labels), entry.gauge->value()});
        break;
      case Kind::kHistogram: {
        const auto counts = entry.histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          const double bound = i < entry.histogram->bounds().size()
                                   ? entry.histogram->bounds()[i]
                                   : std::numeric_limits<double>::infinity();
          out.push_back({entry.base + "_bucket{" + bucket_label(entry.labels, bound) + "}",
                         static_cast<double>(cumulative)});
        }
        out.push_back({with_labels(entry.base + "_sum", entry.labels),
                       entry.histogram->sum()});
        out.push_back({with_labels(entry.base + "_count", entry.labels),
                       static_cast<double>(cumulative)});
        break;
      }
    }
  }
  return out;
}

void Registry::write_prometheus(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  std::string last_family;
  for (const auto& entry : entries_) {
    if (entry.base != last_family) {
      last_family = entry.base;
      if (!entry.help.empty()) out << "# HELP " << entry.base << " " << entry.help << "\n";
      out << "# TYPE " << entry.base << " "
          << (entry.kind == Kind::kCounter
                  ? "counter"
                  : entry.kind == Kind::kGauge ? "gauge" : "histogram")
          << "\n";
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out << with_labels(entry.base, entry.labels) << " " << entry.counter->value()
            << "\n";
        break;
      case Kind::kGauge:
        out << with_labels(entry.base, entry.labels) << " "
            << format_value(entry.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const auto counts = entry.histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          const double bound = i < entry.histogram->bounds().size()
                                   ? entry.histogram->bounds()[i]
                                   : std::numeric_limits<double>::infinity();
          out << entry.base << "_bucket{" << bucket_label(entry.labels, bound) << "} "
              << cumulative << "\n";
        }
        out << with_labels(entry.base + "_sum", entry.labels) << " "
            << format_value(entry.histogram->sum()) << "\n";
        out << with_labels(entry.base + "_count", entry.labels) << " " << cumulative
            << "\n";
        break;
      }
    }
  }
}

void Registry::write_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  const auto escape = [](const std::string& s) {
    std::string r;
    for (const char c : s) {
      if (c == '"' || c == '\\') r += '\\';
      r += c;
    }
    return r;
  };
  out << "[";
  bool first = true;
  for (const auto& entry : entries_) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << escape(with_labels(entry.base, entry.labels))
        << "\", \"help\": \"" << escape(entry.help) << "\", ";
    switch (entry.kind) {
      case Kind::kCounter:
        out << "\"type\": \"counter\", \"value\": " << entry.counter->value() << "}";
        break;
      case Kind::kGauge:
        out << "\"type\": \"gauge\", \"value\": " << format_value(entry.gauge->value())
            << "}";
        break;
      case Kind::kHistogram: {
        out << "\"type\": \"histogram\", \"sum\": "
            << format_value(entry.histogram->sum()) << ", \"count\": "
            << entry.histogram->count() << ", \"buckets\": [";
        const auto counts = entry.histogram->bucket_counts();
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) out << ", ";
          out << "{\"le\": ";
          if (i < entry.histogram->bounds().size()) {
            out << format_value(entry.histogram->bounds()[i]);
          } else {
            out << "\"+Inf\"";
          }
          out << ", \"count\": " << counts[i] << "}";
        }
        out << "]}";
        break;
      }
    }
  }
  out << "\n]\n";
}

std::vector<Sample> parse_prometheus(std::istream& in) {
  std::vector<Sample> samples;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    // A sample is `name[{labels}] value [timestamp]`; the name may contain
    // a quoted label set with spaces, so split at the first space outside
    // quotes after the closing brace (labels themselves contain no spaces
    // in our output, but be permissive: find the last space).
    const auto space = line.find_last_of(' ');
    const auto value_pos = line.find_first_not_of(' ', space);
    if (space == std::string::npos || value_pos == std::string::npos) {
      throw std::invalid_argument("parse_prometheus: malformed line " +
                                  std::to_string(line_number) + ": " + line);
    }
    Sample sample;
    sample.name = line.substr(0, space);
    while (!sample.name.empty() && sample.name.back() == ' ') sample.name.pop_back();
    const std::string value_text = line.substr(value_pos);
    try {
      std::size_t consumed = 0;
      sample.value = std::stod(value_text, &consumed);
      if (consumed != value_text.size()) throw std::invalid_argument(value_text);
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_prometheus: bad value on line " +
                                  std::to_string(line_number) + ": " + value_text);
    }
    if (sample.name.empty()) {
      throw std::invalid_argument("parse_prometheus: empty metric name on line " +
                                  std::to_string(line_number));
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace autosens::obs
