#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace autosens::obs {
namespace {

std::atomic<bool> g_enabled{false};

/// Format a double the way Prometheus expects: shortest form that
/// round-trips integers exactly ("42" not "42.000000").
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream out;
    out << static_cast<std::int64_t>(v);
    return out.str();
  }
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::string bucket_label(const std::string& labels, double bound) {
  std::string le = std::isinf(bound) ? "+Inf" : format_value(bound);
  if (labels.empty()) return "le=\"" + le + "\"";
  return labels + ",le=\"" + le + "\"";
}

std::string with_labels(const std::string& base, const std::string& labels) {
  return labels.empty() ? base : base + "{" + labels + "}";
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t Gauge::encode(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
double Gauge::decode(std::uint64_t bits) noexcept { return std::bit_cast<double>(bits); }

void Gauge::add(double delta) noexcept {
  if (!enabled()) return;
  std::uint64_t expected = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(expected, encode(decode(expected) + delta),
                                      std::memory_order_relaxed,
                                      std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("obs::Histogram: no buckets");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("obs::Histogram: bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  // Fixed-point (1/1000) sum so concurrent observes stay a single atomic
  // add; sub-microsecond latency truncation is irrelevant at this grain.
  const double clamped = std::max(value, 0.0);
  sum_millis_.fetch_add(static_cast<std::uint64_t>(clamped * 1000.0 + 0.5),
                        std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  return static_cast<double>(sum_millis_.load(std::memory_order_relaxed)) / 1000.0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<double> default_latency_buckets_ms() {
  return {0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Entry& Registry::find_or_create(Kind kind, std::string_view name,
                                          std::string_view help) {
  const auto brace = name.find('{');
  std::string base(name.substr(0, brace));
  std::string labels;
  if (brace != std::string_view::npos) {
    if (name.back() != '}' || brace + 2 > name.size() - 1) {
      throw std::invalid_argument("obs::Registry: malformed label set in " +
                                  std::string(name));
    }
    labels = std::string(name.substr(brace + 1, name.size() - brace - 2));
  }
  for (auto& entry : entries_) {
    if (entry.base == base && entry.labels == labels) {
      if (entry.kind != kind) {
        throw std::invalid_argument("obs::Registry: " + std::string(name) +
                                    " re-registered with a different type");
      }
      return entry;
    }
  }
  entries_.push_back(Entry{.kind = kind,
                           .base = std::move(base),
                           .labels = std::move(labels),
                           .help = std::string(help),
                           .counter = nullptr,
                           .gauge = nullptr,
                           .histogram = nullptr});
  return entries_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard lock(mutex_);
  Entry& entry = find_or_create(Kind::kCounter, name, help);
  if (!entry.counter) entry.counter.reset(new Counter());
  return *entry.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard lock(mutex_);
  Entry& entry = find_or_create(Kind::kGauge, name, help);
  if (!entry.gauge) entry.gauge.reset(new Gauge());
  return *entry.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  Entry& entry = find_or_create(Kind::kHistogram, name, help);
  if (!entry.histogram) entry.histogram.reset(new Histogram(std::move(bounds)));
  return *entry.histogram;
}

std::vector<const Registry::Entry*> Registry::sorted_entries_locked() const {
  std::vector<const Entry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
    if (a->base != b->base) return a->base < b->base;
    return a->labels < b->labels;
  });
  return sorted;
}

std::vector<Sample> Registry::samples() const {
  std::lock_guard lock(mutex_);
  std::vector<Sample> out;
  for (const Entry* entry_ptr : sorted_entries_locked()) {
    const Entry& entry = *entry_ptr;
    switch (entry.kind) {
      case Kind::kCounter:
        out.push_back({with_labels(entry.base, entry.labels),
                       static_cast<double>(entry.counter->value())});
        break;
      case Kind::kGauge:
        out.push_back({with_labels(entry.base, entry.labels), entry.gauge->value()});
        break;
      case Kind::kHistogram: {
        const auto counts = entry.histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          const double bound = i < entry.histogram->bounds().size()
                                   ? entry.histogram->bounds()[i]
                                   : std::numeric_limits<double>::infinity();
          out.push_back({entry.base + "_bucket{" + bucket_label(entry.labels, bound) + "}",
                         static_cast<double>(cumulative)});
        }
        out.push_back({with_labels(entry.base + "_sum", entry.labels),
                       entry.histogram->sum()});
        out.push_back({with_labels(entry.base + "_count", entry.labels),
                       static_cast<double>(cumulative)});
        break;
      }
    }
  }
  return out;
}

void Registry::write_prometheus(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  std::string last_family;
  for (const Entry* entry_ptr : sorted_entries_locked()) {
    const Entry& entry = *entry_ptr;
    if (entry.base != last_family) {
      last_family = entry.base;
      if (!entry.help.empty()) out << "# HELP " << entry.base << " " << entry.help << "\n";
      out << "# TYPE " << entry.base << " "
          << (entry.kind == Kind::kCounter
                  ? "counter"
                  : entry.kind == Kind::kGauge ? "gauge" : "histogram")
          << "\n";
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out << with_labels(entry.base, entry.labels) << " " << entry.counter->value()
            << "\n";
        break;
      case Kind::kGauge:
        out << with_labels(entry.base, entry.labels) << " "
            << format_value(entry.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const auto counts = entry.histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
          cumulative += counts[i];
          const double bound = i < entry.histogram->bounds().size()
                                   ? entry.histogram->bounds()[i]
                                   : std::numeric_limits<double>::infinity();
          out << entry.base << "_bucket{" << bucket_label(entry.labels, bound) << "} "
              << cumulative << "\n";
        }
        out << with_labels(entry.base + "_sum", entry.labels) << " "
            << format_value(entry.histogram->sum()) << "\n";
        out << with_labels(entry.base + "_count", entry.labels) << " " << cumulative
            << "\n";
        break;
      }
    }
  }
}

void Registry::write_json(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  const auto escape = [](const std::string& s) {
    std::string r;
    for (const char c : s) {
      if (c == '"' || c == '\\') r += '\\';
      r += c;
    }
    return r;
  };
  out << "[";
  bool first = true;
  for (const Entry* entry_ptr : sorted_entries_locked()) {
    const Entry& entry = *entry_ptr;
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": \"" << escape(with_labels(entry.base, entry.labels))
        << "\", \"help\": \"" << escape(entry.help) << "\", ";
    switch (entry.kind) {
      case Kind::kCounter:
        out << "\"type\": \"counter\", \"value\": " << entry.counter->value() << "}";
        break;
      case Kind::kGauge:
        out << "\"type\": \"gauge\", \"value\": " << format_value(entry.gauge->value())
            << "}";
        break;
      case Kind::kHistogram: {
        // One bucket read feeds both "count" and "buckets" so the JSON stays
        // internally consistent under concurrent observes.
        const auto counts = entry.histogram->bucket_counts();
        std::uint64_t total = 0;
        for (const auto c : counts) total += c;
        out << "\"type\": \"histogram\", \"sum\": "
            << format_value(entry.histogram->sum()) << ", \"count\": "
            << total << ", \"buckets\": [";
        for (std::size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) out << ", ";
          out << "{\"le\": ";
          if (i < entry.histogram->bounds().size()) {
            out << format_value(entry.histogram->bounds()[i]);
          } else {
            out << "\"+Inf\"";
          }
          out << ", \"count\": " << counts[i] << "}";
        }
        out << "]}";
        break;
      }
    }
  }
  out << "\n]\n";
}

namespace {

[[noreturn]] void parse_fail(std::size_t line_number, const std::string& what,
                             const std::string& context) {
  throw std::invalid_argument("parse_prometheus: " + what + " on line " +
                              std::to_string(line_number) + ": " + context);
}

/// End index (exclusive) of `name[{labels}]`: a bare name runs to the first
/// space or '{'; a label set is scanned to its matching '}' honoring quoted
/// values with backslash escapes, so `path="a b"` and `msg="say \"hi\""`
/// stay part of the name.
std::size_t scan_name(const std::string& line, std::size_t line_number) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != ' ' && line[i] != '{') ++i;
  if (i == line.size() || line[i] == ' ') return i;
  ++i;  // consume '{'
  bool in_quotes = false;
  for (; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '\\') {
        if (i + 1 >= line.size()) parse_fail(line_number, "dangling escape", line);
        ++i;
      } else if (c == '"') {
        in_quotes = false;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == '}') {
      return i + 1;
    }
  }
  parse_fail(line_number, "unterminated label set", line);
}

}  // namespace

std::vector<Sample> parse_prometheus(std::istream& in) {
  std::vector<Sample> samples;
  std::set<std::string> seen;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    // A sample is `name[{labels}] value [timestamp]`.
    const std::size_t name_end = scan_name(line, line_number);
    Sample sample;
    sample.name = line.substr(0, name_end);
    if (sample.name.empty()) parse_fail(line_number, "empty metric name", line);
    std::size_t pos = line.find_first_not_of(' ', name_end);
    if (pos == std::string::npos || pos == name_end) {
      parse_fail(line_number, "missing value", line);
    }
    const std::size_t value_end = line.find(' ', pos);
    const std::string value_text =
        line.substr(pos, value_end == std::string::npos ? std::string::npos
                                                        : value_end - pos);
    try {
      std::size_t consumed = 0;
      // stod handles exponent forms ("1e+06") and the Prometheus specials
      // ("+Inf", "-Inf", "NaN") via strtod.
      sample.value = std::stod(value_text, &consumed);
      if (consumed != value_text.size()) throw std::invalid_argument(value_text);
    } catch (const std::exception&) {
      parse_fail(line_number, "bad value", value_text);
    }
    if (value_end != std::string::npos) {
      // Optional millisecond timestamp — validated, then discarded.
      const std::size_t ts_pos = line.find_first_not_of(' ', value_end);
      if (ts_pos != std::string::npos) {
        const std::string ts_text = line.substr(ts_pos);
        try {
          std::size_t consumed = 0;
          (void)std::stoll(ts_text, &consumed);
          if (consumed != ts_text.size() ||
              ts_text.find(' ') != std::string::npos) {
            throw std::invalid_argument(ts_text);
          }
        } catch (const std::exception&) {
          parse_fail(line_number, "bad timestamp", ts_text);
        }
      }
    }
    if (!seen.insert(sample.name).second) {
      parse_fail(line_number, "duplicate sample for " + sample.name, line);
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace autosens::obs
