#include "obs/sampler.h"

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace autosens::obs {
namespace {

struct SamplerGauges {
  Gauge& rss_bytes = registry().gauge(
      "autosens_process_rss_bytes", "Resident set size (VmRSS)");
  Gauge& vm_hwm_bytes = registry().gauge(
      "autosens_process_vm_hwm_bytes", "Peak resident set size (VmHWM)");
  Gauge& cpu_user_seconds = registry().gauge(
      "autosens_process_cpu_user_seconds", "CPU time spent in user mode");
  Gauge& cpu_system_seconds = registry().gauge(
      "autosens_process_cpu_system_seconds", "CPU time spent in kernel mode");
  Gauge& open_fds = registry().gauge(
      "autosens_process_open_fds", "Open file descriptors (includes the sampling fd)");
  Gauge& threads = registry().gauge(
      "autosens_process_threads", "OS threads in this process");
  Gauge& uptime_seconds = registry().gauge(
      "autosens_process_uptime_seconds", "Seconds since process instrumentation start");
};

SamplerGauges& gauges() {
  static SamplerGauges instance;
  return instance;
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

/// "VmRSS:     1234 kB" → bytes; returns -1 when the key is absent.
double status_kb_to_bytes(const std::string& status, const std::string& key) {
  const auto pos = status.find(key + ":");
  if (pos == std::string::npos) return -1.0;
  std::istringstream line(status.substr(pos + key.size() + 1));
  double kb = 0.0;
  if (!(line >> kb)) return -1.0;
  return kb * 1024.0;
}

bool sample_proc_status() {
  std::ifstream in("/proc/self/status");
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string status = buffer.str();
  const double rss = status_kb_to_bytes(status, "VmRSS");
  if (rss >= 0.0) gauges().rss_bytes.set(rss);
  const double hwm = status_kb_to_bytes(status, "VmHWM");
  if (hwm >= 0.0) gauges().vm_hwm_bytes.set(hwm);
  const auto threads_pos = status.find("Threads:");
  if (threads_pos != std::string::npos) {
    std::istringstream line(status.substr(threads_pos + 8));
    double threads = 0.0;
    if (line >> threads) gauges().threads.set(threads);
  }
  return true;
}

void sample_proc_stat() {
  std::ifstream in("/proc/self/stat");
  if (!in) return;
  std::string stat;
  std::getline(in, stat);
  // The comm field is parenthesized and may contain spaces; fields are
  // counted from after the last ')'. utime is field 14, stime field 15
  // (1-indexed), i.e. tokens 11 and 12 of the remainder (state = token 0).
  const auto close = stat.rfind(')');
  if (close == std::string::npos) return;
  std::istringstream rest(stat.substr(close + 1));
  std::string token;
  unsigned long long utime = 0;
  unsigned long long stime = 0;
  for (int i = 0; rest >> token; ++i) {
    if (i == 11) utime = std::stoull(token);
    if (i == 12) {
      stime = std::stoull(token);
      break;
    }
  }
  const double ticks = static_cast<double>(sysconf(_SC_CLK_TCK));
  if (ticks <= 0.0) return;
  gauges().cpu_user_seconds.set(static_cast<double>(utime) / ticks);
  gauges().cpu_system_seconds.set(static_cast<double>(stime) / ticks);
}

void sample_fd_count() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return;
  double count = 0.0;
  while (const dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") count += 1.0;
  }
  closedir(dir);
  gauges().open_fds.set(count);
}

}  // namespace

bool RuntimeSampler::sample_once() {
  const double uptime =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - process_start())
          .count();
  gauges().uptime_seconds.set(uptime);
  if (!sample_proc_status()) return false;
  sample_proc_stat();
  sample_fd_count();
  return true;
}

std::uint64_t RuntimeSampler::peak_rss_bytes() {
  std::ifstream in("/proc/self/status");
  if (!in) return 0;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const double hwm = status_kb_to_bytes(buffer.str(), "VmHWM");
  return hwm < 0.0 ? 0 : static_cast<std::uint64_t>(hwm);
}

RuntimeSampler::RuntimeSampler() : RuntimeSampler(Options{}) {}

RuntimeSampler::RuntimeSampler(Options options) {
  process_start();  // Pin the uptime epoch no later than sampler start.
  sample_once();
  thread_ = std::thread([this, interval = options.interval_ms] { run(interval); });
}

RuntimeSampler::~RuntimeSampler() { stop(); }

void RuntimeSampler::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void RuntimeSampler::run(std::uint32_t interval_ms) {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                     [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

}  // namespace autosens::obs
