// RuntimeSampler: a background thread that periodically reads /proc/self
// into pre-registered gauges (RSS, VmHWM, CPU user/sys seconds, open fds,
// thread count, uptime) so every long-running subcommand self-reports
// resource health through /metrics. Sampling is Linux-only; on platforms
// without /proc the gauges simply stay at zero.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace autosens::obs {

class RuntimeSampler {
 public:
  struct Options {
    std::uint32_t interval_ms = 1000;  ///< Cadence of background samples.
  };

  /// Takes one synchronous sample immediately (so a scrape right after
  /// construction already sees values), then samples every interval_ms on a
  /// background thread until stop() or destruction. The default constructor
  /// uses the default cadence (a `= {}` default argument would need Options'
  /// member initializers before the enclosing class is complete).
  RuntimeSampler();
  explicit RuntimeSampler(Options options);
  ~RuntimeSampler();

  RuntimeSampler(const RuntimeSampler&) = delete;
  RuntimeSampler& operator=(const RuntimeSampler&) = delete;

  void stop();

  /// One sample into the autosens_process_* gauges. Returns false when
  /// /proc/self is unavailable. Callable without a running sampler (tests,
  /// one-shot dumps); gauges only update while obs::enabled().
  static bool sample_once();

  /// Peak resident set size (VmHWM) of this process in bytes, read directly
  /// from /proc/self/status — independent of obs::enabled(), so bounded-RSS
  /// assertions (the store soak test) don't need the registry on. Returns 0
  /// when /proc is unavailable.
  static std::uint64_t peak_rss_bytes();

 private:
  void run(std::uint32_t interval_ms);

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace autosens::obs
