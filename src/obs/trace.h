// Pipeline stage tracing: RAII spans with monotonic-clock timing and
// parent/child nesting (per-thread span stack). Completed spans collect in
// the global Tracer, which can emit a Chrome `trace_event` JSON file
// (chrome://tracing / Perfetto loadable) or aggregate per-stage totals for
// an ASCII flame summary.
//
// Off by default: a Span constructed while the tracer is disabled is inert
// (one relaxed atomic load, no clock reads, no allocation).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace autosens::obs {

class Histogram;  // metrics.h

/// One finished span, times in microseconds since the tracer's epoch.
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root.
  std::uint32_t depth = 0;   ///< Nesting depth at start (root = 0).
  std::uint64_t thread = 0;  ///< Small dense per-thread index.
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Per-stage rollup for the flame summary, ordered by first start.
struct SpanAggregate {
  std::string name;
  std::uint32_t depth = 0;
  std::size_t count = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};

class Tracer {
 public:
  static Tracer& global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  /// Enabling (re)starts the epoch; spans already open stay inert.
  void set_enabled(bool on);

  /// Drop all collected spans (epoch is kept); also empties the /tracez ring.
  void clear();

  std::vector<SpanRecord> snapshot() const;

  /// The most recent completed spans (oldest first), bounded by
  /// ring_capacity(): the /tracez view. Unlike snapshot() this stays O(1)
  /// memory in a long-running process.
  std::vector<SpanRecord> recent() const;
  /// Resize the /tracez ring (drops spans currently held in it).
  void set_ring_capacity(std::size_t capacity);
  std::size_t ring_capacity() const;

  /// Process tag: the Chrome-trace "pid" and the high byte of every span id,
  /// so ids minted by different processes of one distributed trace never
  /// collide when their exports are merged. Default 1; set before the first
  /// span (replay → 1, collect → 2 in the CLI).
  void set_process(std::uint8_t process) noexcept;
  std::uint8_t process() const noexcept {
    return process_.load(std::memory_order_relaxed);
  }

  /// Distributed-trace id shared by every process of one replay|collect
  /// pair: the emitter derives one lazily, propagates it in the wire hello,
  /// and the collector adopts it via set_trace_id(). 0 = none yet.
  std::uint64_t trace_id() const noexcept {
    return trace_id_.load(std::memory_order_relaxed);
  }
  void set_trace_id(std::uint64_t id) noexcept {
    trace_id_.store(id, std::memory_order_relaxed);
  }
  /// trace_id(), deriving a fresh nonzero id first if none is set yet.
  std::uint64_t ensure_trace_id();

  /// Chrome trace_event JSON ("traceEvents" array of complete "X" events).
  void write_chrome_trace(std::ostream& out) const;
  /// Same format over an explicit span list (e.g. recent() for /tracez).
  void write_chrome_trace(std::ostream& out,
                          const std::vector<SpanRecord>& spans) const;

  /// Rollup by (name, depth), ordered by first occurrence.
  std::vector<SpanAggregate> aggregate() const;

  /// Microseconds since the tracer epoch (monotonic clock).
  std::uint64_t now_us() const noexcept;

 private:
  friend class Span;
  void record(SpanRecord&& span);
  /// Ids carry the process tag in the top byte (see set_process) so merged
  /// multi-process traces keep parent links unambiguous.
  std::uint64_t next_id() noexcept {
    const std::uint64_t seq = ids_.fetch_add(1, std::memory_order_relaxed) + 1;
    return (static_cast<std::uint64_t>(process_.load(std::memory_order_relaxed)) << 56) |
           (seq & 0x00FFFFFFFFFFFFFFULL);
  }

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> ids_{0};
  std::atomic<std::uint64_t> epoch_ns_{0};
  std::atomic<std::uint8_t> process_{1};
  std::atomic<std::uint64_t> trace_id_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::vector<SpanRecord> ring_;  ///< /tracez: last ring_capacity_ spans.
  std::size_t ring_capacity_ = 512;
  std::size_t ring_next_ = 0;  ///< Overwrite slot once ring_ is full.
};

/// Innermost open span id on the calling thread (0 when none, or when
/// tracing is disabled). This is the id the emitter stamps onto wire frames.
std::uint64_t current_span_id() noexcept;

/// RAII span on the global tracer. Construct at stage entry; the destructor
/// stamps the duration and files the record. When a metrics::Histogram is
/// supplied the duration (ms) is also observed there, so stage latency
/// distributions accumulate across runs without a second clock read.
class Span {
 public:
  explicit Span(std::string_view name, Histogram* latency_ms = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value attribute (shows in the Chrome trace "args").
  void attr(std::string_view key, std::string value);
  void attr(std::string_view key, std::int64_t value);
  void attr(std::string_view key, double value);

  /// This span's id (0 when inert) — propagate it over the wire so a remote
  /// span can link_parent() onto it.
  std::uint64_t id() const noexcept { return active_ ? record_.id : 0; }

  /// Re-parent onto an externally propagated span id (wire trace context):
  /// the collector links its decode/dedup spans onto the emitter-side span
  /// that produced the frame. No-op when inert or when parent_id is 0.
  void link_parent(std::uint64_t parent_id) noexcept;

  bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  SpanRecord record_;
  Histogram* latency_ms_ = nullptr;
};

}  // namespace autosens::obs
