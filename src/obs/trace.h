// Pipeline stage tracing: RAII spans with monotonic-clock timing and
// parent/child nesting (per-thread span stack). Completed spans collect in
// the global Tracer, which can emit a Chrome `trace_event` JSON file
// (chrome://tracing / Perfetto loadable) or aggregate per-stage totals for
// an ASCII flame summary.
//
// Off by default: a Span constructed while the tracer is disabled is inert
// (one relaxed atomic load, no clock reads, no allocation).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace autosens::obs {

class Histogram;  // metrics.h

/// One finished span, times in microseconds since the tracer's epoch.
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root.
  std::uint32_t depth = 0;   ///< Nesting depth at start (root = 0).
  std::uint64_t thread = 0;  ///< Small dense per-thread index.
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Per-stage rollup for the flame summary, ordered by first start.
struct SpanAggregate {
  std::string name;
  std::uint32_t depth = 0;
  std::size_t count = 0;
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
};

class Tracer {
 public:
  static Tracer& global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  /// Enabling (re)starts the epoch; spans already open stay inert.
  void set_enabled(bool on);

  /// Drop all collected spans (epoch is kept).
  void clear();

  std::vector<SpanRecord> snapshot() const;

  /// Chrome trace_event JSON ("traceEvents" array of complete "X" events).
  void write_chrome_trace(std::ostream& out) const;

  /// Rollup by (name, depth), ordered by first occurrence.
  std::vector<SpanAggregate> aggregate() const;

  /// Microseconds since the tracer epoch (monotonic clock).
  std::uint64_t now_us() const noexcept;

 private:
  friend class Span;
  void record(SpanRecord&& span);
  std::uint64_t next_id() noexcept { return ids_.fetch_add(1, std::memory_order_relaxed) + 1; }

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> ids_{0};
  std::atomic<std::uint64_t> epoch_ns_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// RAII span on the global tracer. Construct at stage entry; the destructor
/// stamps the duration and files the record. When a metrics::Histogram is
/// supplied the duration (ms) is also observed there, so stage latency
/// distributions accumulate across runs without a second clock read.
class Span {
 public:
  explicit Span(std::string_view name, Histogram* latency_ms = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value attribute (shows in the Chrome trace "args").
  void attr(std::string_view key, std::string value);
  void attr(std::string_view key, std::int64_t value);
  void attr(std::string_view key, double value);

  bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  SpanRecord record_;
  Histogram* latency_ms_ = nullptr;
};

}  // namespace autosens::obs
