// Nearest-in-time sampling — the paper's procedure for estimating the
// unbiased latency distribution U (§2.2): pick a uniformly random time in the
// observation window and take the latency sample closest in time; break ties
// at random.
//
// Also provides the exact expectation of that procedure: the probability that
// sample i is selected equals the length of its Voronoi cell (the interval of
// times closer to t_i than to any other sample) divided by the window length.
// The Monte-Carlo and Voronoi estimators are cross-checked in tests and
// compared in bench/ablation_estimators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace autosens::stats {

/// Index of the sample whose time is nearest to `t`.
/// `times` must be sorted ascending and non-empty. Among equidistant / equal
/// times the choice is made uniformly at random via `random`.
std::size_t nearest_sample_index(std::span<const std::int64_t> times, std::int64_t t,
                                 Random& random);

/// Draw `draws` nearest-sample indices for uniformly random times in
/// [window_begin, window_end). `times` must be sorted ascending, non-empty.
/// Throws std::invalid_argument if the window is empty or times is empty.
std::vector<std::size_t> nearest_sample_draws(std::span<const std::int64_t> times,
                                              std::int64_t window_begin,
                                              std::int64_t window_end, std::size_t draws,
                                              Random& random);

/// Exact selection probabilities of the nearest-sample procedure: weight[i] is
/// the fraction of [window_begin, window_end) whose nearest sample is i, with
/// exact ties (duplicate timestamps) sharing their cell equally. Weights sum
/// to 1. `times` sorted ascending, non-empty; window must be non-empty.
/// `threads` follows AutoSensOptions::threads (0 = hardware, 1 = serial);
/// the result is byte-identical for every value (fixed chunk grid, cell
/// totals merged in chunk order).
std::vector<double> voronoi_weights(std::span<const std::int64_t> times,
                                    std::int64_t window_begin, std::int64_t window_end,
                                    std::size_t threads = 1);

}  // namespace autosens::stats
