// Fixed-width weighted 1-D histogram — the core data structure behind the
// biased (B) and unbiased (U) latency distributions (paper §2.2–2.3).
//
// Bins are [lo + i*w, lo + (i+1)*w). Values below `lo` clamp into bin 0 and
// values at or beyond the upper edge clamp into the last bin, so total weight
// is conserved; AutoSens relies on that when it compares bin-wise ratios.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autosens::stats {

class Histogram {
 public:
  /// A histogram over [lo, lo + bin_count*bin_width) with `bin_count` bins.
  /// Throws std::invalid_argument on non-positive width or zero bins.
  Histogram(double lo, double bin_width, std::size_t bin_count);

  /// Same geometry, but adopts `buffer` as the counts storage (resized and
  /// zeroed to bin_count) — pair with stats::ScratchPool to build per-chunk
  /// partials without an allocation per chunk.
  Histogram(double lo, double bin_width, std::size_t bin_count, std::vector<double>&& buffer);

  /// Convenience: covers [lo, hi) with bins of `bin_width` (last bin may
  /// extend past hi so that the full range is covered).
  static Histogram covering(double lo, double hi, double bin_width);

  /// covering() over an adopted buffer (see the adopting constructor).
  static Histogram covering(double lo, double hi, double bin_width,
                            std::vector<double>&& buffer);

  /// Move the counts storage out (to return it to a scratch pool). Leaves
  /// the histogram empty with a single zero bin.
  std::vector<double> release_counts() noexcept;

  void add(double value, double weight = 1.0) noexcept;
  void add_all(std::span<const double> values) noexcept;
  /// Add every value with the same weight.
  void add_all(std::span<const double> values, double weight) noexcept;
  /// Add values[i] with weight weights[i]. Spans must be the same length
  /// (asserted in debug builds); release builds bound the loop by the
  /// shorter span so no out-of-range weight is ever read. Bin weights
  /// accumulate in element order; the running total uses the fixed
  /// interleaved reduction (core::simd::sum_interleaved), so it can differ
  /// from a sequence of elementwise add() calls in the last ulp.
  void add_all(std::span<const double> values, std::span<const double> weights) noexcept;

  /// Add `weight` directly into bin `i` (no bin search) — for fused passes
  /// that batch-compute bin indices via core::simd::bin_indices. `i` must be
  /// a valid bin.
  void add_at(std::size_t i, double weight = 1.0) noexcept {
    counts_[i] += weight;
    total_ += weight;
  }

  /// Bin index a value falls into (clamped to [0, size-1]; NaN maps to 0).
  std::size_t bin_index(double value) const noexcept;
  /// Inclusive-left edge of bin i.
  double bin_left(std::size_t i) const noexcept { return lo_ + static_cast<double>(i) * width_; }
  /// Center of bin i.
  double bin_center(std::size_t i) const noexcept {
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
  }

  double lo() const noexcept { return lo_; }
  double bin_width() const noexcept { return width_; }
  std::size_t size() const noexcept { return counts_.size(); }
  double count(std::size_t i) const noexcept { return counts_[i]; }
  std::span<const double> counts() const noexcept { return counts_; }
  double total_weight() const noexcept { return total_; }

  /// Overwrite the weight of one bin (used by the α-normalization step,
  /// which rescales per-slot counts). Keeps total weight consistent.
  void set_count(std::size_t i, double weight) noexcept;
  /// Multiply every bin by `factor` (α-normalization of a whole slot).
  void scale(double factor) noexcept;

  /// Add another histogram bin-wise. Throws if geometry differs.
  void merge(const Histogram& other);

  /// Probability density per bin: count / (total * bin_width).
  /// Returns all-zero if the histogram is empty.
  std::vector<double> pdf() const;
  /// Cumulative distribution evaluated at each bin's right edge.
  std::vector<double> cdf() const;
  /// Linear-interpolated quantile (q in [0,1]) from the CDF.
  /// Throws std::invalid_argument if q outside [0,1] or histogram empty.
  double quantile(double q) const;
  /// Weighted mean of bin centers.
  double mean() const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace autosens::stats
