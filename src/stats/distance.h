// Distances between binned distributions. AutoSens's core object is the
// divergence between the biased (B) and unbiased (U) latency distributions;
// these metrics quantify it as a scalar — useful as a cheap screening test
// ("is there any latency sensitivity in this slice at all?") before
// estimating a full preference curve, and for comparing estimators.
#pragma once

#include <span>

#include "stats/histogram.h"

namespace autosens::stats {

/// Total variation distance: 0.5 * sum |p_i - q_i| over normalized masses.
/// In [0, 1]. Throws std::invalid_argument on geometry mismatch or if either
/// histogram is empty.
double total_variation_distance(const Histogram& p, const Histogram& q);

/// Hellinger distance: sqrt(1 - sum sqrt(p_i q_i)). In [0, 1].
double hellinger_distance(const Histogram& p, const Histogram& q);

/// Two-sample Kolmogorov–Smirnov statistic: max |CDF_p - CDF_q|. In [0, 1].
double ks_statistic(const Histogram& p, const Histogram& q);

/// First-moment shift: mean(p) - mean(q) (signed; negative when p leans to
/// lower values — the direction a latency-averse population produces).
double mean_shift(const Histogram& p, const Histogram& q);

}  // namespace autosens::stats
