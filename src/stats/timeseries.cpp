#include "stats/timeseries.h"

#include <stdexcept>

namespace autosens::stats {

std::vector<WindowAggregate> window_aggregate(std::span<const std::int64_t> times,
                                              std::span<const double> values,
                                              std::int64_t begin, std::int64_t end,
                                              std::int64_t window_ms) {
  if (times.size() != values.size()) {
    throw std::invalid_argument("window_aggregate: size mismatch");
  }
  if (!(end > begin)) throw std::invalid_argument("window_aggregate: empty range");
  if (window_ms <= 0) throw std::invalid_argument("window_aggregate: non-positive window");

  const auto window_count =
      static_cast<std::size_t>((end - begin + window_ms - 1) / window_ms);
  std::vector<WindowAggregate> windows(window_count);
  for (std::size_t w = 0; w < window_count; ++w) {
    windows[w].window_begin = begin + static_cast<std::int64_t>(w) * window_ms;
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] < begin || times[i] >= end) continue;
    const auto w = static_cast<std::size_t>((times[i] - begin) / window_ms);
    auto& agg = windows[w];
    ++agg.count;
    agg.mean += (values[i] - agg.mean) / static_cast<double>(agg.count);
  }
  return windows;
}

std::vector<double> window_counts(std::span<const WindowAggregate> windows) {
  std::vector<double> out;
  out.reserve(windows.size());
  for (const auto& w : windows) out.push_back(static_cast<double>(w.count));
  return out;
}

std::vector<double> window_means(std::span<const WindowAggregate> windows) {
  std::vector<double> out;
  out.reserve(windows.size());
  for (const auto& w : windows) out.push_back(w.mean);
  return out;
}

std::vector<WindowAggregate> nonempty_windows(std::span<const WindowAggregate> windows,
                                              std::size_t min_count) {
  std::vector<WindowAggregate> out;
  for (const auto& w : windows) {
    if (w.count >= min_count) out.push_back(w);
  }
  return out;
}

}  // namespace autosens::stats
