#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autosens::stats {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean_successive_difference(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    sum += std::abs(values[i + 1] - values[i]);
  }
  return sum / static_cast<double>(values.size() - 1);
}

double mean_absolute_difference(std::span<const double> values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  // With x sorted ascending: sum_{i<j} (x_j - x_i) = sum_i (2i - n + 1) x_i.
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += (2.0 * static_cast<double>(i) - static_cast<double>(n) + 1.0) * sorted[i];
  }
  const double pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  return sum / pairs;
}

double msd_mad_ratio(std::span<const double> values) {
  const double mad = mean_absolute_difference(values);
  if (mad <= 0.0) return 0.0;
  return mean_successive_difference(values) / mad;
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - frac) + sorted[lower + 1] * frac;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

double autocorrelation(std::span<const double> values, std::size_t lag) {
  const std::size_t n = values.size();
  if (lag >= n) return 0.0;
  RunningStats stats;
  for (const double v : values) stats.add(v);
  const double mean = stats.mean();
  double denom = 0.0;
  for (const double v : values) denom += (v - mean) * (v - mean);
  if (denom <= 0.0) return 0.0;
  double numer = 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    numer += (values[i] - mean) * (values[i + lag] - mean);
  }
  return numer / denom;
}

std::vector<double> minmax_normalize(std::span<const double> values) {
  std::vector<double> out(values.begin(), values.end());
  if (out.empty()) return out;
  const auto [lo_it, hi_it] = std::minmax_element(out.begin(), out.end());
  const double lo = *lo_it;
  const double range = *hi_it - lo;
  for (double& v : out) v = range > 0.0 ? (v - lo) / range : 0.0;
  return out;
}

}  // namespace autosens::stats
