#include "stats/distance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/simd.h"

namespace autosens::stats {
namespace {

void check_compatible(const Histogram& p, const Histogram& q) {
  if (p.size() != q.size() || p.bin_width() != q.bin_width() || p.lo() != q.lo()) {
    throw std::invalid_argument("distance: histogram geometry mismatch");
  }
  if (p.total_weight() <= 0.0 || q.total_weight() <= 0.0) {
    throw std::invalid_argument("distance: empty histogram");
  }
}

}  // namespace

double total_variation_distance(const Histogram& p, const Histogram& q) {
  check_compatible(p, q);
  const double sum =
      core::simd::l1_prob_diff(p.counts(), q.counts(), p.total_weight(), q.total_weight());
  return 0.5 * sum;
}

double hellinger_distance(const Histogram& p, const Histogram& q) {
  check_compatible(p, q);
  const double bc =  // Bhattacharyya coefficient
      core::simd::bhattacharyya(p.counts(), q.counts(), p.total_weight(), q.total_weight());
  return std::sqrt(std::max(0.0, 1.0 - bc));
}

double ks_statistic(const Histogram& p, const Histogram& q) {
  check_compatible(p, q);
  double cp = 0.0;
  double cq = 0.0;
  double max_gap = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    cp += p.count(i) / p.total_weight();
    cq += q.count(i) / q.total_weight();
    max_gap = std::max(max_gap, std::abs(cp - cq));
  }
  return max_gap;
}

double mean_shift(const Histogram& p, const Histogram& q) {
  check_compatible(p, q);
  return p.mean() - q.mean();
}

}  // namespace autosens::stats
