#include "stats/streaming_quantile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autosens::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0 && q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q must be in (0, 1)");
  }
  increment_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

double P2Quantile::parabolic(int i, double d) const noexcept {
  const auto idx = static_cast<std::size_t>(i);
  return heights_[idx] +
         d / (positions_[idx + 1] - positions_[idx - 1]) *
             ((positions_[idx] - positions_[idx - 1] + d) *
                  (heights_[idx + 1] - heights_[idx]) /
                  (positions_[idx + 1] - positions_[idx]) +
              (positions_[idx + 1] - positions_[idx] - d) *
                  (heights_[idx] - heights_[idx - 1]) /
                  (positions_[idx] - positions_[idx - 1]));
}

double P2Quantile::linear(int i, int d) const noexcept {
  const auto idx = static_cast<std::size_t>(i);
  const auto nbr = static_cast<std::size_t>(i + d);
  return heights_[idx] + d * (heights_[nbr] - heights_[idx]) /
                             (positions_[nbr] - positions_[idx]);
}

void P2Quantile::add(double value) noexcept {
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
        desired_[i] = 1.0 + 4.0 * increment_[i];
      }
    }
    return;
  }

  // Locate the cell containing the new value; extend extremes if needed.
  std::size_t k = 0;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    k = 3;
  } else {
    while (k < 3 && value >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increment_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const double offset = desired_[idx] - positions_[idx];
    const bool can_right = positions_[idx + 1] - positions_[idx] > 1.0;
    const bool can_left = positions_[idx - 1] - positions_[idx] < -1.0;
    if ((offset >= 1.0 && can_right) || (offset <= -1.0 && can_left)) {
      const double d = offset >= 1.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, d);
      if (!(heights_[idx - 1] < candidate && candidate < heights_[idx + 1])) {
        candidate = linear(i, static_cast<int>(d));
      }
      heights_[idx] = candidate;
      positions_[idx] += d;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) throw std::logic_error("P2Quantile::value: no samples");
  if (count_ < 5) {
    // Exact small-sample quantile over the sorted prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(count_));
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - std::floor(pos);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  return heights_[2];
}

}  // namespace autosens::stats
