#include "stats/rng.h"

#include <cmath>
#include <numbers>

namespace autosens::stats {

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

Xoshiro256 Xoshiro256::split() noexcept {
  // The child takes over the current stream position; self jumps 2^128 draws
  // ahead, so the two never overlap and successive splits are all distinct.
  Xoshiro256 child = *this;
  jump();
  return child;
}

std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t index) noexcept {
  // Mix the base seed once, fold in the counter with a golden-ratio stride,
  // and mix again so neighbouring indices land in unrelated states.
  SplitMix64 base(seed);
  SplitMix64 mixed(base.next() ^ ((index + 1) * 0x9e3779b97f4a7c15ULL));
  return mixed.next();
}

double Random::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Random::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Random::uniform_index(std::uint64_t n) noexcept {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = engine_();
    if (r >= threshold) return r % n;
  }
}

double Random::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Random::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Random::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Random::exponential(double rate) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Random::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction: adequate for the
  // workload-sizing draws this library makes at large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

bool Random::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace autosens::stats
