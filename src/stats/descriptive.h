// Descriptive statistics: running moments (Welford), quantiles, and the
// von Neumann mean-successive-difference test the paper uses (Fig 1) to show
// that latency has temporal locality.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autosens::stats {

/// Numerically stable running mean/variance (Welford).
class RunningStats {
 public:
  void add(double value) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample mean of |x[i+1] - x[i]| — "mean successive difference" (MSD).
/// Returns 0 for fewer than two samples.
double mean_successive_difference(std::span<const double> values) noexcept;

/// Mean absolute difference over all unordered pairs (MAD), the
/// normalizer in the paper's MSD/MAD ratio. Computed in O(n log n) via the
/// sorted-order identity. Returns 0 for fewer than two samples.
double mean_absolute_difference(std::span<const double> values);

/// MSD/MAD ratio (paper Fig 1). ~1 for an exchangeable (shuffled) series,
/// much smaller when nearby samples are similar (temporal locality), and
/// ~2/n for a sorted series. Returns 0 when MAD is 0 (constant series).
double msd_mad_ratio(std::span<const double> values);

/// Quantile of a sample using linear interpolation between order statistics
/// (type-7, the numpy/R default). q in [0,1]. Throws on empty input or
/// out-of-range q. Copies and sorts internally.
double quantile(std::span<const double> values, double q);

/// Median (quantile 0.5).
double median(std::span<const double> values);

/// Lag-k sample autocorrelation. Returns 0 if variance is 0 or k >= n.
double autocorrelation(std::span<const double> values, std::size_t lag);

/// Min-max normalize into [0, 1] (constant input maps to all zeros).
std::vector<double> minmax_normalize(std::span<const double> values);

}  // namespace autosens::stats
