// Reusable scratch buffers for allocation-free hot loops.
//
// The parallel estimators (biased fill, unbiased MC/Voronoi, α
// classification) build one partial histogram — a `bin_count`-double buffer —
// per chunk, and the bootstrap views materialize a times + latencies column
// per replicate. Allocating those buffers fresh every time puts the allocator
// on the hot path; this pool recycles them instead.
//
// Ownership model (see DESIGN.md "Data layout & memory model"): take() hands
// the caller full ownership of a plain std::vector — the pool keeps no
// reference, so a taken buffer may outlive the pool interaction, be moved
// into a result, or simply be dropped. give() donates a buffer back; the pool
// keeps at most kMaxPooled per element type and silently frees the rest.
// Determinism is unaffected: callers must treat a taken buffer's contents as
// unspecified and fully overwrite (or assign) it before reading.
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace autosens::stats {

/// Process-wide freelist of reusable `std::vector<T>` buffers. Thread-safe;
/// take/give are a single mutex-protected pointer swap each, far cheaper than
/// an allocation of the typical histogram or column size.
template <typename T>
class ScratchPool {
 public:
  /// A buffer with unspecified size, capacity, and contents (possibly empty
  /// when the pool is dry). Callers must resize/assign before use.
  static std::vector<T> take() {
    std::lock_guard<std::mutex> lock(mutex());
    auto& pool = buffers();
    if (pool.empty()) return {};
    std::vector<T> buffer = std::move(pool.back());
    pool.pop_back();
    return buffer;
  }

  /// Donate a buffer's capacity back to the pool. Buffers beyond kMaxPooled
  /// (and zero-capacity ones) are simply freed.
  static void give(std::vector<T>&& buffer) noexcept {
    if (buffer.capacity() == 0) return;
    std::lock_guard<std::mutex> lock(mutex());
    auto& pool = buffers();
    if (pool.size() < kMaxPooled) pool.push_back(std::move(buffer));
  }

  /// Buffers currently parked in the pool (for tests).
  static std::size_t pooled_count() {
    std::lock_guard<std::mutex> lock(mutex());
    return buffers().size();
  }

 private:
  static constexpr std::size_t kMaxPooled = 64;

  static std::mutex& mutex() {
    static std::mutex instance;
    return instance;
  }
  static std::vector<std::vector<T>>& buffers() {
    static std::vector<std::vector<T>> instance;
    return instance;
  }
};

/// RAII wrapper: takes a buffer from the ScratchPool on construction (resized
/// to `size`, contents unspecified) and gives it back on destruction.
template <typename T>
class PooledVector {
 public:
  PooledVector() = default;
  explicit PooledVector(std::size_t size) : buffer_(ScratchPool<T>::take()) {
    buffer_.resize(size);
  }
  ~PooledVector() { ScratchPool<T>::give(std::move(buffer_)); }

  PooledVector(const PooledVector&) = delete;
  PooledVector& operator=(const PooledVector&) = delete;
  PooledVector(PooledVector&& other) noexcept : buffer_(std::move(other.buffer_)) {
    other.buffer_.clear();
    other.buffer_.shrink_to_fit();
  }
  PooledVector& operator=(PooledVector&& other) noexcept {
    if (this != &other) {
      ScratchPool<T>::give(std::move(buffer_));
      buffer_ = std::move(other.buffer_);
      other.buffer_.clear();
      other.buffer_.shrink_to_fit();
    }
    return *this;
  }

  std::vector<T>& vec() noexcept { return buffer_; }
  const std::vector<T>& vec() const noexcept { return buffer_; }
  std::span<const T> span() const noexcept { return buffer_; }
  T* data() noexcept { return buffer_.data(); }
  const T* data() const noexcept { return buffer_.data(); }
  std::size_t size() const noexcept { return buffer_.size(); }
  bool empty() const noexcept { return buffer_.empty(); }
  T& operator[](std::size_t i) noexcept { return buffer_[i]; }
  const T& operator[](std::size_t i) const noexcept { return buffer_[i]; }

 private:
  std::vector<T> buffer_;
};

}  // namespace autosens::stats
