#include "stats/savitzky_golay.h"

#include <algorithm>
#include <stdexcept>

#include "core/simd.h"
#include "stats/linalg.h"

namespace autosens::stats {
namespace {

/// Window offsets -h..h as doubles.
std::vector<double> window_offsets(std::size_t window) {
  const auto h = static_cast<std::ptrdiff_t>(window / 2);
  std::vector<double> x;
  x.reserve(window);
  for (std::ptrdiff_t i = -h; i <= h; ++i) x.push_back(static_cast<double>(i));
  return x;
}

}  // namespace

SavitzkyGolay::SavitzkyGolay(SavitzkyGolayOptions options) : options_(options) {
  if (options_.window % 2 == 0 || options_.window == 0) {
    throw std::invalid_argument("SavitzkyGolay: window must be odd");
  }
  if (options_.degree >= options_.window) {
    throw std::invalid_argument("SavitzkyGolay: degree must be smaller than window");
  }
  // The smoothing weight of sample j is the value at x_j of the polynomial
  // whose coefficients are row 0 of (A^T A)^{-1}: w_j = sum_k m_k x_j^k with
  // (A^T A) m = e_0, where A is the Vandermonde matrix over the offsets.
  const auto offsets = window_offsets(options_.window);
  const std::size_t terms = options_.degree + 1;
  Matrix ata(terms, terms);
  for (std::size_t r = 0; r < terms; ++r) {
    for (std::size_t c = 0; c < terms; ++c) {
      double sum = 0.0;
      for (const double x : offsets) {
        double p = 1.0;
        for (std::size_t k = 0; k < r + c; ++k) p *= x;
        sum += p;
      }
      ata.at(r, c) = sum;
    }
  }
  std::vector<double> e0(terms, 0.0);
  e0[0] = 1.0;
  const auto m = cholesky_solve(ata, e0);
  kernel_.reserve(options_.window);
  for (const double x : offsets) kernel_.push_back(polyval(m, x));
}

std::vector<double> SavitzkyGolay::smooth(std::span<const double> signal) const {
  const std::size_t n = signal.size();
  if (n == 0) return {};
  const std::size_t window = options_.window;
  if (n < window) {
    // Too short for convolution: fit one polynomial to the whole signal.
    const std::size_t degree = std::min(options_.degree, n - 1);
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i);
    const auto coeffs = polyfit(x, signal, degree);
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = polyval(coeffs, x[i]);
    return out;
  }

  const std::size_t h = window / 2;
  std::vector<double> out(n, 0.0);
  // Interior: valid-mode FIR convolution with the precomputed kernel
  // (out[h + t] = sum_j kernel[j] * signal[t + j]), vectorized behind the
  // runtime dispatch layer.
  core::simd::fir_convolve_valid(signal, kernel_,
                                 std::span<double>(out).subspan(h, n - window + 1));
  // Edges ("interp" mode): fit one polynomial to each terminal window and
  // evaluate it at the uncovered positions.
  std::vector<double> x(window);
  for (std::size_t i = 0; i < window; ++i) x[i] = static_cast<double>(i);
  const auto head = polyfit(x, signal.subspan(0, window), options_.degree);
  for (std::size_t i = 0; i < h; ++i) out[i] = polyval(head, static_cast<double>(i));
  const auto tail = polyfit(x, signal.subspan(n - window, window), options_.degree);
  for (std::size_t i = 0; i < h; ++i) {
    const std::size_t pos = n - h + i;
    out[pos] = polyval(tail, static_cast<double>(window - h + i));
  }
  return out;
}

std::vector<double> savgol_smooth(std::span<const double> signal, std::size_t window,
                                  std::size_t degree) {
  return SavitzkyGolay({.window = window, .degree = degree}).smooth(signal);
}

}  // namespace autosens::stats
