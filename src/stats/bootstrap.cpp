#include "stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.h"
#include "stats/descriptive.h"

namespace autosens::stats {
namespace {

void check_params(std::size_t replicates, double confidence) {
  if (replicates == 0) throw std::invalid_argument("bootstrap: replicates must be nonzero");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence must be in (0,1)");
  }
}

Interval percentile_interval(std::vector<double>& draws, double confidence) {
  const double alpha = 1.0 - confidence;
  return Interval{.lo = quantile(draws, alpha / 2.0), .hi = quantile(draws, 1.0 - alpha / 2.0)};
}

}  // namespace

Interval bootstrap_interval(std::span<const double> sample,
                            const std::function<double(std::span<const double>)>& statistic,
                            std::size_t replicates, double confidence, Random& random,
                            std::size_t threads) {
  if (sample.empty()) throw std::invalid_argument("bootstrap_interval: empty sample");
  check_params(replicates, confidence);
  // One draw from the caller's stream anchors all replicates; replicate r
  // then resamples from its own counter-seeded substream, so `draws` does
  // not depend on how replicates are distributed over threads.
  const std::uint64_t stream_base = random.engine()();
  std::vector<double> draws(replicates);
  core::parallel_for(replicates, threads, 1,
                     [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
                       std::vector<double> resample(sample.size());
                       for (std::size_t r = begin; r < end; ++r) {
                         Random substream(substream_seed(stream_base, r));
                         for (auto& v : resample) {
                           v = sample[substream.uniform_index(sample.size())];
                         }
                         draws[r] = statistic(resample);
                       }
                     });
  return percentile_interval(draws, confidence);
}

std::vector<Interval> bootstrap_curve_interval(
    std::size_t sample_size,
    const std::function<std::vector<double>(std::span<const std::size_t>)>& statistic,
    std::size_t replicates, double confidence, Random& random, std::size_t threads) {
  if (sample_size == 0) throw std::invalid_argument("bootstrap_curve_interval: empty sample");
  check_params(replicates, confidence);
  const std::uint64_t stream_base = random.engine()();
  std::vector<std::vector<double>> curves(replicates);
  core::parallel_for(replicates, threads, 1,
                     [&](std::size_t begin, std::size_t end, std::size_t /*chunk*/) {
                       std::vector<std::size_t> indices(sample_size);
                       for (std::size_t r = begin; r < end; ++r) {
                         Random substream(substream_seed(stream_base, r));
                         for (auto& idx : indices) {
                           idx = substream.uniform_index(sample_size);
                         }
                         curves[r] = statistic(indices);
                       }
                     });
  // Length check runs after the fan-out, in replicate order, so the first
  // offending replicate reported is the same for any thread count.
  for (std::size_t r = 1; r < replicates; ++r) {
    if (curves[r].size() != curves.front().size()) {
      throw std::runtime_error("bootstrap_curve_interval: statistic returned varying lengths");
    }
  }
  const std::size_t points = curves.front().size();
  std::vector<Interval> out(points);
  std::vector<double> column(replicates);
  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t r = 0; r < replicates; ++r) column[r] = curves[r][p];
    out[p] = percentile_interval(column, confidence);
  }
  return out;
}

}  // namespace autosens::stats
