#include "stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.h"

namespace autosens::stats {
namespace {

void check_params(std::size_t replicates, double confidence) {
  if (replicates == 0) throw std::invalid_argument("bootstrap: replicates must be nonzero");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("bootstrap: confidence must be in (0,1)");
  }
}

Interval percentile_interval(std::vector<double>& draws, double confidence) {
  const double alpha = 1.0 - confidence;
  return Interval{.lo = quantile(draws, alpha / 2.0), .hi = quantile(draws, 1.0 - alpha / 2.0)};
}

}  // namespace

Interval bootstrap_interval(std::span<const double> sample,
                            const std::function<double(std::span<const double>)>& statistic,
                            std::size_t replicates, double confidence, Random& random) {
  if (sample.empty()) throw std::invalid_argument("bootstrap_interval: empty sample");
  check_params(replicates, confidence);
  std::vector<double> resample(sample.size());
  std::vector<double> draws;
  draws.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& v : resample) {
      v = sample[static_cast<std::size_t>(random.uniform_index(sample.size()))];
    }
    draws.push_back(statistic(resample));
  }
  return percentile_interval(draws, confidence);
}

std::vector<Interval> bootstrap_curve_interval(
    std::size_t sample_size,
    const std::function<std::vector<double>(std::span<const std::size_t>)>& statistic,
    std::size_t replicates, double confidence, Random& random) {
  if (sample_size == 0) throw std::invalid_argument("bootstrap_curve_interval: empty sample");
  check_params(replicates, confidence);
  std::vector<std::size_t> indices(sample_size);
  std::vector<std::vector<double>> curves;
  curves.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& idx : indices) {
      idx = static_cast<std::size_t>(random.uniform_index(sample_size));
    }
    curves.push_back(statistic(indices));
    if (curves.back().size() != curves.front().size()) {
      throw std::runtime_error("bootstrap_curve_interval: statistic returned varying lengths");
    }
  }
  const std::size_t points = curves.front().size();
  std::vector<Interval> out(points);
  std::vector<double> column(replicates);
  for (std::size_t p = 0; p < points; ++p) {
    for (std::size_t r = 0; r < replicates; ++r) column[r] = curves[r][p];
    out[p] = percentile_interval(column, confidence);
  }
  return out;
}

}  // namespace autosens::stats
