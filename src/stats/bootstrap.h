// Percentile bootstrap over scalar statistics and curves. The paper reports
// point estimates only; we add bootstrap confidence intervals so downstream
// users can tell signal from estimation noise (and so tests can assert that
// planted ground truth lies inside the interval).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace autosens::stats {

/// A two-sided percentile interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double v) const noexcept { return v >= lo && v <= hi; }
};

/// Percentile bootstrap CI for a scalar statistic of a sample.
/// `statistic` is evaluated on `replicates` resamples (with replacement).
/// `confidence` in (0,1), e.g. 0.95. Throws on empty input or bad params.
/// Replicate r draws from a counter-seeded substream of `random`, so the
/// interval is byte-identical for every `threads` value; with threads > 1
/// `statistic` must be safe to call concurrently.
Interval bootstrap_interval(std::span<const double> sample,
                            const std::function<double(std::span<const double>)>& statistic,
                            std::size_t replicates, double confidence, Random& random,
                            std::size_t threads = 1);

/// Bootstrap CIs for every point of a curve-valued statistic: `statistic`
/// maps a resampled index set (into the original sample) to a curve of fixed
/// length. Returns one Interval per curve point. Threading contract as for
/// bootstrap_interval.
std::vector<Interval> bootstrap_curve_interval(
    std::size_t sample_size,
    const std::function<std::vector<double>(std::span<const std::size_t>)>& statistic,
    std::size_t replicates, double confidence, Random& random, std::size_t threads = 1);

}  // namespace autosens::stats
