// Streaming quantile estimation via the P² algorithm (Jain & Chlamtac 1985).
// Real telemetry volumes (the paper analyzes billions of actions) do not fit
// in memory for exact per-user medians; P² estimates a quantile in O(1)
// space per (user, quantile) with bounded error, which is what a production
// deployment of the conditioning-to-speed analysis (§3.4) would use.
#pragma once

#include <array>
#include <cstddef>

namespace autosens::stats {

class P2Quantile {
 public:
  /// Estimator for the q-quantile, q in (0, 1).
  /// Throws std::invalid_argument for q outside (0, 1).
  explicit P2Quantile(double q);

  void add(double value) noexcept;
  std::size_t count() const noexcept { return count_; }

  /// Current estimate. Exact while fewer than 6 samples have been seen.
  /// Throws std::logic_error when empty.
  double value() const;

 private:
  double parabolic(int i, double d) const noexcept;
  double linear(int i, int d) const noexcept;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};   ///< Marker heights.
  std::array<double, 5> positions_{}; ///< Actual marker positions.
  std::array<double, 5> desired_{};   ///< Desired marker positions.
  std::array<double, 5> increment_{}; ///< Desired-position increments.
};

/// Convenience: streaming median.
class P2Median : public P2Quantile {
 public:
  P2Median() : P2Quantile(0.5) {}
};

}  // namespace autosens::stats
