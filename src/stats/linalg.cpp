#include "stats/linalg.h"

#include <cmath>
#include <stdexcept>

namespace autosens::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("Matrix: zero dimension");
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double lhs = at(r, k);
      if (lhs == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) out.at(r, c) += lhs * other.at(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> vec) const {
  if (cols_ != vec.size()) throw std::invalid_argument("Matrix::multiply: vector size mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += at(r, c) * vec[c];
    out[r] = sum;
  }
  return out;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("cholesky_solve: shape mismatch");
  }
  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0) throw std::runtime_error("cholesky_solve: matrix not positive definite");
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  // Forward substitution: L y = b.
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l.at(i, k) * y[k];
    y[i] = sum / l.at(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l.at(k, ii) * x[k];
    x[ii] = sum / l.at(ii, ii);
  }
  return x;
}

std::vector<double> polyfit(std::span<const double> x, std::span<const double> y,
                            std::size_t degree) {
  if (x.size() != y.size()) throw std::invalid_argument("polyfit: size mismatch");
  const std::size_t terms = degree + 1;
  if (x.size() < terms) throw std::invalid_argument("polyfit: not enough points");
  // Normal equations on the Vandermonde design matrix. Inputs here are SG
  // window offsets (small integers), so conditioning is not a concern.
  Matrix ata(terms, terms);
  std::vector<double> atb(terms, 0.0);
  std::vector<double> powers(2 * degree + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double p = 1.0;
    for (std::size_t k = 0; k < powers.size(); ++k) {
      powers[k] += p;
      p *= x[i];
    }
    p = 1.0;
    for (std::size_t k = 0; k < terms; ++k) {
      atb[k] += p * y[i];
      p *= x[i];
    }
  }
  // powers[k] now holds sum_i x_i^k.
  for (std::size_t r = 0; r < terms; ++r) {
    for (std::size_t c = 0; c < terms; ++c) ata.at(r, c) = powers[r + c];
  }
  return cholesky_solve(ata, atb);
}

double polyval(std::span<const double> coeffs, double x) noexcept {
  double result = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) result = result * x + coeffs[i];
  return result;
}

}  // namespace autosens::stats
