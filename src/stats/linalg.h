// Small dense linear algebra: just enough for least-squares polynomial fits,
// which back the Savitzky–Golay filter and its edge handling. Not a general
// matrix library — sizes here are (degree+1) x (degree+1), i.e. tiny.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autosens::stats {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  Matrix transpose() const;
  Matrix multiply(const Matrix& other) const;  // throws on shape mismatch
  std::vector<double> multiply(std::span<const double> vec) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Solve A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::invalid_argument on shape mismatch, std::runtime_error if A is
/// not positive definite.
std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b);

/// Least squares fit of a polynomial of the given degree to (x, y) pairs via
/// the normal equations. Returns coefficients c0..c_degree (c0 = constant).
/// Throws if sizes mismatch or there are fewer points than coefficients.
std::vector<double> polyfit(std::span<const double> x, std::span<const double> y,
                            std::size_t degree);

/// Evaluate a polynomial (coefficients low-to-high) at x (Horner).
double polyval(std::span<const double> coeffs, double x) noexcept;

}  // namespace autosens::stats
