#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/simd.h"

namespace autosens::stats {

Histogram::Histogram(double lo, double bin_width, std::size_t bin_count)
    : lo_(lo), width_(bin_width), counts_(bin_count, 0.0) {
  if (!(bin_width > 0.0)) {
    throw std::invalid_argument("Histogram: bin_width must be positive");
  }
  if (bin_count == 0) {
    throw std::invalid_argument("Histogram: bin_count must be nonzero");
  }
}

Histogram::Histogram(double lo, double bin_width, std::size_t bin_count,
                     std::vector<double>&& buffer)
    : lo_(lo), width_(bin_width), counts_(std::move(buffer)) {
  if (!(bin_width > 0.0)) {
    throw std::invalid_argument("Histogram: bin_width must be positive");
  }
  if (bin_count == 0) {
    throw std::invalid_argument("Histogram: bin_count must be nonzero");
  }
  counts_.assign(bin_count, 0.0);
}

Histogram Histogram::covering(double lo, double hi, double bin_width) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram::covering: hi must exceed lo");
  if (!(bin_width > 0.0)) {
    throw std::invalid_argument("Histogram::covering: bin_width must be positive");
  }
  const auto bins = static_cast<std::size_t>(std::ceil((hi - lo) / bin_width));
  return Histogram(lo, bin_width, std::max<std::size_t>(bins, 1));
}

Histogram Histogram::covering(double lo, double hi, double bin_width,
                              std::vector<double>&& buffer) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram::covering: hi must exceed lo");
  if (!(bin_width > 0.0)) {
    throw std::invalid_argument("Histogram::covering: bin_width must be positive");
  }
  const auto bins = static_cast<std::size_t>(std::ceil((hi - lo) / bin_width));
  return Histogram(lo, bin_width, std::max<std::size_t>(bins, 1), std::move(buffer));
}

std::vector<double> Histogram::release_counts() noexcept {
  std::vector<double> out = std::move(counts_);
  counts_.assign(1, 0.0);
  total_ = 0.0;
  return out;
}

std::size_t Histogram::bin_index(double value) const noexcept {
  return core::simd::bin_index_scalar(value, lo_, width_, counts_.size());
}

void Histogram::add(double value, double weight) noexcept {
  counts_[bin_index(value)] += weight;
  total_ += weight;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  core::simd::histogram_fill(values, lo_, width_, counts_);
  total_ += static_cast<double>(values.size());
}

void Histogram::add_all(std::span<const double> values, double weight) noexcept {
  core::simd::histogram_fill_const(values, weight, lo_, width_, counts_);
  total_ += weight * static_cast<double>(values.size());
}

void Histogram::add_all(std::span<const double> values,
                        std::span<const double> weights) noexcept {
  assert(values.size() == weights.size() &&
         "Histogram::add_all: values/weights length mismatch");
  const std::size_t n = std::min(values.size(), weights.size());
  total_ += core::simd::histogram_fill_weighted(values.first(n), weights.first(n),
                                                lo_, width_, counts_);
}

void Histogram::set_count(std::size_t i, double weight) noexcept {
  total_ += weight - counts_[i];
  counts_[i] = weight;
}

void Histogram::scale(double factor) noexcept {
  core::simd::scale(counts_, factor);
  total_ *= factor;
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.width_ != width_ || other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: geometry mismatch");
  }
  core::simd::add_assign(counts_, other.counts_);
  total_ += other.total_;
}

std::vector<double> Histogram::pdf() const {
  std::vector<double> density(counts_.size(), 0.0);
  if (total_ <= 0.0) return density;
  const double norm = 1.0 / (total_ * width_);
  for (std::size_t i = 0; i < counts_.size(); ++i) density[i] = counts_[i] * norm;
  return density;
}

std::vector<double> Histogram::cdf() const {
  std::vector<double> cumulative(counts_.size(), 0.0);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    cumulative[i] = total_ > 0.0 ? running / total_ : 0.0;
  }
  return cumulative;
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Histogram::quantile: q outside [0,1]");
  if (total_ <= 0.0) throw std::invalid_argument("Histogram::quantile: empty histogram");
  double running = 0.0;
  const double target = q * total_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (running + counts_[i] >= target) {
      const double within = counts_[i] > 0.0 ? (target - running) / counts_[i] : 0.0;
      return bin_left(i) + within * width_;
    }
    running += counts_[i];
  }
  return bin_left(counts_.size() - 1) + width_;
}

double Histogram::mean() const noexcept {
  if (total_ <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) sum += counts_[i] * bin_center(i);
  return sum / total_;
}

}  // namespace autosens::stats
