#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace autosens::stats {
namespace {

/// Average ranks (1-based), with ties receiving the mean of their positions.
std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("pearson: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("pearson: need at least 2 samples");
  const double n = static_cast<double>(x.size());
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= n;
  mean_y /= n;
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("spearman: size mismatch");
  if (x.size() < 2) throw std::invalid_argument("spearman: need at least 2 samples");
  const auto rx = average_ranks(x);
  const auto ry = average_ranks(y);
  return pearson(rx, ry);
}

}  // namespace autosens::stats
