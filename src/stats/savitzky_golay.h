// Savitzky–Golay smoothing (paper §2.3: window 101, polynomial degree 3).
//
// The interior of the signal is smoothed by convolution with least-squares
// polynomial coefficients; the two half-window edges are handled by fitting a
// polynomial to the first/last window and evaluating it at the edge points
// (the "interp" mode of scipy.signal.savgol_filter), so the smoothed curve is
// defined over the full domain — AutoSens needs the value at the reference
// latency even when it sits near a boundary of the observed latency range.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace autosens::stats {

/// Configuration for a Savitzky–Golay filter.
struct SavitzkyGolayOptions {
  std::size_t window = 101;  ///< Odd window length in samples.
  std::size_t degree = 3;    ///< Polynomial degree; must be < window.
};

class SavitzkyGolay {
 public:
  /// Precomputes the convolution kernel. Throws std::invalid_argument if the
  /// window is even or not larger than the degree.
  explicit SavitzkyGolay(SavitzkyGolayOptions options);

  /// The centered smoothing kernel (length == window).
  std::span<const double> kernel() const noexcept { return kernel_; }

  /// Smooth a signal. If the signal is shorter than the window, a single
  /// polynomial of the configured degree (clamped to the data size) is fitted
  /// to the whole signal instead.
  std::vector<double> smooth(std::span<const double> signal) const;

  const SavitzkyGolayOptions& options() const noexcept { return options_; }

 private:
  SavitzkyGolayOptions options_;
  std::vector<double> kernel_;
};

/// One-shot helper: smooth `signal` with the given window/degree.
std::vector<double> savgol_smooth(std::span<const double> signal,
                                  std::size_t window = 101, std::size_t degree = 3);

}  // namespace autosens::stats
