// Pearson and Spearman correlation, used by the locality analysis (paper
// §2.1, Fig 2): a negative correlation between per-minute sample density and
// per-minute mean latency indicates temporal clustering of low latency.
#pragma once

#include <span>

namespace autosens::stats {

/// Pearson product-moment correlation. Returns 0 when either input has zero
/// variance. Throws std::invalid_argument on size mismatch or n < 2.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (average ranks for ties).
/// Throws std::invalid_argument on size mismatch or n < 2.
double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace autosens::stats
