#include "stats/pchip.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autosens::stats {

PchipCurve::PchipCurve(std::vector<CurvePoint> anchors) : anchors_(std::move(anchors)) {
  if (anchors_.size() < 2) {
    throw std::invalid_argument("PchipCurve: need at least two anchors");
  }
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    if (!(anchors_[i].x > anchors_[i - 1].x)) {
      throw std::invalid_argument("PchipCurve: anchors must be strictly increasing in x");
    }
  }

  const std::size_t n = anchors_.size();
  std::vector<double> h(n - 1);
  std::vector<double> delta(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    h[i] = anchors_[i + 1].x - anchors_[i].x;
    delta[i] = (anchors_[i + 1].y - anchors_[i].y) / h[i];
  }

  slopes_.assign(n, 0.0);
  // Interior slopes: weighted harmonic mean of adjacent secants when they
  // share a sign (Fritsch–Carlson), zero at local extrema.
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (delta[i - 1] * delta[i] > 0.0) {
      const double w1 = 2.0 * h[i] + h[i - 1];
      const double w2 = h[i] + 2.0 * h[i - 1];
      slopes_[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
    }
  }
  // Endpoint slopes: one-sided three-point formula, clamped for shape
  // preservation (scipy's pchip endpoint rule).
  const auto endpoint = [](double h0, double h1, double d0, double d1) {
    double slope = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if (slope * d0 <= 0.0) return 0.0;
    if (d0 * d1 < 0.0 && std::abs(slope) > 3.0 * std::abs(d0)) return 3.0 * d0;
    return slope;
  };
  if (n == 2) {
    slopes_[0] = delta[0];
    slopes_[1] = delta[0];
  } else {
    slopes_[0] = endpoint(h[0], h[1], delta[0], delta[1]);
    slopes_[n - 1] = endpoint(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
  }
}

std::size_t PchipCurve::segment_of(double x) const noexcept {
  const auto upper = std::upper_bound(
      anchors_.begin(), anchors_.end(), x,
      [](double value, const CurvePoint& p) { return value < p.x; });
  const auto idx = static_cast<std::size_t>(upper - anchors_.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, anchors_.size() - 2);
}

double PchipCurve::operator()(double x) const noexcept {
  if (x <= anchors_.front().x) return anchors_.front().y;
  if (x >= anchors_.back().x) return anchors_.back().y;
  const std::size_t i = segment_of(x);
  const double h = anchors_[i + 1].x - anchors_[i].x;
  const double t = (x - anchors_[i].x) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  // Cubic Hermite basis.
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + t;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  return h00 * anchors_[i].y + h10 * h * slopes_[i] + h01 * anchors_[i + 1].y +
         h11 * h * slopes_[i + 1];
}

double PchipCurve::derivative(double x) const noexcept {
  if (x < anchors_.front().x || x > anchors_.back().x) return 0.0;
  const std::size_t i = segment_of(x);
  const double h = anchors_[i + 1].x - anchors_[i].x;
  const double t = (x - anchors_[i].x) / h;
  const double t2 = t * t;
  const double dh00 = (6.0 * t2 - 6.0 * t) / h;
  const double dh10 = (3.0 * t2 - 4.0 * t + 1.0);
  const double dh01 = (-6.0 * t2 + 6.0 * t) / h;
  const double dh11 = (3.0 * t2 - 2.0 * t);
  return dh00 * anchors_[i].y + dh10 * slopes_[i] + dh01 * anchors_[i + 1].y +
         dh11 * slopes_[i + 1];
}

}  // namespace autosens::stats
