// Fixed-window time-series aggregation. Backs the paper's Fig 2 (latency vs
// activity rate over 2 days) and the density-vs-latency locality check
// (§2.1): per-window sample count and per-window mean latency.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace autosens::stats {

/// Aggregates of one time window.
struct WindowAggregate {
  std::int64_t window_begin = 0;  ///< Inclusive window start (epoch ms).
  std::size_t count = 0;          ///< Samples in the window.
  double mean = 0.0;              ///< Mean value (0 when count == 0).
};

/// Partition [begin, end) into consecutive windows of `window_ms` and compute
/// per-window count and mean of `values`. `times` must be sorted ascending
/// and aligned with `values`. Samples outside [begin, end) are ignored.
/// Throws std::invalid_argument on size mismatch, empty range, or
/// non-positive window.
std::vector<WindowAggregate> window_aggregate(std::span<const std::int64_t> times,
                                              std::span<const double> values,
                                              std::int64_t begin, std::int64_t end,
                                              std::int64_t window_ms);

/// Convenience extraction helpers for correlation / plotting.
std::vector<double> window_counts(std::span<const WindowAggregate> windows);
std::vector<double> window_means(std::span<const WindowAggregate> windows);

/// Restrict to windows with at least `min_count` samples (mean of an empty
/// window is meaningless for correlation).
std::vector<WindowAggregate> nonempty_windows(std::span<const WindowAggregate> windows,
                                              std::size_t min_count = 1);

}  // namespace autosens::stats
