// Piecewise curves over (x, y) anchor points.
//
// PiecewiseLinearCurve is the ground-truth representation used by the
// simulator: the paper reports normalized-latency-preference values at a
// handful of latencies (e.g. SelectMail = 0.88 / 0.68 / 0.61 at 500 / 1000 /
// 1500 ms), and we plant curves interpolating exactly those anchors.
#pragma once

#include <span>
#include <vector>

namespace autosens::stats {

/// An (x, y) anchor.
struct CurvePoint {
  double x = 0.0;
  double y = 0.0;
};

/// Linear interpolation through anchors; clamped to the terminal values
/// outside the anchor range.
class PiecewiseLinearCurve {
 public:
  /// Anchors must be non-empty and strictly increasing in x.
  /// Throws std::invalid_argument otherwise.
  explicit PiecewiseLinearCurve(std::vector<CurvePoint> anchors);

  double operator()(double x) const noexcept;

  std::span<const CurvePoint> anchors() const noexcept { return anchors_; }
  double min_x() const noexcept { return anchors_.front().x; }
  double max_x() const noexcept { return anchors_.back().x; }

  /// A new curve with y' = 1 - s * (1 - y): scales the *drop from 1.0* by s.
  /// Used to derive steeper/shallower variants of a preference curve (e.g.
  /// the paper's Q1..Q4 conditioning cohorts), preserving y = 1 fixpoints.
  PiecewiseLinearCurve with_drop_scaled(double s) const;

  /// A new curve divided pointwise by its value at x_ref (normalization).
  PiecewiseLinearCurve normalized_at(double x_ref) const;

 private:
  std::vector<CurvePoint> anchors_;
};

}  // namespace autosens::stats
