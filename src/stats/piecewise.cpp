#include "stats/piecewise.h"

#include <algorithm>
#include <stdexcept>

namespace autosens::stats {

PiecewiseLinearCurve::PiecewiseLinearCurve(std::vector<CurvePoint> anchors)
    : anchors_(std::move(anchors)) {
  if (anchors_.empty()) {
    throw std::invalid_argument("PiecewiseLinearCurve: need at least one anchor");
  }
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    if (!(anchors_[i].x > anchors_[i - 1].x)) {
      throw std::invalid_argument("PiecewiseLinearCurve: anchors must be strictly increasing in x");
    }
  }
}

double PiecewiseLinearCurve::operator()(double x) const noexcept {
  if (x <= anchors_.front().x) return anchors_.front().y;
  if (x >= anchors_.back().x) return anchors_.back().y;
  const auto upper = std::upper_bound(
      anchors_.begin(), anchors_.end(), x,
      [](double value, const CurvePoint& p) { return value < p.x; });
  const auto lower = upper - 1;
  const double t = (x - lower->x) / (upper->x - lower->x);
  return lower->y + t * (upper->y - lower->y);
}

PiecewiseLinearCurve PiecewiseLinearCurve::with_drop_scaled(double s) const {
  std::vector<CurvePoint> scaled = anchors_;
  for (auto& p : scaled) p.y = 1.0 - s * (1.0 - p.y);
  return PiecewiseLinearCurve(std::move(scaled));
}

PiecewiseLinearCurve PiecewiseLinearCurve::normalized_at(double x_ref) const {
  const double ref = (*this)(x_ref);
  if (ref == 0.0) throw std::invalid_argument("normalized_at: curve is zero at reference");
  std::vector<CurvePoint> scaled = anchors_;
  for (auto& p : scaled) p.y /= ref;
  return PiecewiseLinearCurve(std::move(scaled));
}

}  // namespace autosens::stats
