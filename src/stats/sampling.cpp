#include "stats/sampling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"

namespace autosens::stats {
namespace {

/// [first, last) range of indices in `times` holding the same value as
/// times[idx].
std::pair<std::size_t, std::size_t> equal_time_run(std::span<const std::int64_t> times,
                                                   std::size_t idx) {
  const std::int64_t value = times[idx];
  std::size_t first = idx;
  while (first > 0 && times[first - 1] == value) --first;
  std::size_t last = idx + 1;
  while (last < times.size() && times[last] == value) ++last;
  return {first, last};
}

/// nearest_sample_index with the input validation hoisted out (the draw loop
/// calls this once per draw; `times` is known non-empty there).
std::size_t nearest_index_unchecked(std::span<const std::int64_t> times, std::int64_t t,
                                    Random& random) {
  const auto it = std::lower_bound(times.begin(), times.end(), t);
  std::size_t chosen = 0;
  if (it == times.end()) {
    chosen = times.size() - 1;
  } else if (it == times.begin()) {
    chosen = 0;
  } else {
    const auto right = static_cast<std::size_t>(it - times.begin());
    const std::size_t left = right - 1;
    const std::int64_t d_left = t - times[left];
    const std::int64_t d_right = times[right] - t;
    if (d_left < d_right) {
      chosen = left;
    } else if (d_right < d_left) {
      chosen = right;
    } else {
      chosen = random.bernoulli(0.5) ? left : right;
    }
  }
  // Paper §2.2: multiple samples at the chosen time → pick one at random.
  const auto [first, last] = equal_time_run(times, chosen);
  if (last - first > 1) {
    chosen = first + static_cast<std::size_t>(random.uniform_index(last - first));
  }
  return chosen;
}

/// Weights and total cell length for the duplicate-time runs that START in
/// [first, last). Neighbour times outside the range are read, never written.
double voronoi_fill(std::span<const std::int64_t> times, std::size_t first,
                    std::size_t last, double begin, double end,
                    std::span<double> weights) {
  const std::size_t n = times.size();
  double total = 0.0;
  std::size_t i = first;
  while (i < last) {
    // Group duplicates: they split their shared cell equally (the random
    // tie-break of the sampling procedure is uniform over them).
    std::size_t j = i;
    while (j + 1 < n && times[j + 1] == times[i]) ++j;
    const double t = static_cast<double>(times[i]);
    const double left_edge =
        i == 0 ? begin : std::max(begin, 0.5 * (static_cast<double>(times[i - 1]) + t));
    const double right_edge =
        j + 1 == n ? end : std::min(end, 0.5 * (t + static_cast<double>(times[j + 1])));
    const double cell = std::max(0.0, right_edge - left_edge);
    const double share = cell / static_cast<double>(j - i + 1);
    for (std::size_t k = i; k <= j; ++k) weights[k] = share;
    total += cell;
    i = j + 1;
  }
  return total;
}

}  // namespace

std::size_t nearest_sample_index(std::span<const std::int64_t> times, std::int64_t t,
                                 Random& random) {
  if (times.empty()) throw std::invalid_argument("nearest_sample_index: empty times");
  return nearest_index_unchecked(times, t, random);
}

std::vector<std::size_t> nearest_sample_draws(std::span<const std::int64_t> times,
                                              std::int64_t window_begin,
                                              std::int64_t window_end, std::size_t draws,
                                              Random& random) {
  if (times.empty()) throw std::invalid_argument("nearest_sample_draws: empty times");
  if (!(window_end > window_begin)) {
    throw std::invalid_argument("nearest_sample_draws: empty window");
  }
  std::vector<std::size_t> out;
  out.reserve(draws);
  const double span = static_cast<double>(window_end - window_begin);
  for (std::size_t i = 0; i < draws; ++i) {
    const auto t = window_begin + static_cast<std::int64_t>(random.uniform() * span);
    out.push_back(nearest_index_unchecked(times, t, random));
  }
  return out;
}

std::vector<double> voronoi_weights(std::span<const std::int64_t> times,
                                    std::int64_t window_begin, std::int64_t window_end,
                                    std::size_t threads) {
  if (times.empty()) throw std::invalid_argument("voronoi_weights: empty times");
  if (!(window_end > window_begin)) throw std::invalid_argument("voronoi_weights: empty window");
  const std::size_t n = times.size();
  std::vector<double> weights(n, 0.0);
  const double begin = static_cast<double>(window_begin);
  const double end = static_cast<double>(window_end);

  // Chunk boundaries aligned to run starts so every duplicate-time run is
  // handled by exactly one chunk. The grid depends only on n, so weights
  // and the chunk-ordered cell total are thread-count invariant.
  const core::ChunkGrid grid = core::make_chunk_grid(n, core::kRecordChunk);
  std::vector<std::size_t> starts(grid.chunks + 1, n);
  for (std::size_t c = 0; c < grid.chunks; ++c) {
    std::size_t idx = grid.begin(c);
    while (idx < n && idx > 0 && times[idx] == times[idx - 1]) ++idx;
    starts[c] = idx;
  }

  std::vector<double> totals(grid.chunks, 0.0);
  core::parallel_for_items(grid.chunks, threads, [&](std::size_t c) {
    totals[c] = voronoi_fill(times, starts[c], starts[c + 1], begin, end, weights);
  });
  double total = 0.0;
  for (const double t : totals) total += t;

  if (total > 0.0) {
    const double inv = 1.0 / total;
    core::parallel_for(n, threads, core::kRecordChunk,
                       [&](std::size_t first, std::size_t last, std::size_t /*chunk*/) {
                         for (std::size_t i = first; i < last; ++i) weights[i] *= inv;
                       });
  }
  return weights;
}

}  // namespace autosens::stats
