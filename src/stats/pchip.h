// Monotone cubic interpolation (Fritsch–Carlson PCHIP). Where the simulator's
// ground-truth preference curves are piecewise linear, downstream users often
// want a smooth planted curve with no overshoot between anchors — PCHIP is
// shape-preserving: it never introduces extrema that the anchor sequence does
// not have, which matters when the anchors encode a monotone preference.
#pragma once

#include <span>
#include <vector>

#include "stats/piecewise.h"

namespace autosens::stats {

class PchipCurve {
 public:
  /// Anchors must be strictly increasing in x and there must be at least
  /// two of them. Throws std::invalid_argument otherwise.
  explicit PchipCurve(std::vector<CurvePoint> anchors);

  /// Evaluate; clamped to the terminal values outside the anchor range.
  double operator()(double x) const noexcept;

  /// First derivative of the interpolant (clamped to 0 outside the range).
  double derivative(double x) const noexcept;

  std::span<const CurvePoint> anchors() const noexcept { return anchors_; }
  double min_x() const noexcept { return anchors_.front().x; }
  double max_x() const noexcept { return anchors_.back().x; }

 private:
  std::size_t segment_of(double x) const noexcept;

  std::vector<CurvePoint> anchors_;
  std::vector<double> slopes_;  ///< Endpoint derivatives, one per anchor.
};

}  // namespace autosens::stats
