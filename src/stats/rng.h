// Deterministic pseudo-random number generation for all AutoSens experiments.
//
// Every stochastic component in the library takes an explicit engine by
// reference, so a whole experiment is reproducible bit-for-bit from a single
// seed. The engine is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend; both are implemented here so the
// library has no dependency on the quality or stability of std:: engines.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace autosens::stats {

/// SplitMix64: used to expand a 64-bit seed into engine state.
/// Also a fine standalone generator for cheap, low-stakes randomness.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed'0000'd00d'beefULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Jump ahead by 2^128 draws; used to derive independent streams.
  void jump() noexcept;

  /// A new engine whose stream is independent of this one (jump-based).
  Xoshiro256 split() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

/// Counter-based substream derivation: the seed of substream `index` of a
/// base `seed`, well-mixed through SplitMix64. Unlike Xoshiro256::split(),
/// which advances a shared engine, substream `index` depends only on
/// (seed, index) — so parallel chunks can build their streams independently
/// and a computation's draws do not depend on how chunks were scheduled.
std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t index) noexcept;

/// Random draws built on an engine. All methods mutate the engine.
class Random {
 public:
  explicit Random(std::uint64_t seed) : engine_(seed) {}
  explicit Random(Xoshiro256 engine) noexcept : engine_(engine) {}

  Xoshiro256& engine() noexcept { return engine_; }

  /// Uniform in [0, 1).
  double uniform() noexcept;
  /// Uniform in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Standard normal via Box–Muller with caching.
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;
  /// Lognormal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with the given rate (events per unit). Requires rate > 0.
  double exponential(double rate) noexcept;
  /// Poisson count with the given mean (Knuth for small, PTRS for large).
  std::uint64_t poisson(double mean) noexcept;
  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i + 1));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  /// An independent child generator (for per-user / per-slice streams).
  Random split() noexcept { return Random(engine_.split()); }

 private:
  Xoshiro256 engine_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace autosens::stats
