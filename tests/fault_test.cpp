// Determinism tests for the fault-injection layer itself: the fault matrix
// is only as reproducible as the FaultPlan behind it.
#include "net/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace autosens::net {
namespace {

std::vector<bool> schedule(FaultPlan plan, FaultClass fault, std::size_t n) {
  std::vector<bool> fired;
  fired.reserve(n);
  for (std::size_t i = 0; i < n; ++i) fired.push_back(plan.fire(fault));
  return fired;
}

TEST(FaultPlanTest, SameSeedSameSchedule) {
  const std::vector<FaultSpec> specs = {
      {.fault = FaultClass::kEagain, .probability = 0.3}};
  const auto a = schedule(FaultPlan(42, specs), FaultClass::kEagain, 200);
  const auto b = schedule(FaultPlan(42, specs), FaultClass::kEagain, 200);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, std::vector<bool>(200, false));  // something actually fires
  EXPECT_NE(a, std::vector<bool>(200, true));
}

TEST(FaultPlanTest, DifferentSeedDifferentSchedule) {
  const std::vector<FaultSpec> specs = {
      {.fault = FaultClass::kEagain, .probability = 0.3}};
  EXPECT_NE(schedule(FaultPlan(1, specs), FaultClass::kEagain, 200),
            schedule(FaultPlan(2, specs), FaultClass::kEagain, 200));
}

TEST(FaultPlanTest, ScheduleIndependentOfClassInterleaving) {
  // The draw for operation k of class c depends on (seed, c, k) only: firing
  // other classes between calls must not shift the schedule.
  const std::vector<FaultSpec> specs = {
      {.fault = FaultClass::kEagain, .probability = 0.4},
      {.fault = FaultClass::kShortRead, .probability = 0.4}};
  FaultPlan interleaved(9, specs);
  std::vector<bool> eagain_fired;
  for (std::size_t i = 0; i < 100; ++i) {
    eagain_fired.push_back(interleaved.fire(FaultClass::kEagain));
    interleaved.fire(FaultClass::kShortRead);
    interleaved.fire(FaultClass::kShortRead);
  }
  EXPECT_EQ(eagain_fired, schedule(FaultPlan(9, specs), FaultClass::kEagain, 100));
}

TEST(FaultPlanTest, UnconfiguredClassNeverFires) {
  FaultPlan plan(3, {{.fault = FaultClass::kEagain}});
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(plan.fire(FaultClass::kDisconnect));
  EXPECT_EQ(plan.injected(FaultClass::kDisconnect), 0u);
}

TEST(FaultPlanTest, SkipOpsAndMaxInjectionsBound) {
  FaultPlan plan(5, {{.fault = FaultClass::kConnectRefused,
                      .probability = 1.0,
                      .skip_ops = 3,
                      .max_injections = 2}});
  std::vector<bool> fired = schedule(std::move(plan), FaultClass::kConnectRefused, 10);
  const std::vector<bool> expected = {false, false, false, true, true,
                                      false, false, false, false, false};
  EXPECT_EQ(fired, expected);
}

TEST(FaultPlanTest, CopyReplaysIdentically) {
  FaultPlan plan(11, {{.fault = FaultClass::kCorrupt, .probability = 0.5}});
  const FaultPlan replay = plan;  // copy before any fire()
  EXPECT_EQ(schedule(std::move(plan), FaultClass::kCorrupt, 64),
            schedule(replay, FaultClass::kCorrupt, 64));
}

TEST(FaultPlanTest, InjectionCountsAreExact) {
  FaultPlan plan(13, {{.fault = FaultClass::kEagain, .probability = 0.25}});
  std::size_t fired = 0;
  for (std::size_t i = 0; i < 400; ++i) {
    if (plan.fire(FaultClass::kEagain)) ++fired;
  }
  EXPECT_EQ(plan.injected(FaultClass::kEagain), fired);
  EXPECT_EQ(plan.total_injected(), fired);
}

TEST(FaultySocketOpsTest, SleepScaleAccountsWithoutSleeping) {
  FaultySocketOps ops(FaultPlan{}, real_socket_ops(), /*sleep_scale=*/0.0);
  ops.sleep_ms(50);
  ops.sleep_ms(70);
  EXPECT_EQ(ops.slept_ms(), 120u);  // accounted in full despite scale 0
}

}  // namespace
}  // namespace autosens::net
