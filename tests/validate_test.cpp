#include "telemetry/validate.h"

#include <gtest/gtest.h>

#include <limits>

namespace autosens::telemetry {
namespace {

ActionRecord make_record(double latency, ActionStatus status = ActionStatus::kSuccess) {
  static std::int64_t t = 0;
  return {.time_ms = ++t,
          .user_id = 1,
          .latency_ms = latency,
          .action = ActionType::kSelectMail,
          .user_class = UserClass::kBusiness,
          .status = status};
}

TEST(ValidateTest, KeepsCleanRecords) {
  Dataset d;
  d.add(make_record(100.0));
  d.add(make_record(250.0));
  const auto result = validate(d);
  EXPECT_EQ(result.dataset.size(), 2u);
  EXPECT_EQ(result.report.dropped(), 0u);
}

TEST(ValidateTest, DropsErrorStatusByDefault) {
  Dataset d;
  d.add(make_record(100.0));
  d.add(make_record(100.0, ActionStatus::kError));
  const auto result = validate(d);
  EXPECT_EQ(result.dataset.size(), 1u);
  EXPECT_EQ(result.report.dropped_error_status, 1u);
}

TEST(ValidateTest, KeepsErrorsWhenConfigured) {
  Dataset d;
  d.add(make_record(100.0, ActionStatus::kError));
  const auto result = validate(d, {.successful_only = false});
  EXPECT_EQ(result.dataset.size(), 1u);
}

TEST(ValidateTest, DropsNonPositiveLatency) {
  Dataset d;
  d.add(make_record(0.0));
  d.add(make_record(-5.0));
  d.add(make_record(1.0));
  const auto result = validate(d);
  EXPECT_EQ(result.dataset.size(), 1u);
  EXPECT_EQ(result.report.dropped_nonpositive_latency, 2u);
}

TEST(ValidateTest, DropsExcessiveLatency) {
  Dataset d;
  d.add(make_record(59'999.0));
  d.add(make_record(60'001.0));
  const auto result = validate(d);
  EXPECT_EQ(result.dataset.size(), 1u);
  EXPECT_EQ(result.report.dropped_excessive_latency, 1u);
}

TEST(ValidateTest, DropsNonFiniteLatency) {
  Dataset d;
  d.add(make_record(std::numeric_limits<double>::quiet_NaN()));
  d.add(make_record(std::numeric_limits<double>::infinity()));
  d.add(make_record(100.0));
  const auto result = validate(d);
  EXPECT_EQ(result.dataset.size(), 1u);
  EXPECT_EQ(result.report.dropped_nonfinite_latency, 2u);
}

TEST(ValidateTest, CustomThresholds) {
  Dataset d;
  d.add(make_record(50.0));
  d.add(make_record(150.0));
  d.add(make_record(250.0));
  const auto result = validate(d, {.min_latency_ms = 100.0, .max_latency_ms = 200.0});
  EXPECT_EQ(result.dataset.size(), 1u);
  EXPECT_DOUBLE_EQ(result.dataset[0].latency_ms, 150.0);
}

TEST(ValidateTest, ReportAccounting) {
  Dataset d;
  d.add(make_record(100.0));
  d.add(make_record(-1.0));
  d.add(make_record(100.0, ActionStatus::kError));
  const auto result = validate(d);
  EXPECT_EQ(result.report.total, 3u);
  EXPECT_EQ(result.report.kept, 1u);
  EXPECT_EQ(result.report.dropped(), 2u);
  const auto summary = result.report.summary();
  EXPECT_NE(summary.find("kept 1"), std::string::npos);
  EXPECT_NE(summary.find("dropped 2"), std::string::npos);
}

TEST(ValidateTest, DropsBadTimestamps) {
  Dataset d;
  d.add({.time_ms = -5, .user_id = 1, .latency_ms = 100.0});
  d.add({.time_ms = 10, .user_id = 1, .latency_ms = 100.0});
  const auto result = validate(d);
  EXPECT_EQ(result.dataset.size(), 1u);
  EXPECT_EQ(result.report.dropped_bad_timestamp, 1u);
}

TEST(ValidateTest, DropsOutOfWindowRecords) {
  Dataset d;
  d.add({.time_ms = 50, .user_id = 1, .latency_ms = 100.0});
  d.add({.time_ms = 100, .user_id = 1, .latency_ms = 100.0});  // Begin is inclusive.
  d.add({.time_ms = 150, .user_id = 1, .latency_ms = 100.0});
  d.add({.time_ms = 200, .user_id = 1, .latency_ms = 100.0});  // End is exclusive.
  const auto result = validate(d, {.window_begin_ms = 100, .window_end_ms = 200});
  EXPECT_EQ(result.dataset.size(), 2u);
  EXPECT_EQ(result.report.dropped_out_of_window, 2u);
  EXPECT_EQ(result.dataset[0].time_ms, 100);
  EXPECT_EQ(result.dataset[1].time_ms, 150);
}

TEST(ValidateTest, OneLineSummaryOmitsZeroReasons) {
  Dataset d;
  d.add(make_record(100.0));
  d.add(make_record(-1.0));
  d.add(make_record(100.0, ActionStatus::kError));
  const auto result = validate(d);
  EXPECT_EQ(result.report.one_line(),
            "kept 1/3 (dropped: error-status 1, nonpositive-latency 1)");

  Dataset clean;
  clean.add(make_record(100.0));
  EXPECT_EQ(validate(clean).report.one_line(), "kept 1/1");
}

TEST(ValidateTest, OutputIsSorted) {
  Dataset d;
  d.add({.time_ms = 100, .user_id = 1, .latency_ms = 5.0});
  d.add({.time_ms = 50, .user_id = 1, .latency_ms = 5.0});
  const auto result = validate(d);
  EXPECT_TRUE(result.dataset.is_sorted());
  EXPECT_EQ(result.dataset[0].time_ms, 50);
}

TEST(ValidateTest, EmptyInput) {
  const auto result = validate(Dataset{});
  EXPECT_TRUE(result.dataset.empty());
  EXPECT_EQ(result.report.total, 0u);
}

}  // namespace
}  // namespace autosens::telemetry
